"""Benchmark harness conventions.

Every benchmark regenerates one of the paper's tables or figures via the
experiment registry, reports its wall-clock through pytest-benchmark
(single round — these are end-to-end experiment reproductions, not
microbenchmarks), prints the paper-style rows, and asserts the *shape* of
the result: who wins, by roughly what factor, where the crossovers fall.
Absolute agreement with the paper's testbed is not expected and not
asserted.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner
