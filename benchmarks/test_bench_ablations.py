"""Benchmark: design-choice ablations.

Not a paper figure; regenerates the sensitivity studies DESIGN.md calls
out (wax volume, melting point, heat of fusion, load-balancing policy,
DVFS exponent).
"""

from repro.experiments.registry import run_experiment


def test_bench_ablations(run_once):
    result = run_once(lambda: run_experiment("ablations", quick=True))
    print("\n" + result.render())

    # More wax helps up to the deployed volume (the paper's observation);
    # the deployed 1.2 L sits at or near the knee of the curve.
    assert result.summary["reduction_monotonic_up_to_deployed"] == 1.0
    assert result.summary["deployed_volume_near_knee"] == 1.0

    # The melting point matters: the optimum clips several percent while
    # badly-chosen blends clip almost nothing.
    assert result.summary["best_reduction"] > 0.05
    assert 41.0 <= result.summary["best_melting_point_c"] <= 46.0

    # Eicosane's +23.5% heat of fusion buys only a small extra reduction
    # — the paper's economic argument for commercial paraffin.
    assert 0.0 <= result.summary["premium_wax_extra_reduction"] <= 0.03

    # Round-robin vs least-loaded is thermally indistinguishable on a
    # homogeneous cluster.
    assert result.summary["lb_policy_peak_difference"] < 0.02
