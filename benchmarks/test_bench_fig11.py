"""Benchmark: regenerate Figure 11 / Section 5.1 (cooling-load reduction).

Paper headline numbers: peak cooling-load reductions of 8.9% (1U), 12%
(2U), and 8.3% (OCP); repayment tails of six to nine hours; +9.8% /
+14.6% / +8.9% servers under the same plant; $187k / $254k / $174k annual
cooling savings; ~$3M/yr retrofit savings.
"""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11")


def test_bench_fig11(run_once):
    result = run_once(lambda: run_experiment("fig11"))
    print("\n" + result.render())

    reductions = {
        p: result.summary[f"{p}_peak_reduction"] for p in ("1u", "2u", "ocp")
    }
    # Shape: every platform sees a real reduction, in the paper's band.
    for platform, value in reductions.items():
        assert 0.04 <= value <= 0.16, platform
    # Ordering: the 2U (most wax, 4 L) wins, as in the paper.
    assert reductions["2u"] == max(reductions.values())
    # Magnitudes near the paper's: within ~2.5 points per platform.
    assert reductions["1u"] == pytest.approx(0.089, abs=0.03)
    assert reductions["2u"] == pytest.approx(0.12, abs=0.03)
    assert reductions["ocp"] == pytest.approx(0.083, abs=0.03)

    # Repayment completes within the daily cycle.
    for platform in ("1u", "2u", "ocp"):
        assert result.summary[f"{platform}_repayment_hours"] < 20.0

    # Fleet growth follows the reciprocal rule (paper: up to +14.6%).
    assert result.summary["2u_fleet_growth"] == pytest.approx(0.146, abs=0.04)

    # Dollar figures in the paper's band.
    assert result.summary["2u_cooling_savings_usd"] == pytest.approx(
        254_000.0, rel=0.3
    )
    for platform in ("1u", "2u", "ocp"):
        assert result.summary[f"{platform}_retrofit_savings_usd"] == (
            pytest.approx(3.1e6, rel=0.15)
        )

    # The with-PCM curve clips the peak but matches the baseline off-peak
    # (series check on the 1U cluster).
    baseline = result.series["1u_cooling_load_w"]
    pcm = result.series["1u_load_with_pcm_w"]
    assert np.max(pcm) < np.max(baseline)
    # Total heat removed over two days is conserved within 2%: the wax
    # only time-shifts it.
    assert np.sum(pcm) == pytest.approx(np.sum(baseline), rel=0.02)
