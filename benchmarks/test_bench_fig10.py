"""Benchmark: regenerate Figure 10 (the two-day workload trace)."""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment


def test_bench_fig10(run_once):
    result = run_once(lambda: run_experiment("fig10"))
    print("\n" + result.render())

    # The paper's normalization: 50% average, 95% peak, two days.
    assert result.summary["average_load"] == pytest.approx(0.5, abs=1e-6)
    assert result.summary["peak_load"] == pytest.approx(0.95, abs=1e-6)
    assert result.summary["duration_hours"] == pytest.approx(48.0)
    assert result.summary["components_sum_to_total"] == 1.0

    # Diurnal structure: both daily peaks land midday-to-evening.
    hours = result.series["hours"]
    total = result.series["total"]
    for day in (0, 1):
        mask = (hours >= day * 24) & (hours < (day + 1) * 24)
        peak_hour = hours[mask][np.argmax(total[mask])] % 24
        assert 10.0 <= peak_hour <= 20.0

    # Search is the dominant class, as in the paper's legend ordering.
    assert np.mean(result.series["search"]) > np.mean(result.series["orkut"])
    assert np.mean(result.series["search"]) > np.mean(
        result.series["mapreduce"]
    )
