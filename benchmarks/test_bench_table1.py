"""Benchmark: regenerate Table 1 (PCM properties and selection)."""

import pytest

from repro.experiments.registry import run_experiment


def test_bench_table1(run_once):
    result = run_once(lambda: run_experiment("table1"))
    print("\n" + result.render())

    # Paper outcome: commercial paraffin is the surviving material.
    assert result.summary["selected_is_commercial_paraffin"] == 1.0
    # "50x cheaper for 20% lower energy per gram."
    assert result.summary["eicosane_cost_ratio"] == pytest.approx(50.0)
    assert result.summary["energy_per_gram_penalty_fraction"] == pytest.approx(
        0.20, abs=0.03
    )
    # "over a million dollars in wax costs alone" vs a modest commercial
    # bill for the same datacenter.
    assert result.summary["eicosane_datacenter_wax_usd"] > 1e6
    assert result.summary["commercial_datacenter_wax_usd"] < 3e5
    # The wax-bill ratio dwarfs even the per-ton ratio's effect after
    # containers are included.
    assert (
        result.summary["eicosane_datacenter_wax_usd"]
        > 10 * result.summary["commercial_datacenter_wax_usd"]
    )
