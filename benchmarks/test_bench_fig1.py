"""Benchmark: regenerate Figure 1 (thermal time shifting concept)."""

import numpy as np

from repro.experiments.registry import run_experiment


def test_bench_fig1(run_once):
    result = run_once(lambda: run_experiment("fig1"))
    print("\n" + result.render())

    # The concept figure's three claims: the thermal peak is flattened,
    # the stored heat comes back at night, and the wax completes a daily
    # cycle.
    assert result.summary["peak_flattening_fraction"] > 0.02
    assert result.summary["night_release_present"] == 1.0
    assert result.summary["wax_completes_daily_cycle"] == 1.0

    # The PCM curve sits below the baseline exactly while melting.
    melting = np.diff(result.series["melt_fraction"], prepend=0.0) > 1e-6
    below = (
        result.series["thermal_output_with_pcm_w"]
        < result.series["thermal_output_w"] - 1e-9
    )
    assert np.all(below[melting])
