"""Benchmark: regenerate Table 2 (TCO parameters + Equation 1 totals)."""

from repro.experiments.registry import run_experiment


def test_bench_table2(run_once):
    result = run_once(lambda: run_experiment("table2"))
    print("\n" + result.render())

    # The paper's structural claim: WaxCapEx is "less than 0.1% of the
    # ServerCapEx" on every platform.
    for platform in ("1u", "2u", "ocp"):
        assert result.summary[f"wax_share_of_server_capex_{platform}"] < 0.002

    headers, rows = result.tables["Equation 1 monthly TCO of each 10 MW datacenter"]
    assert len(rows) == 3
