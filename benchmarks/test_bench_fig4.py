"""Benchmark: regenerate Figure 4 (model validation)."""

from repro.experiments.registry import run_experiment


def test_bench_fig4(run_once):
    result = run_once(lambda: run_experiment("fig4"))
    print("\n" + result.render())

    # Paper: 0.22 degC mean steady-state difference between the real
    # server and the model; we require the same sub-degree agreement
    # against our independent reference model.
    assert result.summary["steady_mean_abs_difference_c"] < 0.5
    # "a strong correlation between the real measurements and Icepak
    # simulation measurements for the trace".
    assert result.summary["heating_correlation"] > 0.99
    assert result.summary["cooling_correlation"] > 0.99
    # "the wax reduces temperatures for two hours while the wax melts ...
    # and afterwards increases temperatures for two hours".
    assert 1.0 <= result.summary["wax_melt_effect_hours"] <= 5.0
    assert 1.0 <= result.summary["wax_freeze_effect_hours"] <= 5.0
