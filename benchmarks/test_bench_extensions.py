"""Benchmark: extension studies (energy arbitrage, chilled water,
lifetime, trace shapes)."""

from repro.experiments.registry import run_experiment


def test_bench_extensions(run_once):
    result = run_once(lambda: run_experiment("extensions", quick=True))
    print("\n" + result.render())

    # Energy arbitrage is *negligible*: PCM's value is capacity (peak kW),
    # not energy (kWh) — the wax banks ~2% of a day's heat. This is why
    # the paper quantifies the cooling-plant savings and only mentions
    # the electricity-rate benefit qualitatively.
    assert abs(result.summary["energy_cost_savings_fraction"]) < 0.02

    # A chilled-water tank with the same joules shaves a comparable peak
    # but pays for it: pumping energy, standing losses, floor space, and
    # higher capital — the paper's Section 6 argument, quantified.
    assert result.summary["tank_peak_reduction"] > 0.0
    assert result.summary["tank_capital_over_pcm"] > 1.0
    assert result.summary["tank_standing_loss_kwh_per_two_days"] > 0.0

    # Only the two paraffin classes survive a 4-year daily-cycle
    # deployment (Table 1's stability column as a lifetime model).
    assert result.summary["classes_surviving_4_years"] == 2.0
    assert result.summary["commercial_paraffin_capacity_after_4y"] > 0.9

    # The optimal melting point moves with the trace shape, but stays
    # within the commercial paraffin window for every shape tested.
    assert result.summary["melting_point_spread_across_shapes_c"] <= 8.0

    # Chip-scale sprinting vs server-scale time shifting: the same
    # substrate spans four orders of magnitude in buffering duration.
    assert result.summary["sprint_extension_ratio"] > 3.0
    assert result.summary["timescale_separation"] > 10.0

    # Geographic relocation: an 8h-offset partner rescues most of the
    # demand a solo constrained site sheds, and PCM composes with it.
    assert result.summary["geo_served_fraction"] > (
        result.summary["solo_served_fraction"] + 0.02
    )
    assert result.summary["geo_pcm_served_fraction"] >= (
        result.summary["geo_served_fraction"] - 1e-6
    )
