"""Benchmark: regenerate Figure 7 (temperatures vs airflow blockage)."""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment


def test_bench_fig7(run_once):
    result = run_once(lambda: run_experiment("fig7"))
    print("\n" + result.render())

    # 1U: outlet rises ~14 degC at 90% blockage; CPUs rise < 2 degC
    # below 50%.
    assert result.summary["1u_outlet_rise_at_90pct_c"] == pytest.approx(
        14.0, abs=1.5
    )
    assert result.summary["1u_cpu_rise_at_50pct_c"] < 2.5

    # 2U: negligible below 50%, < 6 degC at the deployed 69%, steep above.
    assert result.summary["2u_outlet_rise_at_50pct_c"] < 3.0
    assert result.summary["2u_outlet_rise_at_69pct_c"] < 6.5
    assert result.summary["2u_outlet_rise_at_90pct_c"] > (
        3 * result.summary["2u_outlet_rise_at_69pct_c"]
    )

    # OCP: hot at zero blockage and hypersensitive to any obstruction.
    assert result.summary["ocp_outlet_at_0pct_c"] > 55.0
    assert result.summary["ocp_outlet_rise_at_30pct_c"] > 15.0

    # All three curves are superlinear: the last 20% of blockage costs
    # more than the first 50%.
    for platform in ("1u", "2u", "ocp"):
        blockage = result.series[f"{platform}_blockage"]
        outlet = result.series[f"{platform}_outlet_c"]
        half = outlet[np.argmin(np.abs(blockage - 0.5))] - outlet[0]
        tail = outlet[-1] - outlet[np.argmin(np.abs(blockage - 0.7))]
        assert tail > half
