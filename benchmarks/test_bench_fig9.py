"""Benchmark: Figure 9 (Open Compute layouts and their wax capacity)."""

import pytest

from repro.experiments.registry import run_experiment


def test_bench_fig9(run_once):
    result = run_once(lambda: run_experiment("fig9", quick=True))
    print("\n" + result.render())

    # The reconfigured blade carries 3x the insert-swap wax...
    assert result.summary["reconfigured_capacity_ratio"] == pytest.approx(3.0)
    # ...and buys a strictly larger peak reduction with it.
    assert result.summary["reconfigured_reduction"] > (
        result.summary["insert_swap_reduction"]
    )
    # The reconfigured layout lands in the paper's band (8.3%).
    assert result.summary["reconfigured_reduction"] == pytest.approx(
        0.083, abs=0.035
    )
    # Neither layout adds airflow blockage versus the production blade.
    assert result.summary["no_added_blockage"] == 1.0
