"""Microbenchmarks of the simulation hot paths.

Unlike the per-figure benchmarks (single-shot experiment reproductions),
these are true repeated-round measurements of the kernels that dominate
the library's wall-clock: the chassis RK4 transient, the steady-state
fixed point, the vectorized cluster tick, and a full fluid-mode simulated
day.
"""

import numpy as np
import pytest

from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.server.characterization import characterize_platform
from repro.server.chassis import constant_utilization
from repro.server.configs import one_u_commodity
from repro.thermal.solver import simulate_transient
from repro.thermal.steady_state import solve_steady_state
from repro.units import hours
from repro.workload.google import synthesize_google_trace


@pytest.fixture(scope="module")
def spec():
    return one_u_commodity()


@pytest.fixture(scope="module")
def characterization(spec):
    return characterize_platform(spec)


@pytest.fixture(scope="module")
def trace():
    return synthesize_google_trace().total


def test_bench_chassis_transient_hour(benchmark, spec):
    """One simulated hour of the detailed chassis network (RK4)."""
    network = spec.chassis.build_network(
        constant_utilization(0.8), with_wax=True
    )

    result = benchmark(
        lambda: simulate_transient(network, hours(1.0), output_interval_s=300.0)
    )
    assert result.times_s[-1] == pytest.approx(3600.0)


def test_bench_chassis_steady_state(benchmark, spec):
    """One steady-state solve of the detailed chassis network."""
    network = spec.chassis.build_network(
        constant_utilization(1.0), placebo=True
    )
    result = benchmark(lambda: solve_steady_state(network))
    assert result.iterations > 0


def test_bench_cluster_tick_1008(benchmark, spec, characterization):
    """One vectorized thermal tick of a 1008-server cluster."""
    state = ClusterThermalState(
        characterization,
        spec.power_model,
        commercial_paraffin_with_melting_point(43.0),
        server_count=1008,
    )
    utilization = np.full(1008, 0.7)

    def tick():
        return state.step(60.0, utilization, 2.4)

    power, release, wax = benchmark(tick)
    assert power.shape == (1008,)


def test_bench_fluid_simulated_day(benchmark, spec, characterization, trace):
    """A full simulated day of a 1008-server cluster in fluid mode."""
    day_trace = trace  # two days; the simulator cost is linear in horizon

    def run():
        return DatacenterSimulator(
            characterization,
            spec.power_model,
            commercial_paraffin_with_melting_point(43.0),
            day_trace,
            topology=ClusterTopology(server_count=1008),
            config=SimulationConfig(mode="fluid", wax_enabled=True),
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.peak_cooling_load_w > 0


def test_bench_event_mode_day_96_servers(benchmark, spec, characterization):
    """A simulated day of discrete-event traffic on 96 servers."""
    from repro.workload.synthetic import diurnal_trace

    day = diurnal_trace(duration_s=hours(24.0))

    def run():
        return DatacenterSimulator(
            characterization,
            spec.power_model,
            commercial_paraffin_with_melting_point(43.0),
            day,
            topology=ClusterTopology(server_count=96),
            config=SimulationConfig(mode="event", wax_enabled=True),
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert float(np.mean(result.utilization)) > 0.3
