#!/usr/bin/env python
"""Run the tier-2 benchmark suite and gate against a checked-in baseline.

Thin launcher around :mod:`repro.bench.regression` so CI and humans can
run the gate from a bare checkout, without installing the package:

    python benchmarks/regression.py --baseline benchmarks/baseline.json

Installed, the same runner is the ``repro-bench`` console script.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.regression import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
