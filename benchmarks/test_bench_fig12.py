"""Benchmark: regenerate Figure 12 / Section 5.2 (throughput gain).

Paper headline numbers: +33% peak throughput over 5.1 h (1U), +69% over
3.1 h (2U), +34% over 3.1 h (OCP); TCO efficiency improvements of 23%,
39%, 24%.
"""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment


def test_bench_fig12(run_once):
    result = run_once(lambda: run_experiment("fig12"))
    print("\n" + result.render())

    gains = {
        p: result.summary[f"{p}_peak_throughput_gain"]
        for p in ("1u", "2u", "ocp")
    }
    # Shape: the 2U (deepest oversubscription) gains the most, by far.
    assert gains["2u"] == max(gains.values())
    assert gains["2u"] > 1.5 * gains["1u"]
    # Magnitudes near the paper's.
    assert gains["1u"] == pytest.approx(0.33, abs=0.07)
    assert gains["2u"] == pytest.approx(0.69, abs=0.10)
    assert gains["ocp"] == pytest.approx(0.34, abs=0.07)

    # Elevated-operation windows of several hours (paper: 3.1-5.1 h).
    for platform in ("1u", "2u", "ocp"):
        assert 2.0 <= result.summary[f"{platform}_elevated_hours"] <= 8.0
    assert result.summary["1u_elevated_hours"] == pytest.approx(5.1, abs=1.5)

    # TCO efficiency improvements track the gains (paper: 23/39/24%).
    assert result.summary["1u_tco_efficiency_improvement"] == pytest.approx(
        0.23, abs=0.05
    )
    assert result.summary["2u_tco_efficiency_improvement"] == pytest.approx(
        0.39, abs=0.05
    )
    assert result.summary["ocp_tco_efficiency_improvement"] == pytest.approx(
        0.24, abs=0.05
    )

    # Curve shapes: the with-wax arm tracks the ideal through the peak
    # while the no-wax arm is pinned at (normalized) 1.0.
    for platform in ("1u", "2u", "ocp"):
        with_wax = result.series[f"{platform}_with_wax"]
        ideal = result.series[f"{platform}_ideal"]
        no_wax = result.series[f"{platform}_no_wax"]
        assert np.max(with_wax) == pytest.approx(np.max(ideal), rel=0.03)
        assert np.max(no_wax) == pytest.approx(1.0, rel=1e-6)
