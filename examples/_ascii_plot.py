"""A tiny dependency-free ASCII line plotter for the example scripts."""

from __future__ import annotations

import numpy as np


def ascii_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 78,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series against a shared x axis as ASCII art.

    Each series gets a distinct marker; the legend maps markers to names.
    """
    markers = "*o+x#@%&"
    x = np.asarray(x, dtype=float)
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_low, y_high = float(np.min(all_y)), float(np.max(all_y))
    if y_high - y_low < 1e-12:
        y_high = y_low + 1.0
    x_low, x_high = float(x[0]), float(x[-1])

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        values = np.asarray(values, dtype=float)
        for column in range(width):
            x_probe = x_low + (x_high - x_low) * column / (width - 1)
            y_probe = float(np.interp(x_probe, x, values))
            row = int((y_high - y_probe) / (y_high - y_low) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:9.1f} |"
        elif row_index == height - 1:
            label = f"{y_low:9.1f} |"
        else:
            label = " " * 9 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_low:<10.1f}" + " " * (width - 20) + f"{x_high:>10.1f}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.append(" " * 10 + f"(y: {y_label})")
    return "\n".join(lines)
