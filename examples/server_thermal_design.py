"""Chassis-level thermal design: blockage limits and the wax transient.

Works at the detailed server-model level (the Icepak-role substrate)
rather than the cluster level:

1. sweeps a uniform grille across each platform (Figure 7) to find how
   much airflow can be sacrificed to wax;
2. runs the paper's validation protocol (1 h idle, 12 h load, 12 h idle)
   on the 1U server with its deployed 1.2 L of wax and plots the melt /
   refreeze transient.

Run:  python examples/server_thermal_design.py
"""

import numpy as np

from _ascii_plot import ascii_plot

from repro import one_u_commodity, open_compute_blade, two_u_commodity
from repro.analysis.tables import format_table
from repro.server.chassis import constant_utilization, step_utilization
from repro.thermal.solver import simulate_transient
from repro.thermal.steady_state import solve_steady_state
from repro.units import hours


def blockage_sweep() -> None:
    fractions = np.arange(0.0, 0.91, 0.1)
    rows = []
    for build in (one_u_commodity, two_u_commodity, open_compute_blade):
        spec = build()
        outlets = []
        for fraction in fractions:
            chassis = spec.chassis.with_grille_blockage(float(fraction))
            network = chassis.build_network(constant_utilization(1.0))
            outlets.append(solve_steady_state(network).outlet_temperature_c())
        rows.append([spec.name] + [f"{t:.0f}" for t in outlets])
    print(
        format_table(
            ["platform"] + [f"{f:.0%}" for f in fractions],
            rows,
            title="Outlet temperature (degC) vs airflow blockage at full load",
        )
    )
    print(
        "\nReading: the 1U shrugs off blockage (14 degC at 90%), the 2U is "
        "stable to ~60%,\nand the Open Compute blade cannot afford to lose "
        "any airflow — matching Figure 7.\n"
    )


def wax_transient() -> None:
    spec = one_u_commodity()
    schedule = step_utilization(0.0, 1.0, hours(1.0), hours(13.0))
    wax_net = spec.chassis.build_network(schedule, with_wax=True)
    placebo_net = spec.chassis.build_network(schedule, placebo=True)
    wax = simulate_transient(wax_net, hours(25.0), output_interval_s=300.0)
    placebo = simulate_transient(placebo_net, hours(25.0), output_interval_s=300.0)

    melt_total = np.mean(
        [wax.melt_fractions[name] for name in wax.melt_fractions], axis=0
    )
    print(
        ascii_plot(
            wax.times_hours,
            {
                "wax-zone air (wax)": wax.air_temperatures_c["wax"],
                "wax-zone air (placebo)": placebo.air_temperatures_c["wax"],
            },
            title="1U validation protocol: 1 h idle, 12 h load, 12 h idle",
            y_label="degC",
        )
    )
    print()
    print(
        ascii_plot(
            wax.times_hours,
            {"melt fraction": melt_total},
            title="Deployed 1.2 L of wax: melts under load, refreezes overnight",
            y_label="fraction molten",
        )
    )
    absorbed = wax.heat_stored_in_pcm_j()
    print(
        f"\nPeak banked heat: {np.max(absorbed) / 1000:.0f} kJ of the "
        f"{spec.wax_loadout.latent_capacity_j / 1000:.0f} kJ latent capacity"
    )


def main() -> None:
    blockage_sweep()
    wax_transient()


if __name__ == "__main__":
    main()
