"""Quickstart: how much does wax clip a cluster's peak cooling load?

Builds the paper's validated 1U platform, synthesizes the two-day Google
workload, and runs the Section 5.1 cooling-load study end to end — the
melting-point optimization, the baseline and PCM cluster simulations, and
the provisioning consequences.

Run:  python examples/quickstart.py
"""

from repro import CoolingLoadStudy, one_u_commodity, synthesize_google_trace
from repro.dcsim.cluster import ClusterTopology
from repro.tco.scenarios import smaller_cooling_savings


def main() -> None:
    platform = one_u_commodity()
    trace = synthesize_google_trace().total

    print(f"Platform: {platform.name} ({platform.description})")
    loadout = platform.wax_loadout
    print(
        f"Wax: {loadout.total_volume_m3 * 1000:.1f} L of "
        f"{loadout.material.name}, latent capacity "
        f"{loadout.latent_capacity_j / 1000:.0f} kJ/server"
    )
    print(f"Workload: {trace.duration_s / 3600:.0f} h Google-like trace, "
          f"average {trace.average:.0%}, peak {trace.peak:.0%}")
    print()

    study = CoolingLoadStudy(
        platform,
        trace,
        topology=ClusterTopology(server_count=1008),
        melting_step_c=1.0,
    )
    outcome = study.run()

    search = outcome.melting_point_search
    print(f"Best wax blend: melts at {search.best_melting_point_c:.1f} degC")
    print(
        f"Peak cooling load: {outcome.baseline.peak_cooling_load_w / 1e3:.1f} kW "
        f"-> {outcome.with_pcm.peak_cooling_load_w / 1e3:.1f} kW per cluster "
        f"({outcome.peak_reduction_fraction:.1%} reduction)"
    )
    print(
        f"Repayment tail: {outcome.comparison.repayment_hours:.1f} h of "
        f"elevated off-peak load while the wax refreezes"
    )
    print(
        f"Or instead: +{outcome.provisioning.additional_servers} servers "
        f"(+{outcome.provisioning.fleet_growth_fraction:.1%}) under the "
        f"same cooling plant"
    )
    savings = smaller_cooling_savings(outcome.peak_reduction_fraction)
    print(
        f"A 10 MW datacenter saves ~${savings.annual_savings_usd / 1e3:.0f}k "
        f"per year on the cooling system"
    )


if __name__ == "__main__":
    main()
