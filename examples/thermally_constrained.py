"""Figure 12 end to end: throughput in a thermally constrained datacenter.

Runs the 2U high-throughput cluster (the paper's most dramatic case)
against an oversubscribed cooling plant: the ideal, no-wax, and with-wax
arms, the room temperature trajectory, and the headline gain/delay.

Run:  python examples/thermally_constrained.py [platform]
      (platform: 1u, 2u, or ocp; default 2u)
"""

import sys

from _ascii_plot import ascii_plot

from repro import ThroughputStudy, platform_by_name, synthesize_google_trace
from repro.materials.library import commercial_paraffin_with_melting_point

#: Calibrated scenario parameters (see repro.experiments.fig12_throughput).
CALIBRATION = {
    "1u": (0.836, 45.0),
    "2u": (0.695, 49.0),
    "ocp": (0.800, 56.0),
}


def main() -> None:
    platform = sys.argv[1].lower() if len(sys.argv) > 1 else "2u"
    oversubscription, melting_point = CALIBRATION[platform]
    spec = platform_by_name(platform)
    trace = synthesize_google_trace().total

    outcome = ThroughputStudy(
        spec,
        trace,
        oversubscription=oversubscription,
        material=commercial_paraffin_with_melting_point(melting_point),
    ).run()

    hours = outcome.ideal.result.times_hours
    print(
        ascii_plot(
            hours,
            {
                "Ideal": outcome.ideal.normalized_throughput,
                "No Wax": outcome.no_wax.normalized_throughput,
                "With Wax": outcome.with_wax.normalized_throughput,
            },
            title=f"{spec.name}: normalized throughput "
            f"(cooling at {oversubscription:.0%} of peak)",
            y_label="throughput / no-wax peak",
        )
    )
    print()
    print(
        ascii_plot(
            hours,
            {
                "No Wax": outcome.no_wax.result.room_temperature_c,
                "With Wax": outcome.with_wax.result.room_temperature_c,
            },
            title="Cold-aisle temperature: the wax holds the room below "
            "its limit for hours",
            y_label="degC",
        )
    )
    print()
    print(
        f"Peak throughput gain: +{outcome.peak_throughput_gain:.0%} "
        f"(paper: +33% 1U / +69% 2U / +34% OCP)"
    )
    print(
        f"Elevated operation: {outcome.elevated_hours:.1f} h above the "
        f"no-wax ceiling (paper: 5.1 / 3.1 / 3.1 h)"
    )
    melted = outcome.with_wax.result.melt_fraction.max()
    print(f"Wax utilization: {melted:.0%} of latent capacity at its fullest")


if __name__ == "__main__":
    main()
