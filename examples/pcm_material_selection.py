"""Section 2.1 end to end: choosing a PCM for datacenter deployment.

Screens the Table 1 material classes against the paper's requirements,
prices the eicosane-vs-commercial trade, and sweeps commercial blends'
melting points to show why the choice of melting threshold matters as
much as the material.

Run:  python examples/pcm_material_selection.py
"""

from repro import one_u_commodity, synthesize_google_trace
from repro.analysis.tables import format_table
from repro.core.melting_point import optimize_melting_point
from repro.core.scenarios import cached_characterization
from repro.materials.cost import WaxCostModel
from repro.materials.library import COMMERCIAL_PARAFFIN, EICOSANE
from repro.materials.selection import select_material
from repro.units import liters


def main() -> None:
    # 1. Screen the Table 1 classes.
    report = select_material()
    rows = [
        [
            result.name,
            f"{result.energy_density_j_per_ml:.0f} J/ml",
            "PASS" if result.passed else "fail",
            "; ".join(result.failures) or "-",
        ]
        for result in report.results
    ]
    print(
        format_table(
            ["material class", "energy density", "verdict", "why"],
            rows,
            title="Screening Table 1 against datacenter requirements",
        )
    )
    print(f"\nSelected: {report.selected.name}\n")

    # 2. The cost argument.
    costs = WaxCostModel()
    servers = 55_440  # the 10 MW datacenter of 1U servers
    volume = liters(1.2)
    eicosane_bill = costs.datacenter_wax_cost_usd(EICOSANE, volume, servers)
    commercial_bill = costs.datacenter_wax_cost_usd(
        COMMERCIAL_PARAFFIN, volume, servers
    )
    print(
        f"Filling {servers:,} servers with 1.2 L each:\n"
        f"  eicosane n-paraffin (247 J/g):   ${eicosane_bill / 1e6:.2f}M\n"
        f"  commercial paraffin (200 J/g):   ${commercial_bill / 1e3:.0f}k\n"
        f"  -> 20% less storage for 95% less money\n"
    )

    # 3. The melting threshold matters as much as the material.
    spec = one_u_commodity()
    trace = synthesize_google_trace().total
    search = optimize_melting_point(
        cached_characterization(spec),
        spec.power_model,
        trace,
        window_c=(38.0, 56.0),
        step_c=1.0,
    )
    reductions = 1.0 - search.peak_cooling_w / search.baseline_peak_w
    bar_rows = []
    for temp, reduction in zip(search.candidates_c, reductions):
        bar = "#" * int(round(reduction * 400))
        bar_rows.append([f"{temp:.0f} C", f"{reduction:5.1%}", bar])
    print(
        format_table(
            ["melting point", "peak reduction", ""],
            bar_rows,
            title="Peak cooling-load reduction vs melting point "
            "(1U cluster, two-day Google trace)",
        )
    )
    best = search.best_melting_point_c
    print(
        f"\nBest blend melts at {best:.0f} degC — it begins to melt when a "
        f"server exceeds ~75% load, exactly the paper's rule of thumb."
    )


if __name__ == "__main__":
    main()
