"""Figure 11 end to end: cooling load with and without PCM, all platforms.

Reproduces the paper's fully-subscribed-datacenter study for the 1U, 2U,
and Open Compute clusters, plots the two-day cooling-load curves (ASCII),
and prices the savings.

Run:  python examples/cooling_load_reduction.py
"""

from _ascii_plot import ascii_plot

from repro import (
    CoolingLoadStudy,
    open_compute_blade,
    one_u_commodity,
    synthesize_google_trace,
    two_u_commodity,
)
from repro.analysis.tables import format_table
from repro.tco.params import platform_tco_parameters
from repro.tco.scenarios import retrofit_savings, smaller_cooling_savings

PLATFORMS = {
    "1u": one_u_commodity,
    "2u": two_u_commodity,
    "ocp": open_compute_blade,
}


def main() -> None:
    trace = synthesize_google_trace().total
    rows = []
    for key, build in PLATFORMS.items():
        spec = build()
        outcome = CoolingLoadStudy(spec, trace, melting_step_c=1.0).run()

        print(
            ascii_plot(
                outcome.baseline.times_hours,
                {
                    "Cooling Load": outcome.baseline.cooling_load_w / 1e3,
                    "Load with PCM": outcome.with_pcm.cooling_load_w / 1e3,
                },
                title=f"\n{spec.name}: cluster cooling load over two days",
                y_label="kW per 1008-server cluster",
            )
        )

        cooling = smaller_cooling_savings(outcome.peak_reduction_fraction)
        params = platform_tco_parameters(key)
        retrofit = retrofit_savings(
            outcome.provisioning.fleet_growth_fraction,
            server_count=spec.datacenter_servers,
            wax_capex_usd_per_server_month=params.wax_capex_usd_per_server,
        )
        rows.append(
            [
                spec.name,
                f"{outcome.material.melting_point_c:.0f} C",
                f"-{outcome.peak_reduction_fraction:.1%}",
                f"+{outcome.provisioning.fleet_growth_fraction:.1%}",
                f"${cooling.annual_savings_usd / 1e3:.0f}k/yr",
                f"${retrofit.annual_savings_usd / 1e6:.1f}M/yr",
            ]
        )

    print()
    print(
        format_table(
            [
                "platform",
                "best wax",
                "peak cooling",
                "extra servers",
                "smaller plant",
                "retrofit",
            ],
            rows,
            title="Section 5.1 summary (paper: -8.9%/-12%/-8.3%; "
            "+9.8%/+14.6%/+8.9%; $187k/$254k/$174k; ~$3M)",
        )
    )


if __name__ == "__main__":
    main()
