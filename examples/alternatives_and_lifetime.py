"""Alternatives and lifetime: the Section 2/6 arguments, quantified.

Four short studies around the paper's design choices:

1. chilled-water tank vs in-server PCM on the same cooling-load trace
   (the Section 6 TE-Shave comparison);
2. the cooling-electricity arbitrage under the paper's $0.13/$0.08
   tariff — and why it is negligible next to the capacity savings;
3. which Table 1 material classes survive four years of daily cycling;
4. computational sprinting vs thermal time shifting: the same physics,
   four orders of magnitude apart in time.

Run:  python examples/alternatives_and_lifetime.py
"""

from repro import CoolingLoadStudy, one_u_commodity, synthesize_google_trace
from repro.analysis.tables import format_table
from repro.cooling.chilled_water import shave_with_tank, tank_matching_pcm_capacity
from repro.dcsim.cluster import ClusterTopology
from repro.materials.degradation import assess_lifetime
from repro.materials.library import MATERIAL_CLASSES
from repro.sprinting import SprintChip, run_sprint
from repro.tco.energy import compare_energy_shift
from repro.tco.scenarios import smaller_cooling_savings


def main() -> None:
    spec = one_u_commodity()
    trace = synthesize_google_trace().total
    topology = ClusterTopology(server_count=1008)
    outcome = CoolingLoadStudy(
        spec, trace, topology=topology, melting_step_c=1.0
    ).run()

    # -- 1. chilled water vs PCM ----------------------------------------
    tank = tank_matching_pcm_capacity(
        spec.wax_loadout.latent_capacity_j,
        topology.server_count,
        discharge_ua_w_per_k=4_000.0,
        pump_power_w=1_500.0,
        floor_area_m2=12.0,
    )
    shave = shave_with_tank(
        outcome.baseline.times_s,
        outcome.baseline.cooling_load_w,
        tank,
        plant_capacity_w=outcome.with_pcm.peak_cooling_load_w,
    )
    print(
        format_table(
            ["", "in-server PCM", "chilled-water tank"],
            [
                ["peak reduction", f"{outcome.peak_reduction_fraction:.1%}",
                 f"{shave.peak_reduction_fraction:.1%}"],
                ["pumping energy (2 days)", "0 (passive)",
                 f"{shave.pump_energy_j / 3.6e6:.0f} kWh"],
                ["standing losses (2 days)", "0 (sealed, indoors)",
                 f"{shave.standing_loss_j / 3.6e6:.0f} kWh(th)"],
                ["floor space", "0 (inside servers)",
                 f"{tank.floor_area_m2:.0f} m^2 outdoors"],
            ],
            title="Same joules of storage, two technologies (1008-server cluster)",
        )
    )

    # -- 2. energy arbitrage --------------------------------------------
    energy = compare_energy_shift(outcome.baseline, outcome.with_pcm)
    capacity = smaller_cooling_savings(outcome.peak_reduction_fraction)
    print(
        f"\nCooling electricity saved by time shifting: "
        f"${energy.cost_savings_usd * 182:.0f}/yr "
        f"(the wax banks ~2% of a day's heat)"
    )
    print(
        f"Cooling capacity saved by time shifting:    "
        f"${capacity.annual_savings_usd:,.0f}/yr"
    )
    print("-> PCM is a capacity (kW) play, not an energy (kWh) play.\n")

    # -- 3. lifetime ------------------------------------------------------
    rows = []
    for cls in MATERIAL_CLASSES:
        a = assess_lifetime(cls.stability)
        rows.append(
            [
                cls.name,
                f"{a.remaining_capacity_fraction:.0%}",
                "survives" if a.survives_server_lifetime else "needs replacement",
            ]
        )
    print(
        format_table(
            ["material class", "capacity after 4 years", "verdict"],
            rows,
            title="Daily melt/freeze cycling over a server lifetime",
        )
    )

    # -- 4. time scales -----------------------------------------------------
    chip = SprintChip()
    bare = run_sprint(chip, 16.0, horizon_s=1800.0)
    sprint = run_sprint(chip, 16.0, pcm_grams=10.0, horizon_s=1800.0)
    print(
        f"\nChip scale: 10 g of eicosane stretches a 16 W sprint from "
        f"{bare.duration_s:.0f} s to {sprint.duration_s:.0f} s."
    )
    print(
        "Server scale: 1.2 L of commercial paraffin buffers the daily peak "
        "for ~6 hours."
    )
    print(
        "Same enthalpy method, same solver — the regimes differ by four "
        "orders of magnitude in time."
    )


if __name__ == "__main__":
    main()
