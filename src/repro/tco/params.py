"""Table 2: parameters used to model TCO.

All rates are dollars per month. "Dollars per watt refers to dollars per
watt of datacenter critical power" (Table 2 caption); this module uses
$/kW-month to match the table. Ranged entries in the table span the three
platforms; :func:`platform_tco_parameters` instantiates the point value
for each platform (server-linked terms scale with the $2,000 / $7,000 /
$4,000 unit costs; energy terms with each platform's energy per critical
watt).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Server CapEx amortization used by the paper (4-year server lifespan).
SERVER_AMORTIZATION_MONTHS = 48

#: Monthly interest is ~26.4% of the monthly amortized server CapEx in
#: Table 2 ($11.00 / $42 = $38.50 / $146 = 0.264) — the paper's Barroso-
#: style interest addition.
SERVER_INTEREST_RATIO = 0.264


@dataclass(frozen=True)
class TCOParameters:
    """One platform's instantiation of Table 2 (all $/month rates)."""

    facility_space_capex_usd_per_sqft: float = 1.29
    ups_capex_usd_per_server: float = 0.13
    power_infra_capex_usd_per_kw: float = 16.0
    cooling_infra_capex_usd_per_kw: float = 7.0
    rest_capex_usd_per_kw: float = 20.0
    dc_interest_usd_per_kw: float = 34.0
    server_capex_usd_per_server: float = 42.0
    wax_capex_usd_per_server: float = 0.08
    server_interest_usd_per_server: float = 11.0
    datacenter_opex_usd_per_kw: float = 20.8
    server_energy_opex_usd_per_kw: float = 22.0
    server_power_opex_usd_per_kw: float = 12.0
    cooling_energy_opex_usd_per_kw: float = 18.4
    rest_opex_usd_per_kw: float = 6.0
    #: Floor space per kW of critical power (typical raised-floor density).
    sqft_per_kw: float = 15.0

    def __post_init__(self) -> None:
        for name in (
            "facility_space_capex_usd_per_sqft",
            "ups_capex_usd_per_server",
            "power_infra_capex_usd_per_kw",
            "cooling_infra_capex_usd_per_kw",
            "rest_capex_usd_per_kw",
            "dc_interest_usd_per_kw",
            "server_capex_usd_per_server",
            "server_interest_usd_per_server",
            "datacenter_opex_usd_per_kw",
            "server_energy_opex_usd_per_kw",
            "server_power_opex_usd_per_kw",
            "cooling_energy_opex_usd_per_kw",
            "rest_opex_usd_per_kw",
            "sqft_per_kw",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.wax_capex_usd_per_server < 0:
            raise ConfigurationError("wax CapEx must be non-negative")

    def without_wax(self) -> "TCOParameters":
        """The same parameter set with no wax line item."""
        return replace(self, wax_capex_usd_per_server=0.0)

    def with_wax_capex(self, usd_per_server_month: float) -> "TCOParameters":
        """Override the wax CapEx (e.g. computed from a WaxCostModel)."""
        return replace(self, wax_capex_usd_per_server=usd_per_server_month)


#: Per-platform Table 2 instantiations, keyed by the short names used by
#: :mod:`repro.server.configs`. The ranged table entries resolve to these
#: points: ServerCapEx = unit cost / 48 months; ServerInterest = 26.4% of
#: it; energy OpEx tracks each platform's delivered energy per critical
#: watt (densest platform highest).
_PLATFORM_PARAMS: dict[str, TCOParameters] = {
    "1u": TCOParameters(
        power_infra_capex_usd_per_kw=15.9,
        rest_capex_usd_per_kw=19.4,
        dc_interest_usd_per_kw=31.8,
        server_capex_usd_per_server=2000.0 / SERVER_AMORTIZATION_MONTHS,
        server_interest_usd_per_server=11.0,
        wax_capex_usd_per_server=0.06,
        datacenter_opex_usd_per_kw=20.7,
        server_energy_opex_usd_per_kw=19.2,
        rest_opex_usd_per_kw=5.7,
    ),
    "2u": TCOParameters(
        power_infra_capex_usd_per_kw=16.2,
        rest_capex_usd_per_kw=21.0,
        dc_interest_usd_per_kw=36.3,
        server_capex_usd_per_server=7000.0 / SERVER_AMORTIZATION_MONTHS,
        server_interest_usd_per_server=38.5,
        wax_capex_usd_per_server=0.10,
        datacenter_opex_usd_per_kw=20.9,
        server_energy_opex_usd_per_kw=24.9,
        rest_opex_usd_per_kw=6.6,
    ),
    "ocp": TCOParameters(
        power_infra_capex_usd_per_kw=16.0,
        rest_capex_usd_per_kw=20.2,
        dc_interest_usd_per_kw=34.0,
        server_capex_usd_per_server=4000.0 / SERVER_AMORTIZATION_MONTHS,
        server_interest_usd_per_server=22.0,
        wax_capex_usd_per_server=0.08,
        datacenter_opex_usd_per_kw=20.8,
        server_energy_opex_usd_per_kw=22.4,
        rest_opex_usd_per_kw=6.2,
    ),
}


def platform_tco_parameters(platform: str) -> TCOParameters:
    """Table 2 parameters for a platform (``1u``, ``2u``, or ``ocp``)."""
    try:
        return _PLATFORM_PARAMS[platform.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {platform!r}; choose from "
            f"{sorted(_PLATFORM_PARAMS)}"
        ) from None
