"""Total cost of ownership modeling (paper Section 4.3, Table 2, Eq. 1).

The TCO model follows Kontorinis et al. as modified by the paper: monthly
capital expenditures (facility space, UPS, power infrastructure, cooling
infrastructure, rest), datacenter and server interest, server + wax CapEx,
and operating expenditures (datacenter, server energy, server power,
cooling energy, rest). Cooling terms are isolated so the PCM scenarios can
price a smaller plant, extra servers, the retrofit case, and the
thermally-constrained TCO-efficiency comparison.
"""

from repro.tco.params import TCOParameters, platform_tco_parameters
from repro.tco.model import TCOBreakdown, monthly_tco
from repro.tco.scenarios import (
    RetrofitSavings,
    SmallerCoolingSavings,
    TCOEfficiency,
    retrofit_savings,
    smaller_cooling_savings,
    tco_efficiency,
)
from repro.tco.energy import (
    AmbientAwarePlant,
    AmbientProfile,
    CoolingEnergyCost,
    ElectricityTariff,
    EnergyShiftComparison,
    compare_energy_shift,
    cooling_energy_cost,
)

__all__ = [
    "ElectricityTariff",
    "AmbientProfile",
    "AmbientAwarePlant",
    "CoolingEnergyCost",
    "EnergyShiftComparison",
    "cooling_energy_cost",
    "compare_energy_shift",
    "TCOParameters",
    "platform_tco_parameters",
    "TCOBreakdown",
    "monthly_tco",
    "SmallerCoolingSavings",
    "smaller_cooling_savings",
    "RetrofitSavings",
    "retrofit_savings",
    "TCOEfficiency",
    "tco_efficiency",
]
