"""Time-of-day energy economics of thermal time shifting.

Figure 1 of the paper lists two additional advantages of releasing the
stored heat at night: "Nighttime: lower ambient temperature, more natural
cooling opportunities" and "Off-peak time: power is cheaper". Section 4.3
supplies the rates: "a peak electricity cost of $0.13 per kWh and an
off-peak electricity cost of $0.08 per kWh".

This module monetizes both effects for a simulated cluster run:

* a two-rate :class:`ElectricityTariff` (peak window configurable);
* a sinusoidal :class:`AmbientProfile` of outdoor temperature;
* an :class:`AmbientAwarePlant` whose coefficient of performance falls as
  the outdoor temperature rises (condenser-side penalty — the standard
  chiller behaviour that makes night-time heat rejection cheaper);
* :func:`cooling_energy_cost`, which integrates a cooling-load trace
  against the tariff and the ambient-dependent COP.

PCM does not reduce the total heat that must be rejected — it moves it
from expensive, inefficient afternoon hours into cheap, efficient night
hours, and these functions measure exactly that arbitrage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.simulator import SimulationResult
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class ElectricityTariff:
    """A two-rate time-of-use tariff (the paper's $0.13 / $0.08 per kWh).

    The peak window is [peak_start_hour, peak_end_hour) in local hours;
    wrap-around windows (e.g. 22 -> 6) are supported.
    """

    peak_usd_per_kwh: float = 0.13
    offpeak_usd_per_kwh: float = 0.08
    peak_start_hour: float = 7.0
    peak_end_hour: float = 23.0

    def __post_init__(self) -> None:
        if self.peak_usd_per_kwh <= 0 or self.offpeak_usd_per_kwh <= 0:
            raise ConfigurationError("electricity rates must be positive")
        if self.peak_usd_per_kwh < self.offpeak_usd_per_kwh:
            raise ConfigurationError(
                "peak rate must be at least the off-peak rate"
            )
        for label, hour in (
            ("peak start", self.peak_start_hour),
            ("peak end", self.peak_end_hour),
        ):
            if not 0.0 <= hour <= 24.0:
                raise ConfigurationError(f"{label} hour must be in [0, 24]")

    def is_peak(self, time_s: float | np.ndarray) -> np.ndarray:
        """Whether a time (seconds from local midnight) is in the peak
        window."""
        hour = (np.asarray(time_s, dtype=float) / SECONDS_PER_HOUR) % 24.0
        if self.peak_start_hour <= self.peak_end_hour:
            return (hour >= self.peak_start_hour) & (hour < self.peak_end_hour)
        return (hour >= self.peak_start_hour) | (hour < self.peak_end_hour)

    def price_usd_per_kwh(self, time_s: float | np.ndarray) -> np.ndarray:
        """Rate in effect at a time."""
        return np.where(
            self.is_peak(time_s), self.peak_usd_per_kwh, self.offpeak_usd_per_kwh
        )


@dataclass(frozen=True)
class AmbientProfile:
    """Sinusoidal daily outdoor temperature.

    Peaks at ``peak_hour`` (mid-afternoon by default) — the worst moment
    for heat rejection and, without PCM, also the moment of peak cooling
    load.
    """

    mean_c: float = 20.0
    amplitude_c: float = 8.0
    peak_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.amplitude_c < 0:
            raise ConfigurationError("amplitude must be non-negative")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigurationError("peak hour must be in [0, 24)")

    def temperature_c(self, time_s: float | np.ndarray) -> np.ndarray:
        """Outdoor temperature at a time (seconds from local midnight)."""
        hour = (np.asarray(time_s, dtype=float) / SECONDS_PER_HOUR) % 24.0
        phase = 2.0 * np.pi * (hour - self.peak_hour) / 24.0
        return self.mean_c + self.amplitude_c * np.cos(phase)


@dataclass(frozen=True)
class AmbientAwarePlant:
    """A cooling plant whose COP degrades with outdoor temperature.

    ``cop = cop_reference - cop_slope_per_k * (T_out - reference_c)``,
    floored at ``min_cop``. Typical water-cooled chillers lose roughly
    2-3% of COP per Kelvin of condenser-side temperature.
    """

    cop_reference: float = 4.5
    reference_ambient_c: float = 20.0
    cop_slope_per_k: float = 0.10
    min_cop: float = 1.5

    def __post_init__(self) -> None:
        if self.cop_reference <= 0 or self.min_cop <= 0:
            raise ConfigurationError("COP values must be positive")
        if self.cop_slope_per_k < 0:
            raise ConfigurationError("COP slope must be non-negative")
        if self.min_cop > self.cop_reference:
            raise ConfigurationError("min COP cannot exceed the reference COP")

    def cop(self, ambient_c: float | np.ndarray) -> np.ndarray:
        """Coefficient of performance at an outdoor temperature."""
        value = self.cop_reference - self.cop_slope_per_k * (
            np.asarray(ambient_c, dtype=float) - self.reference_ambient_c
        )
        return np.clip(value, self.min_cop, None)

    def electrical_power_w(
        self, heat_load_w: np.ndarray, ambient_c: np.ndarray
    ) -> np.ndarray:
        """Electricity drawn to remove a heat load at an outdoor temp."""
        load = np.asarray(heat_load_w, dtype=float)
        if np.any(load < -1e-9):
            raise ConfigurationError("heat load must be non-negative")
        return np.clip(load, 0.0, None) / self.cop(ambient_c)


@dataclass(frozen=True)
class CoolingEnergyCost:
    """Integrated cooling-electricity economics of one simulation run."""

    cooling_energy_kwh: float
    peak_energy_kwh: float
    offpeak_energy_kwh: float
    total_usd: float

    @property
    def offpeak_share(self) -> float:
        """Fraction of cooling electricity consumed at the off-peak rate."""
        total = self.cooling_energy_kwh
        if total <= 0:
            return 0.0
        return self.offpeak_energy_kwh / total


def cooling_energy_cost(
    result: SimulationResult,
    tariff: ElectricityTariff | None = None,
    ambient: AmbientProfile | None = None,
    plant: AmbientAwarePlant | None = None,
) -> CoolingEnergyCost:
    """Price the cooling electricity of a simulated cluster run.

    The simulation's cooling-load trace (heat the plant must remove) is
    divided by the instantaneous ambient-dependent COP to get electrical
    power, then integrated against the time-of-use tariff.
    """
    tariff = tariff or ElectricityTariff()
    ambient = ambient or AmbientProfile()
    plant = plant or AmbientAwarePlant()

    times = result.times_s
    if len(times) < 2:
        raise ConfigurationError("simulation result is too short to price")
    dt = np.diff(times, prepend=times[0])
    ambient_c = ambient.temperature_c(times)
    electrical_w = plant.electrical_power_w(result.cooling_load_w, ambient_c)
    energy_kwh = electrical_w * dt / 3.6e6

    peak_mask = tariff.is_peak(times)
    peak_kwh = float(np.sum(energy_kwh[peak_mask]))
    offpeak_kwh = float(np.sum(energy_kwh[~peak_mask]))
    cost = (
        peak_kwh * tariff.peak_usd_per_kwh
        + offpeak_kwh * tariff.offpeak_usd_per_kwh
    )
    return CoolingEnergyCost(
        cooling_energy_kwh=peak_kwh + offpeak_kwh,
        peak_energy_kwh=peak_kwh,
        offpeak_energy_kwh=offpeak_kwh,
        total_usd=cost,
    )


@dataclass(frozen=True)
class EnergyShiftComparison:
    """With/without-PCM cooling-energy economics."""

    baseline: CoolingEnergyCost
    with_pcm: CoolingEnergyCost

    @property
    def cost_savings_usd(self) -> float:
        """Cooling-electricity saved by time shifting."""
        return self.baseline.total_usd - self.with_pcm.total_usd

    @property
    def cost_savings_fraction(self) -> float:
        """Savings relative to the baseline bill."""
        if self.baseline.total_usd <= 0:
            return 0.0
        return self.cost_savings_usd / self.baseline.total_usd

    @property
    def offpeak_shift(self) -> float:
        """Increase in the off-peak share of cooling electricity."""
        return self.with_pcm.offpeak_share - self.baseline.offpeak_share


def compare_energy_shift(
    baseline: SimulationResult,
    with_pcm: SimulationResult,
    tariff: ElectricityTariff | None = None,
    ambient: AmbientProfile | None = None,
    plant: AmbientAwarePlant | None = None,
) -> EnergyShiftComparison:
    """Price both arms of a cooling-load study under one tariff/climate."""
    return EnergyShiftComparison(
        baseline=cooling_energy_cost(baseline, tariff, ambient, plant),
        with_pcm=cooling_energy_cost(with_pcm, tariff, ambient, plant),
    )
