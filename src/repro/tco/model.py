"""Equation 1: the monthly TCO of a datacenter deployment.

    TCO = FacilitySpaceCapEx + UPSCapEx + PowerInfraCapEx
        + CoolingInfraCapEx + RestCapEx + DCInterest
        + (ServerCapEx + WaxCapEx) + ServerInterest
        + DatacenterOpEx + ServerEnergyOpEx + ServerPowerOpEx
        + CoolingEnergyOpEx + RestOpEx

Per-kW terms multiply the datacenter critical power; per-server terms the
fleet size; facility space the floor area. Cooling terms scale with the
*provisioned cooling capacity* relative to critical power, which is how
the PCM scenarios monetize a smaller plant: "we assume a linear
relationship between the cost of cooling infrastructure and the peak
cooling load the cooling system can handle".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.params import TCOParameters


@dataclass(frozen=True)
class TCOBreakdown:
    """Itemized monthly TCO in dollars."""

    facility_space_capex: float
    ups_capex: float
    power_infra_capex: float
    cooling_infra_capex: float
    rest_capex: float
    dc_interest: float
    server_capex: float
    wax_capex: float
    server_interest: float
    datacenter_opex: float
    server_energy_opex: float
    server_power_opex: float
    cooling_energy_opex: float
    rest_opex: float

    @property
    def total_usd_per_month(self) -> float:
        """Equation 1's sum."""
        return (
            self.facility_space_capex
            + self.ups_capex
            + self.power_infra_capex
            + self.cooling_infra_capex
            + self.rest_capex
            + self.dc_interest
            + self.server_capex
            + self.wax_capex
            + self.server_interest
            + self.datacenter_opex
            + self.server_energy_opex
            + self.server_power_opex
            + self.cooling_energy_opex
            + self.rest_opex
        )

    @property
    def total_usd_per_year(self) -> float:
        """Annualized total."""
        return 12.0 * self.total_usd_per_month

    @property
    def cooling_usd_per_month(self) -> float:
        """The isolated thermal-control cost (plant CapEx + its energy)."""
        return self.cooling_infra_capex + self.cooling_energy_opex

    def as_dict(self) -> dict[str, float]:
        """Line items as a name -> dollars mapping (stable order)."""
        return {
            "FacilitySpaceCapEx": self.facility_space_capex,
            "UPSCapEx": self.ups_capex,
            "PowerInfraCapEx": self.power_infra_capex,
            "CoolingInfraCapEx": self.cooling_infra_capex,
            "RestCapEx": self.rest_capex,
            "DCInterest": self.dc_interest,
            "ServerCapEx": self.server_capex,
            "WaxCapEx": self.wax_capex,
            "ServerInterest": self.server_interest,
            "DatacenterOpEx": self.datacenter_opex,
            "ServerEnergyOpEx": self.server_energy_opex,
            "ServerPowerOpEx": self.server_power_opex,
            "CoolingEnergyOpEx": self.cooling_energy_opex,
            "RestOpEx": self.rest_opex,
        }


def monthly_tco(
    params: TCOParameters,
    critical_power_kw: float,
    server_count: int,
    with_wax: bool = False,
    cooling_capacity_fraction: float = 1.0,
    utilization_of_energy: float = 1.0,
) -> TCOBreakdown:
    """Evaluate Equation 1 for a deployment.

    Parameters
    ----------
    critical_power_kw:
        Datacenter critical power (the paper evaluates 10 MW).
    server_count:
        Fleet size.
    with_wax:
        Include the WaxCapEx line (PCM-equipped fleet).
    cooling_capacity_fraction:
        Provisioned cooling capacity relative to the no-PCM peak; a
        PCM-enabled deployment provisioning a 12% smaller plant passes
        0.88 and its cooling CapEx scales down accordingly.
    utilization_of_energy:
        Scale on the energy-proportional OpEx terms (server energy and
        cooling energy), letting scenarios reflect average-vs-peak energy.
    """
    if critical_power_kw <= 0:
        raise ConfigurationError("critical power must be positive")
    if server_count <= 0:
        raise ConfigurationError("server count must be positive")
    if not 0.0 < cooling_capacity_fraction <= 2.0:
        raise ConfigurationError(
            f"cooling capacity fraction must be in (0, 2], got "
            f"{cooling_capacity_fraction}"
        )
    if not 0.0 <= utilization_of_energy <= 1.5:
        raise ConfigurationError(
            f"energy utilization must be in [0, 1.5], got {utilization_of_energy}"
        )

    sqft = params.sqft_per_kw * critical_power_kw
    return TCOBreakdown(
        facility_space_capex=params.facility_space_capex_usd_per_sqft * sqft,
        ups_capex=params.ups_capex_usd_per_server * server_count,
        power_infra_capex=params.power_infra_capex_usd_per_kw * critical_power_kw,
        cooling_infra_capex=(
            params.cooling_infra_capex_usd_per_kw
            * critical_power_kw
            * cooling_capacity_fraction
        ),
        rest_capex=params.rest_capex_usd_per_kw * critical_power_kw,
        dc_interest=params.dc_interest_usd_per_kw * critical_power_kw,
        server_capex=params.server_capex_usd_per_server * server_count,
        wax_capex=(
            params.wax_capex_usd_per_server * server_count if with_wax else 0.0
        ),
        server_interest=params.server_interest_usd_per_server * server_count,
        datacenter_opex=params.datacenter_opex_usd_per_kw * critical_power_kw,
        server_energy_opex=(
            params.server_energy_opex_usd_per_kw
            * critical_power_kw
            * utilization_of_energy
        ),
        server_power_opex=params.server_power_opex_usd_per_kw * critical_power_kw,
        cooling_energy_opex=(
            params.cooling_energy_opex_usd_per_kw
            * critical_power_kw
            * utilization_of_energy
        ),
        rest_opex=params.rest_opex_usd_per_kw * critical_power_kw,
    )
