"""Monetizing PCM: the paper's three dollar-figure results (Section 5).

1. **Smaller cooling plant** — with the peak cooling load clipped by
   fraction ``r``, a new datacenter provisions a plant smaller by ``r``.
   The paper reports $187k / $254k / $174k per year for the 1U / 2U / OCP
   10 MW datacenters "on the cooling system and cooling power
   infrastructure": the avoided capacity is priced at the cooling plant's
   CapEx rate plus the share of power infrastructure and interest that
   serves the plant.

2. **Retrofit** — old servers reach their 4-year end of life while the
   cooling plant has 6 useful years left. A denser replacement fleet
   would normally force a new, larger plant; PCM lets the new fleet
   oversubscribe the old plant instead. The savings are the annualized
   cost of the avoided new plant (the paper's $3.0M / $3.2M / $3.1M per
   year; cooling infrastructure "can cost over 8 million dollars" for
   10 MW, and with its power infrastructure roughly double that).

3. **TCO efficiency** (Section 5.2) — in the thermally constrained
   datacenter, matching PCM's peak throughput without PCM requires
   proportionally more machines (and their share of everything except the
   fixed facility). Efficiency improvement = 1 - TCO(PCM fleet) /
   TCO(scaled fleet), the paper's 23% / 39% / 24%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.model import TCOBreakdown, monthly_tco
from repro.tco.params import TCOParameters

#: $/kW-month of avoided cooling capacity: the plant CapEx (Table 2's
#: $7.0) plus the power-infrastructure and interest share attributable to
#: the cooling system (~$10.5), matching the paper's per-year savings.
COOLING_CAPACITY_VALUE_USD_PER_KW_MONTH = 17.5

#: Installed cost of a complete cooling system (plant + its power
#: infrastructure), dollars per watt of datacenter critical power. The
#: paper cites over $8M for the plant alone at 10 MW; with the cooling
#: power infrastructure the retrofit comparison values the avoided build
#: at ~$1.7/W.
COOLING_SYSTEM_INSTALLED_USD_PER_W = 1.66

#: Remaining service life of the existing plant in the retrofit scenario.
RETROFIT_REMAINING_YEARS = 6


@dataclass(frozen=True)
class SmallerCoolingSavings:
    """Annual savings from provisioning a smaller plant."""

    peak_reduction_fraction: float
    critical_power_kw: float
    annual_savings_usd: float


def smaller_cooling_savings(
    peak_reduction_fraction: float,
    critical_power_kw: float = 10_000.0,
    capacity_value_usd_per_kw_month: float = COOLING_CAPACITY_VALUE_USD_PER_KW_MONTH,
) -> SmallerCoolingSavings:
    """Annual cooling-system savings from a peak-cooling-load reduction."""
    if not 0.0 <= peak_reduction_fraction < 1.0:
        raise ConfigurationError(
            f"reduction fraction must be in [0, 1), got {peak_reduction_fraction}"
        )
    if critical_power_kw <= 0:
        raise ConfigurationError("critical power must be positive")
    annual = (
        peak_reduction_fraction
        * critical_power_kw
        * capacity_value_usd_per_kw_month
        * 12.0
    )
    return SmallerCoolingSavings(
        peak_reduction_fraction=peak_reduction_fraction,
        critical_power_kw=critical_power_kw,
        annual_savings_usd=annual,
    )


@dataclass(frozen=True)
class RetrofitSavings:
    """Annual savings from oversubscribing the surviving plant."""

    fleet_growth_fraction: float
    critical_power_kw: float
    avoided_system_cost_usd: float
    annual_wax_cost_usd: float
    annual_savings_usd: float


def retrofit_savings(
    fleet_growth_fraction: float,
    critical_power_kw: float = 10_000.0,
    server_count: int = 0,
    wax_capex_usd_per_server_month: float = 0.08,
    installed_usd_per_w: float = COOLING_SYSTEM_INSTALLED_USD_PER_W,
    remaining_years: int = RETROFIT_REMAINING_YEARS,
) -> RetrofitSavings:
    """Annual savings versus building a new cooling system.

    Without PCM, the denser replacement fleet needs a new plant sized for
    its (grown) peak; with PCM the old plant carries it. Savings are the
    avoided build annualized over the plant's remaining life, minus the
    wax bill.
    """
    if fleet_growth_fraction < 0:
        raise ConfigurationError("fleet growth must be non-negative")
    if remaining_years <= 0:
        raise ConfigurationError("remaining years must be positive")
    avoided = (
        critical_power_kw * 1000.0 * (1.0 + fleet_growth_fraction) * installed_usd_per_w
    )
    wax_annual = wax_capex_usd_per_server_month * server_count * 12.0
    annual = avoided / remaining_years - wax_annual
    return RetrofitSavings(
        fleet_growth_fraction=fleet_growth_fraction,
        critical_power_kw=critical_power_kw,
        avoided_system_cost_usd=avoided,
        annual_wax_cost_usd=wax_annual,
        annual_savings_usd=annual,
    )


@dataclass(frozen=True)
class TCOEfficiency:
    """Section 5.2's TCO-efficiency comparison."""

    throughput_gain_fraction: float
    pcm_tco: TCOBreakdown
    matched_tco: TCOBreakdown

    @property
    def improvement_fraction(self) -> float:
        """1 - TCO(PCM) / TCO(fleet scaled to match peak throughput)."""
        return 1.0 - (
            self.pcm_tco.total_usd_per_month / self.matched_tco.total_usd_per_month
        )


def tco_efficiency(
    params: TCOParameters,
    throughput_gain_fraction: float,
    critical_power_kw: float = 10_000.0,
    server_count: int = 55_440,
) -> TCOEfficiency:
    """TCO efficiency of PCM's throughput gain (the paper's 23-39%).

    The matched deployment scales servers, critical power, and the
    throughput-proportional OpEx by ``1 + gain``; the facility floor space
    is held fixed (the paper assumes the machines fit the existing
    warehouse — that is the point of packing more compute under the same
    roof), which is modeled by keeping the facility term at the original
    area.
    """
    if throughput_gain_fraction < 0:
        raise ConfigurationError("throughput gain must be non-negative")
    pcm = monthly_tco(
        params,
        critical_power_kw=critical_power_kw,
        server_count=server_count,
        with_wax=True,
    )
    growth = 1.0 + throughput_gain_fraction
    scaled = monthly_tco(
        params.without_wax(),
        critical_power_kw=critical_power_kw * growth,
        server_count=int(server_count * growth),
        with_wax=False,
    )
    # Hold the facility space at the original footprint.
    scaled = TCOBreakdown(
        **{
            **scaled.__dict__,
            "facility_space_capex": pcm.facility_space_capex,
        }
    )
    return TCOEfficiency(
        throughput_gain_fraction=throughput_gain_fraction,
        pcm_tco=pcm,
        matched_tco=scaled,
    )
