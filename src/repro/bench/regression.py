"""The tier-2 performance-regression runner behind ``repro-bench``.

The suite mirrors ``benchmarks/test_bench_micro.py``: each scenario
exercises one kernel that dominates the library's wall-clock — the
chassis RK4 transient, the steady-state fixed point, the vectorized
cluster tick, a fluid-mode simulated day, and an event-mode simulated
day. Scenarios run with observability collection on, so every result
carries the run's deterministic work counters (RK4 steps, events
processed) alongside its wall-clock:

* **times** catch "the same work got slower" regressions and are gated
  with a relative tolerance (CI hardware is noisy, so the default is
  generous);
* **counters** catch "the code silently started doing more work"
  regressions machine-independently; they are reported always and gated
  only under ``--strict-counters`` (a legitimate algorithm change should
  refresh the baseline instead).

Artifacts are versioned JSON (``BENCH_<sha>.json``); the baseline the
gate compares against is the same schema, checked in at
``benchmarks/baseline.json`` and refreshed with ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import platform
import pstats
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs import get_registry
from repro.runner.pool import sweep

#: Version tag of the benchmark artifact schema.
BENCH_SCHEMA = "repro.bench/1"

#: Default relative slowdown tolerated before the gate fails (55%:
#: shared CI runners jitter; the counters catch subtler drift).
DEFAULT_TOLERANCE = 0.55

#: Default baseline location relative to the repository root.
DEFAULT_BASELINE = "benchmarks/baseline.json"


@dataclass(frozen=True)
class Scenario:
    """One benchmark scenario: a named, repeatable callable.

    ``build(quick, jobs)`` returns the runnable; scenarios that measure
    a parallel-capable sweep honor ``jobs``, the single-kernel ones
    ignore it (their point is the serial hot path).
    """

    name: str
    description: str
    build: Callable[[bool, int], Callable[[], object]]
    repeats: int = 3


def _chassis_transient(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.server.chassis import constant_utilization
    from repro.server.configs import one_u_commodity
    from repro.thermal.solver import simulate_transient
    from repro.units import hours

    network = one_u_commodity().chassis.build_network(
        constant_utilization(0.8), with_wax=True
    )
    horizon = hours(0.25) if quick else hours(1.0)
    return lambda: simulate_transient(network, horizon, output_interval_s=300.0)


def _chassis_steady_state(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.server.chassis import constant_utilization
    from repro.server.configs import one_u_commodity
    from repro.thermal.steady_state import solve_steady_state

    network = one_u_commodity().chassis.build_network(
        constant_utilization(1.0), placebo=True
    )
    return lambda: solve_steady_state(network)


def _cluster_ticks(quick: bool, jobs: int) -> Callable[[], object]:
    import numpy as np

    from repro.dcsim.thermal_coupling import ClusterThermalState
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.characterization import characterize_platform
    from repro.server.configs import one_u_commodity

    spec = one_u_commodity()
    state = ClusterThermalState(
        characterize_platform(spec),
        spec.power_model,
        commercial_paraffin_with_melting_point(43.0),
        server_count=1008,
    )
    utilization = np.full(1008, 0.7)
    n_ticks = 20 if quick else 100

    def run() -> object:
        result = None
        for _ in range(n_ticks):
            result = state.step(60.0, utilization, 2.4)
        return result

    return run


def _fluid_speedup(
    quick: bool, servers: int, gate: bool
) -> Callable[[], object]:
    """Interleaved reference-vs-batched fluid run on the Google day.

    Each repeat runs the scalar reference engine and then the batched
    stretch engine on the identical workload, so machine-load drift hits
    both arms and the ratio stays honest. ``gate`` scenarios (the
    1008-server day, full mode only) land the floored ratio in
    ``dcsim.bench.fluid_speedup`` plus the ``_ge_3x`` gate counter;
    non-gated runs record the ratio for eyeballing only.
    """
    from repro.dcsim.cluster import ClusterTopology
    from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.characterization import characterize_platform
    from repro.server.configs import one_u_commodity
    from repro.workload.google import synthesize_google_trace

    spec = one_u_commodity()
    characterization = characterize_platform(spec)
    trace = synthesize_google_trace().total

    def run() -> dict[str, float]:
        def simulate(engine: str) -> float:
            simulator = DatacenterSimulator(
                characterization,
                spec.power_model,
                commercial_paraffin_with_melting_point(43.0),
                trace,
                topology=ClusterTopology(server_count=servers),
                config=SimulationConfig(
                    mode="fluid", wax_enabled=True, engine=engine
                ),
            )
            start = time.perf_counter()
            simulator.run()
            return time.perf_counter() - start

        reference_s = simulate("reference")
        batched_s = simulate("batched")
        speedup = reference_s / batched_s if batched_s > 0 else 0.0
        obs = get_registry()
        if obs.enabled:
            obs.record("dcsim.bench.fluid_speedup_ratio", speedup)
            # Floor, so the counter reads "at least Nx"; quick mode runs
            # a smaller cluster and skips the gate counters.
            if gate and not quick:
                obs.count("dcsim.bench.fluid_speedup", int(speedup))
                obs.count(
                    "dcsim.bench.fluid_speedup_ge_3x", int(speedup >= 3.0)
                )
        return {
            "reference_s": reference_s,
            "batched_s": batched_s,
            "speedup": speedup,
        }

    return run


def _fluid_day_96(quick: bool, jobs: int) -> Callable[[], object]:
    return _fluid_speedup(quick, servers=48 if quick else 96, gate=False)


def _fluid_day_1008(quick: bool, jobs: int) -> Callable[[], object]:
    return _fluid_speedup(quick, servers=252 if quick else 1008, gate=True)


def _event_day(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.dcsim.cluster import ClusterTopology
    from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.characterization import characterize_platform
    from repro.server.configs import one_u_commodity
    from repro.units import hours
    from repro.workload.synthetic import diurnal_trace

    spec = one_u_commodity()
    characterization = characterize_platform(spec)
    day = diurnal_trace(duration_s=hours(6.0) if quick else hours(24.0))
    servers = 32 if quick else 96
    return lambda: DatacenterSimulator(
        characterization,
        spec.power_model,
        commercial_paraffin_with_melting_point(43.0),
        day,
        topology=ClusterTopology(server_count=servers),
        config=SimulationConfig(mode="event", wax_enabled=True),
    ).run()


def _event_day_1008(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.dcsim.cluster import ClusterTopology
    from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.characterization import characterize_platform
    from repro.server.configs import one_u_commodity
    from repro.units import hours
    from repro.workload.synthetic import diurnal_trace

    spec = one_u_commodity()
    characterization = characterize_platform(spec)
    day = diurnal_trace(duration_s=hours(2.0) if quick else hours(6.0))
    servers = 252 if quick else 1008
    return lambda: DatacenterSimulator(
        characterization,
        spec.power_model,
        commercial_paraffin_with_melting_point(43.0),
        day,
        topology=ClusterTopology(server_count=servers),
        config=SimulationConfig(mode="event", wax_enabled=True),
    ).run()


#: The seed-era event loop on ``event_day_96`` (committed
#: ``benchmarks/baseline.json`` before the batched engine landed):
#: 263212 events in 4.317 s, about 61k events/s. The speedup scenario
#: measures against this fixed anchor rather than the current reference
#: engine, so the counter tracks cumulative engine progress and does not
#: move when the reference loop itself gets faster.
_SEED_DAY96_S = 4.3170459829998435
_SEED_DAY96_EVENTS = 263212


def _event_speedup(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.dcsim.cluster import ClusterTopology
    from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.characterization import characterize_platform
    from repro.server.configs import one_u_commodity
    from repro.units import hours
    from repro.workload.jobs import cached_arrival_stream
    from repro.workload.synthetic import diurnal_trace

    spec = one_u_commodity()
    characterization = characterize_platform(spec)
    day = diurnal_trace(duration_s=hours(6.0) if quick else hours(24.0))
    servers = 32 if quick else 96

    def run() -> dict[str, float]:
        simulator = DatacenterSimulator(
            characterization,
            spec.power_model,
            commercial_paraffin_with_melting_point(43.0),
            day,
            topology=ClusterTopology(server_count=servers),
            config=SimulationConfig(
                mode="event", wax_enabled=True, engine="batched"
            ),
        )
        # Pre-warm the arrival stream so the measured window is engine
        # throughput, not Ogata thinning (the seed anchor excluded
        # per-repeat generation the same way: min-of-repeats).
        cached_arrival_stream(
            simulator.trace,
            server_count=servers,
            slots_per_server=simulator.config.slots_per_server,
            seed=simulator.config.seed,
        )
        obs = get_registry()
        before = obs.snapshot().counters.get("dcsim.events", 0)
        start = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - start
        events = obs.snapshot().counters.get("dcsim.events", 0) - before
        rate = events / elapsed if elapsed > 0 else 0.0
        seed_rate = _SEED_DAY96_EVENTS / _SEED_DAY96_S
        speedup = rate / seed_rate if seed_rate > 0 else 0.0
        if obs.enabled:
            obs.record("dcsim.bench.events_per_sec", rate)
            # Floor, so the counter reads "at least Nx"; the quick lane
            # runs a different workload and records the ratio only for
            # eyeballing, not the gate.
            if not quick:
                obs.count("dcsim.bench.event_speedup", int(speedup))
                obs.count(
                    "dcsim.bench.event_speedup_ge_5x", int(speedup >= 5.0)
                )
        return {
            "events_per_sec": rate,
            "speedup_vs_seed": speedup,
        }

    return run


def _control_overhead(quick: bool, jobs: int) -> Callable[[], object]:
    """Per-tick cost of the control loop over the bare policy stack.

    Runs the chaos plant twice back to back — legacy throttling policy,
    then a :class:`~repro.control.ControlLoop` wrapping the ported
    greedy planner (decision-identical, so both arms do the same
    simulation work) — and attributes the wall-clock difference to the
    loop's per-tick machinery. The microseconds-per-tick figure lands in
    ``control.bench.overhead_us_per_tick`` and the gate counter
    ``control.bench.overhead_le_500us``.
    """
    from repro.control import ControlLoop, GreedyThrottlePolicy
    from repro.faults.chaos import ChaosConfig, build_simulator
    from repro.units import hours

    config = ChaosConfig(
        server_count=8 if quick else 24,
        duration_s=hours(10.0) if quick else hours(36.0),
        tick_interval_s=120.0 if quick else 60.0,
        fault_start_s=hours(1.0),
        fault_end_s=hours(5.0),
        max_fault_s=hours(2.0),
        quiet_from_s=hours(6.0),
        relax_s=hours(2.0),
    )

    def run() -> dict[str, float]:
        def control_factory(room, injector):
            return ControlLoop(
                GreedyThrottlePolicy(),
                room,
                injector=injector,
                tick_interval_s=config.tick_interval_s,
            )

        # Interleave the arms so drift in machine load hits both.
        plain_s = []
        control_s = []
        n_ticks = 0
        for _ in range(2):
            plain = build_simulator(config)
            start = time.perf_counter()
            plain.run()
            plain_s.append(time.perf_counter() - start)

            controlled = build_simulator(
                config, policy_factory=control_factory
            )
            start = time.perf_counter()
            controlled.run()
            control_s.append(time.perf_counter() - start)
            n_ticks = len(controlled.policy.decision_log)

        overhead_us = (
            (min(control_s) - min(plain_s)) / max(n_ticks, 1) * 1e6
        )
        obs = get_registry()
        if obs.enabled:
            obs.record("control.bench.overhead_us_per_tick", overhead_us)
            # The quick lane runs a different plant; gate on full only.
            if not quick:
                obs.count(
                    "control.bench.overhead_le_500us",
                    int(overhead_us <= 500.0),
                )
        return {"overhead_us_per_tick": overhead_us}

    return run


def _fig7_sweep(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.experiments.fig7_blockage import run

    return lambda: run(quick=quick, jobs=jobs)


def _solver_rhs(quick: bool, jobs: int) -> Callable[[], object]:
    import numpy as np

    from repro.server.chassis import constant_utilization
    from repro.server.configs import one_u_commodity
    from repro.thermal.solver import _CompiledNetwork, stable_step_s

    network = one_u_commodity().chassis.build_network(
        constant_utilization(0.8), with_wax=True
    )
    compiled = _CompiledNetwork(network)
    base = network.initial_state()
    dt = stable_step_s(network)
    n_steps = 40 if quick else 200
    # The four substage (time offset, state) pairs of one RK4 step; the
    # perturbed states stand in for the integrator's intermediate stages
    # so both paths see the solver's real call pattern.
    rng = np.random.default_rng(7)
    stages = [
        (0.0, base),
        (0.5, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
        (0.5, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
        (1.0, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
    ]

    n_chunks = 5
    chunk_steps = max(1, n_steps // n_chunks)

    def timed_chunk(evaluate, chunk: int) -> float:
        start = time.perf_counter()
        for step in range(chunk * chunk_steps, (chunk + 1) * chunk_steps):
            t0 = step * dt
            for offset, state in stages:
                evaluate(state, t0 + offset * dt)
        return time.perf_counter() - start

    def run() -> dict[str, float]:
        # Interleave the two paths chunk by chunk and score each on its
        # best chunk, so a scheduler hiccup hitting one path does not
        # masquerade as a kernel speedup (or regression).
        reference_chunks: list[float] = []
        vectorized_chunks: list[float] = []
        for chunk in range(n_chunks):
            reference_chunks.append(
                timed_chunk(network.state_derivative, chunk)
            )
            vectorized_chunks.append(timed_chunk(compiled.rhs, chunk))
        reference_s = min(reference_chunks)
        vectorized_s = min(vectorized_chunks)
        evals = 4 * chunk_steps
        speedup = (
            reference_s / vectorized_s if vectorized_s > 0 else float("inf")
        )
        obs = get_registry()
        if obs.enabled:
            obs.count("solver.bench.reference_evals", evals * n_chunks)
            obs.count("solver.bench.vectorized_evals", evals * n_chunks)
            obs.count("solver.bench.speedup_ge_3x", int(speedup >= 3.0))
        return {
            "reference_us_per_eval": reference_s / evals * 1e6,
            "vectorized_us_per_eval": vectorized_s / evals * 1e6,
            "speedup": speedup,
        }

    return run


def _fig7_batched(quick: bool, jobs: int) -> Callable[[], object]:
    import numpy as np

    from repro.experiments.fig7_blockage import blockage_sweep

    step = 0.15 if quick else 0.05
    fractions = np.arange(0.0, 0.90 + 1e-9, step)
    return lambda: blockage_sweep("1u", fractions)


def _solver_backend_sparse(quick: bool, jobs: int) -> Callable[[], object]:
    import numpy as np

    from repro.thermal.backends import SparseBackend
    from repro.thermal.solver import _CompiledNetwork, stable_step_s
    from repro.thermal.synthetic import RACK_SCALE_SERVERS, rack_scale_network

    servers = 170 if quick else RACK_SCALE_SERVERS
    network = rack_scale_network(servers=servers)
    dense = _CompiledNetwork(network)
    sparse = _CompiledNetwork(network)
    sparse.set_backend(SparseBackend())
    base = network.initial_state()
    dt = stable_step_s(network)
    n_steps = 10 if quick else 25
    rng = np.random.default_rng(11)
    stages = [
        (0.0, base),
        (0.5, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
        (0.5, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
        (1.0, base * (1.0 + 1e-4 * rng.standard_normal(base.shape))),
    ]

    n_chunks = 5
    chunk_steps = max(1, n_steps // n_chunks)

    def timed_chunk(evaluate, chunk: int) -> float:
        start = time.perf_counter()
        for step in range(chunk * chunk_steps, (chunk + 1) * chunk_steps):
            t0 = step * dt
            for offset, state in stages:
                evaluate(state, t0 + offset * dt)
        return time.perf_counter() - start

    def run() -> dict[str, float]:
        # Interleaved chunk timing, best-of-chunk per path — same
        # protocol as solver_rhs, so scheduler noise cannot fake a
        # backend speedup.
        dense_chunks: list[float] = []
        sparse_chunks: list[float] = []
        for chunk in range(n_chunks):
            dense_chunks.append(timed_chunk(dense.rhs, chunk))
            sparse_chunks.append(timed_chunk(sparse.rhs, chunk))
        dense_s = min(dense_chunks)
        sparse_s = min(sparse_chunks)
        evals = 4 * chunk_steps
        speedup = dense_s / sparse_s if sparse_s > 0 else float("inf")
        obs = get_registry()
        if obs.enabled:
            obs.count("solver.bench.backend_nodes", dense.n_state)
            # Floored ratio, so the counter reads "at least Nx"; gated in
            # the baseline only for the full-size network (the quick lane
            # runs a smaller one and records nothing).
            if not quick:
                obs.count("solver.bench.sparse_speedup", int(speedup))
                obs.count(
                    "solver.bench.sparse_speedup_ge_3x", int(speedup >= 3.0)
                )
        return {
            "dense_us_per_eval": dense_s / evals * 1e6,
            "sparse_us_per_eval": sparse_s / evals * 1e6,
            "speedup": speedup,
        }

    return run


def _solver_backend_transient(quick: bool, jobs: int) -> Callable[[], object]:
    from repro.thermal.solver import simulate_transient
    from repro.thermal.synthetic import RACK_SCALE_SERVERS, rack_scale_network

    servers = 170 if quick else RACK_SCALE_SERVERS
    horizon = 900.0 if quick else 1800.0
    network = rack_scale_network(servers=servers)
    # backend="auto" must pick sparse here (the counters prove it: the
    # scenario's solver.backend.sparse counter lands in the baseline).
    return lambda: simulate_transient(
        network, horizon, output_interval_s=450.0, backend="auto"
    )


def _service_latency(quick: bool, jobs: int) -> Callable[[], object]:
    """Round-trip overhead of the service control plane on cache hits.

    Boots a real :class:`~repro.service.server.SimulationService` on a
    loopback socket with a fresh cache, pays for one cold solve, then
    times repeated resubmissions of the same spec — pure control-plane
    work (HTTP parse, quota, cache read, JSON response). The p50 lands
    in ``service.bench.cache_hit_p50_ms`` and the gate counter
    ``service.bench.cache_hit_p50_le_50ms``.
    """
    import asyncio
    import http.client
    import json as _json
    import tempfile

    from repro.service.server import ServiceConfig, SimulationService

    rounds = 10 if quick else 40
    body = _json.dumps(
        {
            "tenant": "bench",
            "spec": {
                "kind": "cluster",
                "platform": "1u",
                "server_count": 8,
                "ticks": 20,
            },
        }
    )

    def round_trip(port: int) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        connection.request(
            "POST",
            "/v1/jobs",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = _json.loads(response.read())
        connection.close()
        if response.status != 200:
            raise RuntimeError(f"bench request failed: {payload}")

    def run() -> dict[str, float]:
        async def session() -> list[float]:
            with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
                config = ServiceConfig(
                    port=0, workers=1, cache=tmp, window_s=0.0,
                    quota_rate_per_s=10_000.0, quota_burst=10_000.0,
                )
                async with SimulationService(config) as service:
                    port = service.port
                    loop = asyncio.get_running_loop()
                    # Cold solve: populates the cache; excluded from timing.
                    await loop.run_in_executor(None, round_trip, port)
                    samples: list[float] = []
                    for _ in range(rounds):
                        start = time.perf_counter()
                        await loop.run_in_executor(None, round_trip, port)
                        samples.append(time.perf_counter() - start)
                    return samples

        samples = asyncio.run(session())
        p50_ms = statistics.median(samples) * 1e3
        obs = get_registry()
        if obs.enabled:
            obs.record("service.bench.cache_hit_p50_ms", p50_ms)
            if not quick:
                obs.count(
                    "service.bench.cache_hit_p50_le_50ms",
                    int(p50_ms <= 50.0),
                )
        return {"cache_hit_p50_ms": p50_ms}

    return run


#: The tier-2 suite, in execution order.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        "chassis_transient_hour",
        "one simulated hour of the detailed chassis network (RK4)",
        _chassis_transient,
    ),
    Scenario(
        "chassis_steady_state",
        "one steady-state solve of the detailed chassis network",
        _chassis_steady_state,
    ),
    Scenario(
        "cluster_ticks_1008",
        "100 vectorized thermal ticks of a 1008-server cluster",
        _cluster_ticks,
    ),
    Scenario(
        "fluid_day_96",
        "two simulated days of a 96-server cluster in fluid mode, "
        "reference then batched engine back to back; the ratio is "
        "recorded (not gated) in dcsim.bench.fluid_speedup_ratio",
        _fluid_day_96,
        repeats=2,
    ),
    Scenario(
        "fluid_day_1008",
        "two simulated days of a 1008-server cluster in fluid mode, "
        "reference then batched engine back to back; the floored ratio "
        "lands in the dcsim.bench.fluid_speedup counter and the gate "
        "counter dcsim.bench.fluid_speedup_ge_3x",
        _fluid_day_1008,
        repeats=2,
    ),
    Scenario(
        "event_day_96",
        "a simulated day of discrete-event traffic on 96 servers",
        _event_day,
        repeats=2,
    ),
    Scenario(
        "event_day_1008",
        "six simulated hours of discrete-event traffic on 1008 servers "
        "(the large-cluster lane of the batched event engine)",
        _event_day_1008,
        repeats=2,
    ),
    Scenario(
        "event_speedup",
        "batched-engine throughput on the event_day_96 workload against "
        "the seed-era loop's 61k events/s; the ratio lands in the "
        "dcsim.bench.event_speedup counter (floored) and "
        "dcsim.bench.event_speedup_ge_5x",
        _event_speedup,
        repeats=2,
    ),
    Scenario(
        "fig7_sweep",
        "the full Fig 7 blockage grid (three 19-point batched steady "
        "solves); honors --jobs, so it measures the parallel speedup of "
        "the sweep runner over the platform batches",
        _fig7_sweep,
        repeats=2,
    ),
    Scenario(
        "control_overhead",
        "the chaos plant with the bare greedy throttle, then with the "
        "decision-identical ControlLoop wrapper; the per-tick loop cost "
        "lands in control.bench.overhead_us_per_tick and the gate "
        "counter control.bench.overhead_le_500us",
        _control_overhead,
        repeats=2,
    ),
    Scenario(
        "solver_rhs",
        "800 RK4-pattern derivative evaluations of the chassis network, "
        "dict reference then vectorized kernel; the speedup lands in the "
        "solver.bench.speedup_ge_3x counter",
        _solver_rhs,
    ),
    Scenario(
        "fig7_batched",
        "one 19-point grille-blockage grid solved as a single batched "
        "steady-state call (the Fig 7 inner kernel)",
        _fig7_batched,
    ),
    Scenario(
        "solver_backend_sparse",
        "RK4-pattern derivative evaluations of the ~2.2k-node synthetic "
        "rack network, dense NumPy backend then SciPy CSR; the speedup "
        "lands in solver.bench.sparse_speedup (floored) and "
        "solver.bench.sparse_speedup_ge_3x",
        _solver_backend_sparse,
    ),
    Scenario(
        "service_latency",
        "cache-hit round trips against a live in-process simulation "
        "service; the p50 lands in service.bench.cache_hit_p50_ms and "
        "the gate counter service.bench.cache_hit_p50_le_50ms",
        _service_latency,
        repeats=2,
    ),
    Scenario(
        "solver_backend_transient",
        "an end-to-end transient of the synthetic rack network under "
        "backend='auto' (the solver.backend.sparse counter proves the "
        "auto threshold fired)",
        _solver_backend_transient,
    ),
)


def scenario_names() -> list[str]:
    """Names of every scenario in suite order."""
    return [scenario.name for scenario in SCENARIOS]


@dataclass
class ScenarioResult:
    """Measurements of one scenario."""

    name: str
    repeats: int
    times_s: list[float]
    counters: dict[str, int]

    @property
    def min_s(self) -> float:
        return min(self.times_s)

    @property
    def median_s(self) -> float:
        return statistics.median(self.times_s)

    def to_dict(self) -> dict[str, object]:
        return {
            "repeats": self.repeats,
            "times_s": self.times_s,
            "min_s": self.min_s,
            "median_s": self.median_s,
            "counters": dict(sorted(self.counters.items())),
        }


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "nogit"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "nogit"


def run_scenarios(
    names: Sequence[str] | None = None,
    repeats: int | None = None,
    quick: bool = False,
    jobs: int = 1,
    echo: Callable[[str], None] | None = None,
    profiler: "cProfile.Profile | None" = None,
) -> dict[str, object]:
    """Run the suite and return the artifact dict (``BENCH_SCHEMA``).

    Collection is forced on for the duration so every scenario reports
    its deterministic work counters; the registry's prior enabled state
    and contents are restored afterwards.

    ``jobs`` reaches scenarios that measure a parallel sweep (e.g.
    ``fig7_sweep``). With ``jobs > 1`` those scenarios do their solver
    work in worker processes, so their counters move from the solver's
    to the runner's — compare artifacts measured at the same ``jobs``.
    The repeat loop itself always runs serially in-process through the
    runner: timing demands the measured work own the interpreter.

    ``profiler`` (a ``cProfile.Profile``) is enabled around every
    measured repeat, accumulating one profile across the selection.
    Tracing inflates wall times, so profiled reports are for hotspot
    hunting — don't gate them against an unprofiled baseline.
    """
    selected = SCENARIOS
    if names is not None:
        known = {scenario.name: scenario for scenario in SCENARIOS}
        missing = [name for name in names if name not in known]
        if missing:
            raise KeyError(
                f"unknown scenarios {missing}; choose from {scenario_names()}"
            )
        selected = tuple(known[name] for name in names)

    say = echo or (lambda _line: None)
    registry = get_registry()
    was_enabled = registry.enabled
    results: dict[str, ScenarioResult] = {}
    try:
        registry.enable()
        for scenario in selected:
            runner = scenario.build(quick, jobs)
            n_repeats = repeats or scenario.repeats

            def run_once(_repeat: int) -> float:
                registry.reset()
                if profiler is not None:
                    profiler.enable()
                try:
                    start = time.perf_counter()
                    runner()
                    return time.perf_counter() - start
                finally:
                    if profiler is not None:
                        profiler.disable()

            times: list[float] = list(
                sweep(
                    run_once,
                    range(n_repeats),
                    jobs=1,
                    label=f"bench.{scenario.name}",
                )
            )
            snapshot = registry.snapshot()
            results[scenario.name] = ScenarioResult(
                name=scenario.name,
                repeats=n_repeats,
                times_s=times,
                counters=dict(snapshot.counters),
            )
            say(
                f"  {scenario.name}: min {min(times) * 1e3:.1f} ms over "
                f"{n_repeats} runs"
            )
    finally:
        registry.reset()
        if not was_enabled:
            registry.disable()

    return {
        "schema": BENCH_SCHEMA,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "jobs": jobs,
        "results": {name: result.to_dict() for name, result in results.items()},
    }


@dataclass
class Comparison:
    """Outcome of gating a current report against a baseline."""

    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    counter_drift: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: list[str] = []
        for label, entries in (
            ("REGRESSION", self.regressions),
            ("improved", self.improvements),
            ("counter drift", self.counter_drift),
            ("note", self.notes),
        ):
            lines.extend(f"[{label}] {entry}" for entry in entries)
        if not lines:
            lines.append("all benchmarks within tolerance of baseline")
        return "\n".join(lines)


def compare_reports(
    current: dict[str, object],
    baseline: dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    strict_counters: bool = False,
) -> Comparison:
    """Gate a current artifact against a baseline artifact.

    A scenario regresses when its best-of-repeats time exceeds the
    baseline's by more than ``tolerance`` (relative), or when it is
    missing from the current report. Counter differences are reported as
    drift, and fail the gate only under ``strict_counters``.
    """
    comparison = Comparison()
    for report, role in ((current, "current"), (baseline, "baseline")):
        if report.get("schema") != BENCH_SCHEMA:
            comparison.regressions.append(
                f"{role} report has schema {report.get('schema')!r}; "
                f"expected {BENCH_SCHEMA!r}"
            )
    if comparison.regressions:
        return comparison
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        comparison.regressions.append(
            "quick-mode mismatch between current and baseline reports"
        )
        return comparison
    # Worker counts change both the times and where the counters land
    # (parent vs pool workers), so cross-jobs comparisons are apples to
    # oranges. Reports without the field (schema 1 artifacts predating
    # the runner) count as jobs=1.
    if int(current.get("jobs", 1)) != int(baseline.get("jobs", 1)):
        comparison.regressions.append(
            f"jobs mismatch between current ({current.get('jobs', 1)}) and "
            f"baseline ({baseline.get('jobs', 1)}) reports"
        )
        return comparison

    current_results = current.get("results", {})
    baseline_results = baseline.get("results", {})
    for name, base in baseline_results.items():
        cur = current_results.get(name)
        if cur is None:
            comparison.regressions.append(
                f"{name}: present in baseline but not measured"
            )
            continue
        base_s = float(base["min_s"])
        cur_s = float(cur["min_s"])
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        detail = (
            f"{name}: {cur_s * 1e3:.1f} ms vs baseline "
            f"{base_s * 1e3:.1f} ms ({ratio:.2f}x)"
        )
        if ratio > 1.0 + tolerance:
            comparison.regressions.append(detail)
        elif ratio < 1.0 / (1.0 + tolerance):
            comparison.improvements.append(detail)

        base_counters = base.get("counters", {})
        cur_counters = cur.get("counters", {})
        for counter in sorted(set(base_counters) | set(cur_counters)):
            before = base_counters.get(counter)
            after = cur_counters.get(counter)
            if before != after:
                comparison.counter_drift.append(
                    f"{name}: {counter} {before} -> {after}"
                )
    for name in sorted(set(current_results) - set(baseline_results)):
        comparison.notes.append(f"{name}: new scenario, not in baseline")

    if strict_counters and comparison.counter_drift:
        comparison.regressions.extend(comparison.counter_drift)
    return comparison


def render_markdown_summary(
    current: dict[str, object],
    baseline: dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """A baseline-drift table in GitHub-flavored markdown.

    Written into ``$GITHUB_STEP_SUMMARY`` by the CI bench step so
    regressions are readable in the job page without downloading the
    ``BENCH_<sha>.json`` artifact. Status thresholds match
    :func:`compare_reports` at the same tolerance.
    """
    lines = [
        "## repro-bench vs baseline",
        "",
        f"Gate tolerance: +{tolerance:.0%} on best-of-repeats wall time "
        f"(commit `{current.get('git_sha', '?')}` vs baseline "
        f"`{baseline.get('git_sha', '?')}`).",
        "",
        "| scenario | baseline (ms) | current (ms) | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    current_results = current.get("results", {})
    baseline_results = baseline.get("results", {})
    for name in sorted(set(current_results) | set(baseline_results)):
        cur = current_results.get(name)
        base = baseline_results.get(name)
        if cur is None:
            lines.append(
                f"| {name} | {float(base['min_s']) * 1e3:.1f} | — | — | "
                f"**MISSING** |"
            )
            continue
        if base is None:
            lines.append(
                f"| {name} | — | {float(cur['min_s']) * 1e3:.1f} | — | new |"
            )
            continue
        base_s = float(base["min_s"])
        cur_s = float(cur["min_s"])
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        if ratio > 1.0 + tolerance:
            status = "**REGRESSION**"
        elif ratio < 1.0 / (1.0 + tolerance):
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"| {name} | {base_s * 1e3:.1f} | {cur_s * 1e3:.1f} | "
            f"{ratio:.2f}x | {status} |"
        )
    drift_lines = []
    for name in sorted(set(current_results) & set(baseline_results)):
        base_counters = baseline_results[name].get("counters", {})
        cur_counters = current_results[name].get("counters", {})
        for counter in sorted(set(base_counters) | set(cur_counters)):
            before = base_counters.get(counter)
            after = cur_counters.get(counter)
            if before != after:
                drift_lines.append(
                    f"- `{name}`: `{counter}` {before} → {after}"
                )
    lines.append("")
    if drift_lines:
        lines.append("### Counter drift")
        lines.append("")
        lines.extend(drift_lines)
    else:
        lines.append("No counter drift.")
    return "\n".join(lines) + "\n"


def render_profile_markdown(
    profiler: cProfile.Profile, top: int = 25
) -> str:
    """The profiler's cumulative-time top-N as a markdown section.

    Appended to the ``--markdown-summary`` file (and echoed to stdout)
    by ``--profile`` runs, so the next hot loop is found by tooling
    instead of archaeology.
    """
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return (
        f"### cProfile — top {top} by cumulative time\n\n"
        "```\n" + buffer.getvalue().rstrip() + "\n```\n"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run the suite, write the artifact, optionally gate."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the tier-2 benchmark suite and gate on a baseline.",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline artifact to gate against (e.g. {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative slowdown tolerated before failing (default %(default)s)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for the BENCH_<sha>.json artifact (default: cwd)",
    )
    parser.add_argument(
        "--update-baseline",
        default=None,
        metavar="PATH",
        help="also write the measured report as a new baseline",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario subset (default: all)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override per-scenario repeat count",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller horizons for a fast smoke run (baseline must match)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for parallel-capable scenarios such as "
        "fig7_sweep (baseline must match; default 1)",
    )
    parser.add_argument(
        "--strict-counters",
        action="store_true",
        help="fail on any work-counter drift, not just slowdowns",
    )
    parser.add_argument(
        "--markdown-summary",
        default=None,
        metavar="PATH",
        help="append a markdown drift table to PATH (e.g. "
        "$GITHUB_STEP_SUMMARY); requires --baseline",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="wrap the measured repeats in cProfile and dump the raw "
        "pstats data to PATH; the cumulative-time top-N is printed and, "
        "with --markdown-summary, appended to the summary. Tracing "
        "inflates wall times, so pair with a scenario subset rather "
        "than the gate",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="rows of the pstats table shown by --profile (default "
        "%(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS:
            print(f"{scenario.name}: {scenario.description}")
        return 0
    if args.tolerance < 0:
        print("tolerance must be non-negative", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    names = args.scenarios.split(",") if args.scenarios else None
    if names is not None:
        unknown = sorted(set(names) - set(scenario_names()))
        if unknown:
            print(
                f"unknown scenarios {unknown}; choose from {scenario_names()}",
                file=sys.stderr,
            )
            return 2
    if args.markdown_summary and args.baseline is None:
        print("--markdown-summary requires --baseline", file=sys.stderr)
        return 2

    # Load the gate baseline BEFORE any writes: with
    # --update-baseline PATH --baseline PATH the old behaviour wrote the
    # fresh report first and then gated the run against itself, which
    # can never fail. Reading up front also fails fast on a missing
    # baseline instead of after minutes of measurement.
    baseline: dict[str, object] | None = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"baseline {baseline_path} does not exist", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())

    if args.profile is not None and args.profile_top < 1:
        print("--profile-top must be >= 1", file=sys.stderr)
        return 2
    profiler = cProfile.Profile() if args.profile is not None else None

    print(f"running {len(names or SCENARIOS)} benchmark scenarios "
          f"({'quick' if args.quick else 'full'} mode)...")
    report = run_scenarios(
        names=names,
        repeats=args.repeats,
        quick=args.quick,
        jobs=args.jobs,
        echo=print,
        profiler=profiler,
    )

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    artifact = output_dir / f"BENCH_{report['git_sha']}.json"
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {artifact}")

    profile_section: str | None = None
    if profiler is not None:
        profile_path = Path(args.profile)
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(profile_path)
        print(f"wrote profile {profile_path}")
        profile_section = render_profile_markdown(
            profiler, top=args.profile_top
        )
        print(profile_section)

    if args.update_baseline:
        update_path = Path(args.update_baseline)
        update_path.parent.mkdir(parents=True, exist_ok=True)
        update_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote baseline {update_path}")

    if baseline is None:
        return 0
    comparison = compare_reports(
        report,
        baseline,
        tolerance=args.tolerance,
        strict_counters=args.strict_counters,
    )
    print(comparison.render())
    if args.markdown_summary:
        summary_path = Path(args.markdown_summary)
        summary_path.parent.mkdir(parents=True, exist_ok=True)
        with summary_path.open("a") as handle:
            handle.write(
                render_markdown_summary(report, baseline, args.tolerance)
            )
            if profile_section is not None:
                handle.write("\n" + profile_section)
        print(f"appended summary to {summary_path}")
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
