"""Performance regression harness (the ``repro-bench`` entry point).

Runs a fixed suite of benchmark scenarios over the library's hot paths,
writes a versioned ``BENCH_<sha>.json`` artifact, and compares it against
a checked-in baseline with a configurable tolerance — the gate CI fails
on. See :mod:`repro.bench.regression`.
"""

from repro.bench.regression import (
    BENCH_SCHEMA,
    Comparison,
    compare_reports,
    main,
    run_scenarios,
    scenario_names,
)

__all__ = [
    "BENCH_SCHEMA",
    "Comparison",
    "compare_reports",
    "main",
    "run_scenarios",
    "scenario_names",
]
