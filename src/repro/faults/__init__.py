"""Deterministic fault injection for the datacenter simulator.

Three layers:

* :mod:`repro.faults.schedule` — declarative, seedable, JSON-round-
  trippable fault schedules (what goes wrong, when, how hard);
* :mod:`repro.faults.injector` — the runtime that applies a schedule to
  a :class:`~repro.dcsim.simulator.DatacenterSimulator` tick by tick and
  restores every touched knob on recovery;
* :mod:`repro.faults.chaos` — the seeded chaos harness that generates
  random schedules, checks the global invariants of
  :mod:`repro.faults.invariants` after every run, and writes exact-
  replay failure bundles.

An injector holding an empty schedule is guaranteed byte-transparent:
the simulation is bit-identical to one run with no injector at all.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_energy_balance,
    check_finite,
    check_monotone_recovery,
    check_state_of_charge,
    identical_results,
)
from repro.faults.schedule import (
    COOLING_LOSS,
    FAN_DERATE,
    FAULT_KINDS,
    PCM_DEGRADATION,
    POWER_CAP,
    SCHEDULE_SCHEMA,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    SERVER_OUTAGE,
    SUPPLY_EXCURSION,
    Fault,
    FaultEffects,
    FaultSchedule,
    pcm_degradation_after,
)

__all__ = [
    "COOLING_LOSS",
    "FAN_DERATE",
    "FAULT_KINDS",
    "PCM_DEGRADATION",
    "POWER_CAP",
    "SCHEDULE_SCHEMA",
    "SENSOR_DROPOUT",
    "SENSOR_NOISE",
    "SERVER_OUTAGE",
    "SUPPLY_EXCURSION",
    "Fault",
    "FaultEffects",
    "FaultInjector",
    "FaultSchedule",
    "Violation",
    "check_energy_balance",
    "check_finite",
    "check_monotone_recovery",
    "check_state_of_charge",
    "identical_results",
    "pcm_degradation_after",
]
