"""The runtime that applies a :class:`FaultSchedule` to a simulation.

A :class:`FaultInjector` is handed to
:class:`~repro.dcsim.simulator.DatacenterSimulator` and driven by it at
every thermal tick:

1. :meth:`advance_to` resolves the schedule at the tick time, applies
   plant-level effects (CRAC capacity derate), and tallies fault
   counters into :mod:`repro.obs`;
2. :meth:`apply_state` pushes thermal effects (supply-temperature
   excursion, fan-derate UA/zone scaling, PCM capacity fade) onto the
   cluster thermal state;
3. :meth:`observe` corrupts the work-rate observations the throttling
   policy sees (sensor dropout holds the last good reading; sensor noise
   adds a seeded Gaussian stream);
4. :meth:`constrain` clamps the policy's decision to any active power
   cap.

Every hook is a no-op returning its input untouched while no fault is
active, and each touched knob (room capacity, inlet temperature, thermal
scales) is restored on the first tick after its fault clears — recovery
is effect removal, not bespoke per-fault code. An injector with an empty
schedule therefore leaves the simulation byte-identical to running with
no injector at all.
"""

from __future__ import annotations

import numpy as np

from repro.dcsim.throttling import ThrottleDecision
from repro.errors import FaultError
from repro.faults.schedule import (
    COOLING_LOSS,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    FaultEffects,
    FaultSchedule,
)
from repro.obs import get_registry


class FaultInjector:
    """Applies a fault schedule to one simulation run.

    The injector is stateful per run (noise streams, held sensor
    readings, restoration flags); the simulator calls :meth:`reset` at
    the start of every run so one injector can be reused across runs and
    still replay identically.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                f"expected a FaultSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        #: Effects at the current tick (``None`` = nothing active).
        self.current: FaultEffects | None = None
        kinds = schedule.kinds()
        self._touches_capacity = COOLING_LOSS in kinds
        self._touches_sensors = SENSOR_DROPOUT in kinds
        self._noise_faults = tuple(
            fault for fault in schedule.faults if fault.kind == SENSOR_NOISE
        )
        self.reset()

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Prepare for a fresh run (fresh noise streams, clean flags)."""
        self.current = None
        self._now = 0.0
        self._previously_active: set[str] = set()
        self._room_base_capacity_w: float | None = None
        self._held_observation: np.ndarray | None = None
        self._inlet_dirty = False
        self._scales_dirty = False
        self._noise_rng = {
            id(fault): np.random.default_rng(fault.seed)
            for fault in self._noise_faults
        }

    # -- per-tick hooks ----------------------------------------------------

    def advance_to(self, time_s: float, room=None) -> None:
        """Resolve the schedule at a tick and apply plant-level effects."""
        self.current = self.schedule.effects_at(time_s)
        if self._touches_capacity and room is not None:
            if self._room_base_capacity_w is None:
                self._room_base_capacity_w = room.cooling_capacity_w
            factor = (
                self.current.cooling_capacity_factor
                if self.current is not None
                else 1.0
            )
            if factor != 1.0:
                room.cooling_capacity_w = self._room_base_capacity_w * factor
            else:
                # Restore the exact pre-fault value, not base * 1.0.
                room.cooling_capacity_w = self._room_base_capacity_w
        self._count(time_s)

    def apply_state(self, state, base_inlet_c: float) -> None:
        """Push thermal effects onto a cluster thermal state.

        ``base_inlet_c`` is the inlet the simulator would have set this
        tick absent faults (the room temperature, or the configured cold
        aisle); the excursion offset is applied on top of it, and the
        inlet is restored to the base on the tick after the excursion
        clears.
        """
        effects = self.current
        delta = effects.inlet_delta_c if effects is not None else 0.0
        if delta != 0.0 or self._inlet_dirty:
            state.inlet_temperature_c = base_inlet_c + delta
            self._inlet_dirty = delta != 0.0
        if effects is not None:
            scales = (
                effects.ua_scale,
                effects.zone_delta_scale,
                effects.wax_capacity_factor,
            )
        else:
            scales = (1.0, 1.0, 1.0)
        if scales != (1.0, 1.0, 1.0) or self._scales_dirty:
            state.set_fault_scales(*scales)
            self._scales_dirty = scales != (1.0, 1.0, 1.0)

    def observe(self, work_rate: np.ndarray) -> np.ndarray:
        """The work-rate observation the policy receives this tick.

        Returns ``work_rate`` itself (same object, no copy) when no
        sensor fault is active. Noise is applied before dropout: a
        dropout that begins during a noise window freezes the last noisy
        reading, as a real stuck telemetry pipeline would.
        """
        effects = self.current
        if effects is None or not (
            effects.sensor_dropout or effects.sensor_noise_sigma > 0.0
        ):
            if self._touches_sensors:
                self._held_observation = np.array(work_rate, copy=True)
            return work_rate
        observed = work_rate
        if effects.sensor_noise_sigma > 0.0:
            observed = np.array(work_rate, dtype=float, copy=True)
            for fault in self._noise_faults:
                # Each active noise fault draws from its own seeded
                # stream, so overlapping events stay independently
                # replayable.
                if fault.active_at(self._now):
                    observed += self._noise_rng[id(fault)].normal(
                        0.0, fault.magnitude, size=observed.shape
                    )
            np.clip(observed, 0.0, None, out=observed)
        if effects.sensor_dropout:
            if self._held_observation is not None:
                return self._held_observation
            # Dropout from the very first tick: the policy has never seen
            # a reading, so it observes a dead (all-zero) telemetry feed.
            return np.zeros_like(np.asarray(work_rate, dtype=float))
        if self._touches_sensors:
            self._held_observation = np.array(observed, copy=True)
        return observed

    def constrain(self, decision: ThrottleDecision) -> ThrottleDecision:
        """Clamp a policy decision to any active power cap."""
        effects = self.current
        if effects is None or effects.utilization_cap >= 1.0:
            return decision
        return ThrottleDecision(
            frequency_ghz=decision.frequency_ghz,
            utilization_cap=min(
                decision.utilization_cap, effects.utilization_cap
            ),
            limited=True,
        )

    def offline_count(self, server_count: int) -> int:
        """Servers offline this tick (the lowest-indexed ones).

        Rounds down and never takes the whole cluster offline — a fault
        study with zero survivors has no thermal story to tell.
        """
        effects = self.current
        if effects is None or effects.offline_fraction <= 0.0:
            return 0
        offline = int(effects.offline_fraction * server_count)
        return min(offline, server_count - 1)

    # -- stretch advance ---------------------------------------------------

    @property
    def is_dormant(self) -> bool:
        """True when every per-tick hook is provably inert right now.

        Requires no active effects, no knob awaiting restoration (inlet
        excursion or thermal scales applied on an earlier tick), and no
        fault cleared on the immediately preceding tick (whose recovery
        counter must still be tallied by a real :meth:`advance_to`). The
        fluid engine's batched stretches require this plus a
        :meth:`next_boundary` beyond the stretch.
        """
        return (
            self.current is None
            and not self._inlet_dirty
            and not self._scales_dirty
            and not self._previously_active
        )

    def next_boundary(self, after_s: float) -> float:
        """Earliest fault start strictly after ``after_s`` (else ``inf``)."""
        return self.schedule.next_boundary(after_s)

    def fast_forward(self, time_s: float, observed=None) -> None:
        """Replay the bookkeeping of a quiet stretch ending at ``time_s``.

        The caller guarantees :attr:`is_dormant` held at the stretch
        start and every skipped tick lies strictly before
        ``next_boundary``; per-tick hooks would then have been pure
        bookkeeping: advancing the clock and re-holding the last sensor
        reading (``observed``, the stretch's final work-rate vector) in
        case a future dropout freezes it. Counters, room capacity, and
        state knobs are untouched, exactly as N quiet ticks would have
        left them.
        """
        self._now = time_s
        if self._touches_sensors and observed is not None:
            self._held_observation = np.array(observed, copy=True)

    # -- accounting --------------------------------------------------------

    def _count(self, time_s: float) -> None:
        obs = get_registry()
        self._now = time_s
        active_kinds = {
            fault.kind
            for fault in self.schedule.faults
            if fault.active_at(time_s)
        }
        if obs.enabled:
            if active_kinds:
                obs.count("faults.ticks_active")
            for kind in active_kinds:
                obs.count(f"faults.active.{kind}")
            for kind in active_kinds - self._previously_active:
                obs.count(f"faults.activated.{kind}")
            for kind in self._previously_active - active_kinds:
                obs.count(f"faults.recovered.{kind}")
        self._previously_active = active_kinds
