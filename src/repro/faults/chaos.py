"""Chaos harness: seeded random fault schedules run against invariants.

The harness closes the loop on the fault subsystem: it generates
randomized-but-seeded :class:`~repro.faults.schedule.FaultSchedule`
instances, runs each against a small oversubscribed cluster, and checks
the global invariants of :mod:`repro.faults.invariants` after every run.
Any violation is written out as a *failure bundle* — a JSON file holding
the seed, the harness configuration, the exact schedule, and a
fingerprint of the traces — from which :func:`replay_bundle` reproduces
the failing run bit for bit.

Scenario shape: a diurnal day peaking mid-afternoon, then a constant
quiet tail. Faults are confined to a window that ends before the quiet
tail begins, so the monotone-recovery invariant has a clean observation
window (constant low demand, no faults) at the end of every run.

Run from the command line::

    PYTHONPATH=src python -m repro.faults.chaos --seeds 50

which exits non-zero if any seed violates an invariant.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.scenarios import cached_characterization
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.room import RoomModel
from repro.dcsim.simulator import (
    DatacenterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.dcsim.throttling import FaultResponsePolicy, RoomTemperaturePolicy
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Violation,
    check_energy_balance,
    check_finite,
    check_monotone_recovery,
    check_state_of_charge,
    identical_results,
)
from repro.faults.schedule import (
    COOLING_LOSS,
    FAN_DERATE,
    PCM_DEGRADATION,
    POWER_CAP,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    SERVER_OUTAGE,
    SUPPLY_EXCURSION,
    Fault,
    FaultSchedule,
)
from repro.obs import get_registry
from repro.server.configs import PLATFORM_BUILDERS
from repro.units import hours
from repro.workload.trace import LoadTrace

#: Schema tag of serialized failure bundles; bump on layout changes.
BUNDLE_SCHEMA = "repro.faults.bundle/1"


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of the scenario every chaos seed runs against.

    Frozen and fully scalar so it is hashable (the nominal-baseline
    plant sizing is memoized per config) and trivially serializable into
    failure bundles.
    """

    platform: str = "1u"
    server_count: int = 24
    duration_s: float = hours(36.0)
    tick_interval_s: float = 60.0
    mode: str = "fluid"
    #: Event-mode engine under test; ignored in fluid mode. Defaults to
    #: the simulator's default so bundles written before the field
    #: existed replay with unchanged behaviour.
    engine: str = "batched"
    #: Plant capacity as a fraction of the nominal (unfaulted) peak
    #: cooling load — slightly oversubscribed so faults actually bite.
    oversubscription: float = 0.95
    max_faults: int = 3
    #: Fault windows are drawn inside [fault_start_s, fault_end_s).
    fault_start_s: float = hours(2.0)
    fault_end_s: float = hours(24.0)
    min_fault_s: float = hours(0.5)
    max_fault_s: float = hours(6.0)
    #: The trace holds a constant trough load from here to the end.
    quiet_from_s: float = hours(26.0)
    #: Settling time granted after clearance before monotone recovery
    #: is enforced.
    relax_s: float = hours(4.0)
    trough: float = 0.2

    def __post_init__(self) -> None:
        if self.platform not in PLATFORM_BUILDERS:
            raise FaultError(
                f"unknown platform {self.platform!r}; choose from "
                f"{sorted(PLATFORM_BUILDERS)}"
            )
        if self.server_count < 2:
            raise FaultError("chaos cluster needs at least 2 servers")
        if self.engine not in ("batched", "reference"):
            raise FaultError(
                f"engine must be 'batched' or 'reference', got {self.engine!r}"
            )
        if not 0.0 < self.oversubscription <= 1.0:
            raise FaultError("oversubscription must be in (0, 1]")
        if self.max_faults < 1:
            raise FaultError("max faults must be at least 1")
        if not 0.0 <= self.fault_start_s < self.fault_end_s:
            raise FaultError("fault window must satisfy 0 <= start < end")
        if not 0.0 < self.min_fault_s <= self.max_fault_s:
            raise FaultError("fault durations must satisfy 0 < min <= max")
        if self.fault_end_s - self.max_fault_s <= self.fault_start_s:
            raise FaultError(
                "fault window too narrow for the longest fault duration"
            )
        if not self.fault_end_s <= self.quiet_from_s:
            raise FaultError("faults must clear before the quiet tail")
        if self.quiet_from_s + self.relax_s >= self.duration_s:
            raise FaultError(
                "no recovery observation window: quiet_from_s + relax_s "
                "must leave room before the end of the run"
            )
        if not 0.0 < self.trough < 1.0:
            raise FaultError("trough must be in (0, 1)")


def chaos_trace(config: ChaosConfig) -> LoadTrace:
    """The harness's workload: one diurnal hump, then a quiet tail.

    The hump peaks mid-afternoon (hour 13); from ``quiet_from_s`` the
    load sits at the constant trough so the end of every run is a clean
    recovery-observation window. Deterministic and seed-independent —
    every chaos seed runs the same demand, only the faults differ.
    """
    interval = config.tick_interval_s
    n = int(np.floor(config.duration_s / interval)) + 1
    times = np.arange(n) * interval
    hour_of_day = (times / 3600.0) % 24.0
    phase = 2.0 * np.pi * (hour_of_day - 13.0) / 24.0
    hump = config.trough + (0.95 - config.trough) * np.exp(
        3.0 * (np.cos(phase) - 1.0)
    )
    values = np.where(times >= config.quiet_from_s, config.trough, hump)
    return LoadTrace(times, values, name="chaos-diurnal")


# -- schedule generation -----------------------------------------------------

_CHAOS_KINDS = (
    FAN_DERATE,
    COOLING_LOSS,
    SUPPLY_EXCURSION,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    POWER_CAP,
    SERVER_OUTAGE,
    PCM_DEGRADATION,
)


def _draw_magnitude(kind: str, rng: np.random.Generator) -> float:
    """A magnitude inside the kind's physically interesting range."""
    if kind == FAN_DERATE:
        return float(rng.uniform(0.4, 0.9))
    if kind == COOLING_LOSS:
        return float(rng.uniform(0.1, 0.6))
    if kind == SUPPLY_EXCURSION:
        # Mostly hot excursions (failure direction), occasionally cold.
        sign = 1.0 if rng.random() < 0.75 else -1.0
        return sign * float(rng.uniform(1.0, 8.0))
    if kind == SENSOR_NOISE:
        return float(rng.uniform(0.05, 0.3))
    if kind == POWER_CAP:
        return float(rng.uniform(0.3, 0.8))
    if kind == SERVER_OUTAGE:
        return float(rng.uniform(0.1, 0.5))
    if kind == PCM_DEGRADATION:
        return float(rng.uniform(0.5, 0.95))
    return 0.0  # SENSOR_DROPOUT carries no magnitude


def random_schedule(seed: int, config: ChaosConfig | None = None) -> FaultSchedule:
    """A randomized fault schedule, fully determined by ``seed``.

    Every stochastic choice (fault count, kinds, windows, magnitudes,
    per-fault noise seeds) comes from one ``default_rng(seed)`` stream
    drawn in a fixed order, so the same seed always yields the same
    schedule — the exact-replay guarantee the failure bundles rely on.
    """
    config = config or ChaosConfig()
    rng = np.random.default_rng(seed)
    count = int(rng.integers(1, config.max_faults + 1))
    faults = []
    for _ in range(count):
        kind = str(rng.choice(_CHAOS_KINDS))
        duration = float(rng.uniform(config.min_fault_s, config.max_fault_s))
        start = float(
            rng.uniform(config.fault_start_s, config.fault_end_s - duration)
        )
        magnitude = _draw_magnitude(kind, rng)
        fault_seed = int(rng.integers(0, 2**31 - 1))
        faults.append(
            Fault(
                kind=kind,
                start_s=start,
                end_s=start + duration,
                magnitude=magnitude,
                seed=fault_seed,
            )
        )
    faults.sort(key=lambda fault: (fault.start_s, fault.kind))
    return FaultSchedule(
        faults=tuple(faults), name=f"chaos-{seed}", seed=seed
    )


# -- running one schedule ----------------------------------------------------

#: Per-config nominal plant capacity (one unfaulted sizing run per
#: config, shared by every seed).
_CAPACITY_CACHE: dict[ChaosConfig, float] = {}


def _sim_config(config: ChaosConfig, wax_enabled: bool = True) -> SimulationConfig:
    return SimulationConfig(
        mode=config.mode,
        tick_interval_s=config.tick_interval_s,
        wax_enabled=wax_enabled,
        engine=config.engine,
    )


def _plant_capacity_w(config: ChaosConfig) -> float:
    """Plant capacity: ``oversubscription`` x the unconstrained peak.

    Sized from the *no-wax* ideal arm, exactly like
    :class:`~repro.core.scenarios.ThroughputStudy`: sizing against the
    wax-clipped peak would leave the plant unable to carry even the
    fully throttled cluster once the wax saturates, and the room would
    run away with no fault scheduled at all.
    """
    if config not in _CAPACITY_CACHE:
        spec = PLATFORM_BUILDERS[config.platform]()
        nominal = DatacenterSimulator(
            cached_characterization(spec),
            spec.power_model,
            spec.wax_loadout.material,
            chaos_trace(config),
            topology=ClusterTopology(
                server_count=config.server_count,
                servers_per_rack=spec.servers_per_rack,
            ),
            config=_sim_config(config, wax_enabled=False),
        ).run()
        _CAPACITY_CACHE[config] = (
            config.oversubscription * nominal.peak_cooling_load_w
        )
    return _CAPACITY_CACHE[config]


def build_simulator(
    config: ChaosConfig,
    injector: FaultInjector | None = None,
    wax_enabled: bool = True,
    policy_factory=None,
    trace: LoadTrace | None = None,
) -> DatacenterSimulator:
    """The harness's constrained simulator, with or without an injector.

    With ``injector=None`` this is the unfaulted reference arm of the
    transparency check; the two arms differ *only* in the injector and
    the (decision-identical while no fault is active) policy wrapper.
    ``wax_enabled=False`` gives the no-PCM baseline arm of the
    ``fig11_faults`` experiment under the same plant and schedule.

    ``policy_factory``, if given, is called as ``policy_factory(room,
    injector)`` and replaces the default throttling stack — the seam the
    control tournament uses to drop a ``repro.control.ControlLoop`` into
    the harness plant. ``trace`` swaps in an alternative workload (the
    plant stays sized against the chaos nominal peak).
    """
    spec = PLATFORM_BUILDERS[config.platform]()
    room = RoomModel.sized_for_cluster(
        _plant_capacity_w(config), config.server_count
    )
    if policy_factory is not None:
        policy = policy_factory(room, injector)
    else:
        policy = RoomTemperaturePolicy(room)
        if injector is not None:
            policy = FaultResponsePolicy(policy, injector)
    return DatacenterSimulator(
        cached_characterization(spec),
        spec.power_model,
        spec.wax_loadout.material,
        trace if trace is not None else chaos_trace(config),
        topology=ClusterTopology(
            server_count=config.server_count,
            servers_per_rack=spec.servers_per_rack,
        ),
        policy=policy,
        room=room,
        config=_sim_config(config, wax_enabled=wax_enabled),
        fault_injector=injector,
    )


def result_fingerprint(result: SimulationResult) -> str:
    """SHA-256 over every trace's bytes — equal iff bit-identical."""
    digest = hashlib.sha256()
    for name in (
        "times_s",
        "demand",
        "utilization",
        "frequency_ghz",
        "power_w",
        "cooling_load_w",
        "wax_heat_w",
        "melt_fraction",
        "throughput",
        "queue_length",
        "shed_work",
        "room_temperature_c",
        "completed_work_s",
    ):
        trace = getattr(result, name)
        if trace is None:
            digest.update(b"none")
        else:
            digest.update(np.ascontiguousarray(trace).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ChaosRun:
    """One seeded schedule run to completion plus its invariant verdicts."""

    config: ChaosConfig
    schedule: FaultSchedule
    result: SimulationResult
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.violations

    @property
    def fingerprint(self) -> str:
        """Trace fingerprint (see :func:`result_fingerprint`)."""
        return result_fingerprint(self.result)

    def describe(self) -> str:
        """One status line for harness output."""
        label = self.schedule.name
        kinds = ",".join(sorted(self.schedule.kinds())) or "none"
        if self.ok:
            return f"{label}: ok ({len(self.schedule)} faults: {kinds})"
        first = self.violations[0]
        return (
            f"{label}: {len(self.violations)} violation(s), first: {first}"
        )


def run_schedule(
    schedule: FaultSchedule, config: ChaosConfig | None = None
) -> ChaosRun:
    """Run one schedule and check every invariant."""
    config = config or ChaosConfig()
    injector = FaultInjector(schedule)
    simulator = build_simulator(config, injector)
    result = simulator.run()
    final_state = simulator.final_state
    violations = list(check_finite(result))
    violations += check_state_of_charge(result, final_state=final_state)
    violations += check_energy_balance(
        result,
        tick_interval_s=config.tick_interval_s,
        initial_enthalpy_j_per_kg=simulator.initial_specific_enthalpy_j_per_kg,
        final_state=final_state,
        wax_mass_kg=final_state.wax_mass_kg,
        # A mid-run wax-capacity change invalidates the simple
        # banked-vs-integrated product (the mass varies over the run).
        check_enthalpy_closure=PCM_DEGRADATION not in schedule.kinds(),
    )
    if config.mode == "fluid":
        # Event mode queues capped work and drains the backlog after
        # clearance, which can legitimately re-heat the room inside the
        # observation window; recovery monotonicity is a fluid-mode
        # invariant.
        violations += check_monotone_recovery(
            result,
            clearance_s=max(schedule.last_clearance_s, config.quiet_from_s),
            relax_s=config.relax_s,
        )
    obs = get_registry()
    if obs.enabled:
        obs.count("faults.chaos.runs")
        if violations:
            obs.count("faults.chaos.failed_runs")
            obs.count("faults.chaos.violations", len(violations))
    return ChaosRun(
        config=config,
        schedule=schedule,
        result=result,
        violations=tuple(violations),
    )


def check_transparency(config: ChaosConfig | None = None) -> bool:
    """Whether an empty schedule leaves the simulation byte-identical.

    Runs the harness scenario twice — no injector at all vs. an injector
    holding an empty schedule — and compares every trace bitwise. This
    is the nominal-transparency acceptance gate of the fault subsystem.
    """
    config = config or ChaosConfig()
    plain = build_simulator(config, injector=None).run()
    empty = build_simulator(
        config, injector=FaultInjector(FaultSchedule.empty())
    ).run()
    return identical_results(plain, empty)


def check_engine_agreement(
    config: ChaosConfig | None = None,
    seed: int = 0,
    policy_factory=None,
) -> bool:
    """Whether both event engines produce bit-identical faulted runs.

    Runs the harness scenario under a seeded fault schedule twice — once
    on the batched engine, once on the per-event reference — and compares
    every trace bitwise. This is the event-engine equivalence acceptance
    gate under fault injection (offline servers, power caps, and queue
    backlogs all stress the engines' shared dispatch semantics).
    ``policy_factory`` swaps in an alternative policy stack on both arms
    (see :func:`build_simulator`) — the control subsystem uses it to
    prove each planner decides identically on either engine.
    """
    config = config or ChaosConfig(mode="event")
    if config.mode != "event":
        config = replace(config, mode="event")
    schedule = random_schedule(seed, config)
    results = [
        build_simulator(
            replace(config, engine=engine),
            FaultInjector(schedule),
            policy_factory=policy_factory,
        ).run()
        for engine in ("batched", "reference")
    ]
    return identical_results(*results)


# -- failure bundles ---------------------------------------------------------


def write_bundle(run: ChaosRun, directory: Path | str) -> Path:
    """Persist a failing run's reproduction bundle; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BUNDLE_SCHEMA,
        "seed": run.schedule.seed,
        "config": asdict(run.config),
        "schedule": run.schedule.to_dict(),
        "violations": [
            {"invariant": v.invariant, "message": v.message}
            for v in run.violations
        ],
        "fingerprint": run.fingerprint,
    }
    path = directory / f"{run.schedule.name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def replay_bundle(path: Path | str) -> ChaosRun:
    """Re-run the exact schedule a failure bundle recorded.

    The returned run's :attr:`ChaosRun.fingerprint` must equal the
    bundle's stored fingerprint — anything else means the simulator's
    behaviour changed since the bundle was written.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FaultError(f"cannot read failure bundle {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BUNDLE_SCHEMA:
        raise FaultError(
            f"not a {BUNDLE_SCHEMA} bundle: {path}"
        )
    config = ChaosConfig(**data["config"])
    schedule = FaultSchedule.from_dict(data["schedule"])
    return run_schedule(schedule, config)


def run_seeds(
    seeds,
    config: ChaosConfig | None = None,
    bundle_dir: Path | str | None = None,
) -> list[ChaosRun]:
    """Run one chaos schedule per seed; bundle any failures."""
    config = config or ChaosConfig()
    runs = []
    for seed in seeds:
        run = run_schedule(random_schedule(seed, config), config)
        if not run.ok and bundle_dir is not None:
            write_bundle(run, bundle_dir)
        runs.append(run)
    return runs


# -- command line ------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.faults.chaos``: seeded chaos sweep."""
    parser = argparse.ArgumentParser(
        description="Run seeded chaos fault schedules and check invariants."
    )
    parser.add_argument(
        "--seeds", type=int, default=10, help="number of seeds to run"
    )
    parser.add_argument(
        "--seed-start", type=int, default=0, help="first seed of the range"
    )
    parser.add_argument(
        "--bundle-dir",
        type=Path,
        default=None,
        help="directory for failure-reproduction bundles",
    )
    parser.add_argument(
        "--mode",
        choices=("fluid", "event"),
        default="fluid",
        help="simulator fidelity mode",
    )
    parser.add_argument(
        "--skip-transparency",
        action="store_true",
        help="skip the empty-schedule bit-identity check",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        # An empty seed range would run zero checks yet exit 0, which a
        # CI lane would read as a pass.
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    config = ChaosConfig(mode=args.mode)

    failures = 0
    extra_checks = 0
    if not args.skip_transparency:
        extra_checks += 1
        if check_transparency(config):
            print("transparency: ok (empty schedule is byte-identical)")
        else:
            print("transparency: FAILED (empty schedule altered the run)")
            failures += 1
    if args.mode == "event":
        extra_checks += 1
        if check_engine_agreement(config, seed=args.seed_start):
            print("engine agreement: ok (batched == reference, faulted)")
        else:
            print("engine agreement: FAILED (batched != reference)")
            failures += 1

    seeds = range(args.seed_start, args.seed_start + args.seeds)
    for run in run_seeds(seeds, config, bundle_dir=args.bundle_dir):
        print(run.describe())
        if not run.ok:
            failures += 1
    total = args.seeds + extra_checks
    print(f"{total - failures}/{total} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
