"""Declarative, serializable fault schedules for the datacenter simulator.

A :class:`FaultSchedule` is a set of time-windowed :class:`Fault` events —
fan derates, CRAC/chiller capacity loss, supply-temperature excursions,
sensor dropout and noise, power caps, server outages, and PCM cycling
degradation — that the :class:`~repro.faults.injector.FaultInjector`
resolves into per-tick :class:`FaultEffects` and applies to a running
:class:`~repro.dcsim.simulator.DatacenterSimulator`.

Design constraints, in priority order:

1. **Determinism.** Everything a fault does is a pure function of the
   schedule and the tick sequence; stochastic faults (sensor noise) carry
   their own seed. A schedule replayed from JSON reproduces the original
   trajectory bit for bit.
2. **Recovery semantics.** A fault's effect exists exactly on
   ``start_s <= t < end_s``; the injector restores every touched knob at
   clearance, so recovery behaviour falls out of effect removal rather
   than bespoke code per fault.
3. **Nominal transparency.** An empty schedule resolves to "no effects"
   at every tick, and every injection point is gated on that, so a
   simulator with an empty schedule is byte-identical to one with no
   injector at all.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass

from repro.errors import FaultError
from repro.materials.degradation import DegradationModel
from repro.materials.library import Stability
from repro.thermal.convection import flow_scaled_conductance

#: Schema tag stamped into serialized schedules; bump on layout changes.
SCHEDULE_SCHEMA = "repro.faults.schedule/1"

# -- fault kinds -------------------------------------------------------------

#: Fan failure or derate: ``magnitude`` is the surviving operating-flow
#: fraction (1.0 = healthy). Affinity laws make flow proportional to fan
#: speed, so a speed derate maps 1:1; failed fans map through
#: :func:`repro.thermal.airflow.degraded_flow_fraction`.
FAN_DERATE = "fan_derate"

#: CRAC/chiller capacity loss: ``magnitude`` is the fraction of plant
#: cooling capacity *lost* while the fault is active.
COOLING_LOSS = "cooling_loss"

#: Supply/cold-aisle temperature excursion: ``magnitude`` is the inlet
#: temperature offset in degrees C (positive = failure toward hot).
SUPPLY_EXCURSION = "supply_excursion"

#: Sensor dropout: the thermal-management policy stops receiving fresh
#: load observations (the injector holds the last good reading).
SENSOR_DROPOUT = "sensor_dropout"

#: Sensor noise: seeded Gaussian noise of standard deviation ``magnitude``
#: corrupts the per-server work-rate observations the policy sees.
SENSOR_NOISE = "sensor_noise"

#: Power-cap event: ``magnitude`` is the maximum per-server busy fraction
#: the facility allows while the cap is active (excess work is shed).
POWER_CAP = "power_cap"

#: Server outage: ``magnitude`` is the fraction of the cluster offline
#: (the lowest-indexed servers drain and take no new work).
SERVER_OUTAGE = "server_outage"

#: PCM cycling degradation: ``magnitude`` is the remaining latent-capacity
#: fraction (see :func:`pcm_degradation_after` for the
#: :mod:`repro.materials.degradation` hook).
PCM_DEGRADATION = "pcm_degradation"

FAULT_KINDS = (
    FAN_DERATE,
    COOLING_LOSS,
    SUPPLY_EXCURSION,
    SENSOR_DROPOUT,
    SENSOR_NOISE,
    POWER_CAP,
    SERVER_OUTAGE,
    PCM_DEGRADATION,
)

#: Valid ``magnitude`` interval per kind (closed bounds; ``None`` = unused).
_MAGNITUDE_RANGE: dict[str, tuple[float, float] | None] = {
    FAN_DERATE: (0.02, 1.0),
    COOLING_LOSS: (0.0, 1.0),
    SUPPLY_EXCURSION: (-30.0, 30.0),
    SENSOR_DROPOUT: None,
    SENSOR_NOISE: (0.0, 2.0),
    POWER_CAP: (0.0, 1.0),
    SERVER_OUTAGE: (0.0, 1.0),
    PCM_DEGRADATION: (0.0, 1.0),
}


@dataclass(frozen=True)
class FaultEffects:
    """The resolved modifiers of every fault active at one instant.

    Default values are the identity: applying default effects changes
    nothing. Overlapping faults compose — offsets add, factors multiply,
    caps take the minimum, noise variances add, flags OR.
    """

    inlet_delta_c: float = 0.0
    cooling_capacity_factor: float = 1.0
    ua_scale: float = 1.0
    zone_delta_scale: float = 1.0
    wax_capacity_factor: float = 1.0
    utilization_cap: float = 1.0
    offline_fraction: float = 0.0
    sensor_dropout: bool = False
    sensor_noise_sigma: float = 0.0

    @property
    def is_identity(self) -> bool:
        """Whether these effects change nothing."""
        return self == _IDENTITY_EFFECTS


_IDENTITY_EFFECTS = FaultEffects()


@dataclass(frozen=True)
class Fault:
    """One time-windowed fault event.

    ``magnitude`` is kind-specific (see the kind constants); ``seed``
    feeds the noise stream of :data:`SENSOR_NOISE` faults and is ignored
    by every other kind.
    """

    kind: str
    start_s: float
    end_s: float
    magnitude: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not (
            math.isfinite(self.start_s)
            and math.isfinite(self.end_s)
            and 0.0 <= self.start_s < self.end_s
        ):
            raise FaultError(
                f"fault window must satisfy 0 <= start < end, got "
                f"[{self.start_s}, {self.end_s})"
            )
        bounds = _MAGNITUDE_RANGE[self.kind]
        if bounds is not None:
            low, high = bounds
            if not (
                math.isfinite(self.magnitude)
                and low <= self.magnitude <= high
            ):
                raise FaultError(
                    f"{self.kind} magnitude must lie in [{low}, {high}], "
                    f"got {self.magnitude}"
                )
        # Open-interval exclusions where the closed bound is degenerate:
        # a fan derate to 1.0 flow, a 0% capacity loss, a 0-sigma noise
        # event, a 0% outage, or a 1.0-capacity "degradation" are all
        # no-op faults that almost certainly indicate a schedule bug.
        if self.kind == COOLING_LOSS and self.magnitude <= 0.0:
            raise FaultError("cooling_loss must lose a positive fraction")
        if self.kind == COOLING_LOSS and self.magnitude >= 1.0:
            raise FaultError("cooling_loss cannot remove the entire plant")
        if self.kind == SUPPLY_EXCURSION and self.magnitude == 0.0:
            raise FaultError("supply_excursion needs a non-zero offset")
        if self.kind == SENSOR_NOISE and self.magnitude <= 0.0:
            raise FaultError("sensor_noise needs a positive sigma")
        if self.kind == POWER_CAP and not 0.0 < self.magnitude < 1.0:
            raise FaultError("power_cap fraction must lie in (0, 1)")
        if self.kind == SERVER_OUTAGE and not 0.0 < self.magnitude < 1.0:
            raise FaultError("server_outage fraction must lie in (0, 1)")
        if self.kind == PCM_DEGRADATION and not 0.0 < self.magnitude <= 1.0:
            raise FaultError(
                "pcm_degradation remaining capacity must lie in (0, 1]"
            )

    def active_at(self, time_s: float) -> bool:
        """Whether the fault is active at a simulation time."""
        return self.start_s <= time_s < self.end_s

    def effects(self) -> FaultEffects:
        """This fault's modifiers while active."""
        if self.kind == FAN_DERATE:
            # Lower flow weakens the air-to-wax film (turbulent
            # convection scales as flow^0.8, with the stagnant floor the
            # detailed model uses) and, by the zone energy balance
            # dT = P / (m_dot * cp), raises the zone temperature rise in
            # inverse proportion to the flow.
            flow_fraction = self.magnitude
            return FaultEffects(
                ua_scale=flow_scaled_conductance(1.0, flow_fraction, 1.0),
                zone_delta_scale=1.0 / flow_fraction,
            )
        if self.kind == COOLING_LOSS:
            return FaultEffects(cooling_capacity_factor=1.0 - self.magnitude)
        if self.kind == SUPPLY_EXCURSION:
            return FaultEffects(inlet_delta_c=self.magnitude)
        if self.kind == SENSOR_DROPOUT:
            return FaultEffects(sensor_dropout=True)
        if self.kind == SENSOR_NOISE:
            return FaultEffects(sensor_noise_sigma=self.magnitude)
        if self.kind == POWER_CAP:
            return FaultEffects(utilization_cap=self.magnitude)
        if self.kind == SERVER_OUTAGE:
            return FaultEffects(offline_fraction=self.magnitude)
        # PCM_DEGRADATION
        return FaultEffects(wax_capacity_factor=self.magnitude)

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form of the fault."""
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "magnitude": self.magnitude,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Fault":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        try:
            return cls(
                kind=str(data["kind"]),
                start_s=float(data["start_s"]),
                end_s=float(data["end_s"]),
                magnitude=float(data.get("magnitude", 0.0)),
                seed=int(data.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault entry: {data!r}") from exc


def _combine(effects: list[FaultEffects]) -> FaultEffects:
    """Compose the effects of simultaneously active faults."""
    inlet = 0.0
    capacity = 1.0
    ua = 1.0
    zone = 1.0
    wax = 1.0
    cap = 1.0
    offline = 0.0
    dropout = False
    noise_var = 0.0
    for e in effects:
        inlet += e.inlet_delta_c
        capacity *= e.cooling_capacity_factor
        ua *= e.ua_scale
        zone *= e.zone_delta_scale
        wax *= e.wax_capacity_factor
        cap = min(cap, e.utilization_cap)
        offline = max(offline, e.offline_fraction)
        dropout = dropout or e.sensor_dropout
        noise_var += e.sensor_noise_sigma**2
    # Every factor is strictly positive, but a *product* of denormal-small
    # factors can underflow to exactly 0.0, breaking the model's
    # strict-positivity invariants; floor at the smallest normal float.
    ua = max(ua, sys.float_info.min)
    wax = max(wax, sys.float_info.min)
    return FaultEffects(
        inlet_delta_c=inlet,
        cooling_capacity_factor=capacity,
        ua_scale=ua,
        zone_delta_scale=zone,
        wax_capacity_factor=wax,
        utilization_cap=cap,
        offline_fraction=offline,
        sensor_dropout=dropout,
        sensor_noise_sigma=math.sqrt(noise_var),
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of fault events plus provenance metadata.

    ``seed`` records the chaos-harness seed that generated the schedule
    (``None`` for hand-written schedules); it is provenance only — the
    faults themselves fully determine behaviour.
    """

    faults: tuple[Fault, ...] = ()
    name: str = "faults"
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise FaultError(f"not a Fault: {fault!r}")

    @classmethod
    def empty(cls, name: str = "no-faults") -> "FaultSchedule":
        """A schedule with no faults (the nominal-transparency baseline)."""
        return cls(faults=(), name=name)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def last_clearance_s(self) -> float:
        """Time at which the final fault clears (0 for an empty schedule)."""
        return max((fault.end_s for fault in self.faults), default=0.0)

    def kinds(self) -> set[str]:
        """The fault kinds present in the schedule."""
        return {fault.kind for fault in self.faults}

    def active_at(self, time_s: float) -> tuple[Fault, ...]:
        """The faults active at a simulation time."""
        return tuple(f for f in self.faults if f.active_at(time_s))

    def next_boundary(self, after_s: float) -> float:
        """Earliest fault start strictly after ``after_s`` (else ``inf``).

        Faults activate at the first instant with ``start_s <= t``, so
        every time strictly before the returned boundary — given nothing
        is active or pending restoration at ``after_s`` — resolves to no
        effects. The fluid engine's stretch detector uses this to bound
        how far it may advance without consulting :meth:`effects_at`.
        """
        starts = [f.start_s for f in self.faults if f.start_s > after_s]
        return min(starts) if starts else math.inf

    def effects_at(self, time_s: float) -> FaultEffects | None:
        """Combined effects at a time, or ``None`` when nothing is active.

        Returning ``None`` (rather than identity effects) lets injection
        points skip all fault arithmetic, which is what keeps no-fault
        ticks bit-identical to an un-instrumented simulator.
        """
        active = [f.effects() for f in self.faults if f.active_at(time_s)]
        if not active:
            return None
        return _combine(active)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form of the schedule."""
        return {
            "schema": SCHEDULE_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Serialize to JSON (stable key order, replayable exactly)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        schema = data.get("schema")
        if schema != SCHEDULE_SCHEMA:
            raise FaultError(
                f"unsupported schedule schema {schema!r} "
                f"(expected {SCHEDULE_SCHEMA!r})"
            )
        raw_faults = data.get("faults")
        if not isinstance(raw_faults, list):
            raise FaultError("schedule 'faults' must be a list")
        seed = data.get("seed")
        return cls(
            faults=tuple(Fault.from_dict(entry) for entry in raw_faults),
            name=str(data.get("name", "faults")),
            seed=None if seed is None else int(seed),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule previously produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"schedule JSON is invalid: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultError("schedule JSON must be an object")
        return cls.from_dict(data)


# -- materials/degradation hook ---------------------------------------------


def pcm_degradation_after(
    stability: Stability,
    service_years: float,
    start_s: float,
    end_s: float,
    cycles_per_day: float = 1.0,
) -> Fault:
    """A :data:`PCM_DEGRADATION` fault from a cycling-stability class.

    Computes the remaining latent-capacity fraction after
    ``service_years`` of diurnal cycling through
    :class:`repro.materials.degradation.DegradationModel` — the paper's
    Table 1 stability column turned into a wax-capacity derate the
    simulator can feel.
    """
    if service_years < 0:
        raise FaultError(
            f"service years must be non-negative, got {service_years}"
        )
    model = DegradationModel.for_stability(stability)
    cycles = int(service_years * 365.0 * cycles_per_day)
    remaining = model.remaining_capacity_fraction(cycles)
    return Fault(
        kind=PCM_DEGRADATION,
        start_s=start_s,
        end_s=end_s,
        magnitude=remaining,
    )
