"""Global invariants every faulted simulation run must satisfy.

The chaos harness (:mod:`repro.faults.chaos`) checks these after every
run. They are chosen to be *global*: true for any schedule the
generator can produce, not just for nominal operation —

* every recorded trace is finite (no NaN/inf temperatures or powers);
* the PCM state of charge (melt fraction) stays in [0, 1] and the wax
  temperature stays physically plausible;
* energy is conserved: per tick, release = power - wax absorption, and
  over the run the wax enthalpy delta equals the integrated wax heat
  flow;
* after the last fault clears (plus a relaxation window), the room
  temperature recovers monotonically — it sets no new peak.

Each check returns a list of :class:`Violation` (empty = invariant
holds) rather than raising, so the harness can report every broken
invariant of a failing seed at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.simulator import SimulationResult
from repro.units import hours


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to triage."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


def check_finite(result: SimulationResult) -> list[Violation]:
    """Every recorded trace must be finite everywhere."""
    violations: list[Violation] = []
    traces: dict[str, np.ndarray | None] = {
        "demand": result.demand,
        "utilization": result.utilization,
        "frequency_ghz": result.frequency_ghz,
        "power_w": result.power_w,
        "cooling_load_w": result.cooling_load_w,
        "wax_heat_w": result.wax_heat_w,
        "melt_fraction": result.melt_fraction,
        "throughput": result.throughput,
        "queue_length": result.queue_length,
        "shed_work": result.shed_work,
        "room_temperature_c": result.room_temperature_c,
    }
    for name, trace in traces.items():
        if trace is None:
            continue
        bad = ~np.isfinite(trace)
        if np.any(bad):
            index = int(np.argmax(bad))
            violations.append(
                Violation(
                    "finite",
                    f"{name}[{index}] = {trace[index]!r} at "
                    f"t={result.times_s[index]:.0f}s",
                )
            )
    return violations


def check_state_of_charge(
    result: SimulationResult,
    final_state=None,
    temperature_bounds_c: tuple[float, float] = (-40.0, 150.0),
) -> list[Violation]:
    """PCM state of charge in [0, 1]; wax and zone temperatures sane."""
    violations: list[Violation] = []
    melt = result.melt_fraction
    if np.any(melt < -1e-12) or np.any(melt > 1.0 + 1e-12):
        violations.append(
            Violation(
                "state_of_charge",
                f"melt fraction left [0, 1]: range "
                f"[{np.min(melt):.6g}, {np.max(melt):.6g}]",
            )
        )
    if final_state is not None:
        enthalpy = np.asarray(final_state.specific_enthalpy_j_per_kg)
        if not np.all(np.isfinite(enthalpy)):
            violations.append(
                Violation("state_of_charge", "final wax enthalpy is not finite")
            )
        else:
            low, high = temperature_bounds_c
            for label, temps in (
                ("wax", np.asarray(final_state.wax_temperature_c)),
                ("zone", np.asarray(final_state.zone_temperature_c)),
            ):
                if np.any(temps < low) or np.any(temps > high):
                    violations.append(
                        Violation(
                            "state_of_charge",
                            f"final {label} temperature outside "
                            f"[{low}, {high}] C: range "
                            f"[{np.min(temps):.3f}, {np.max(temps):.3f}]",
                        )
                    )
    return violations


def check_energy_balance(
    result: SimulationResult,
    tick_interval_s: float,
    initial_enthalpy_j_per_kg: np.ndarray | None = None,
    final_state=None,
    wax_mass_kg: float | None = None,
    check_enthalpy_closure: bool = True,
) -> list[Violation]:
    """Energy conservation, per tick and over the whole run.

    Per tick the simulator computes ``release = power - wax`` directly,
    so the recorded cluster sums must close to floating-point noise. Over
    the run, the integrated wax heat flow must equal the enthalpy the wax
    actually banked. The closure check is skipped when a PCM-degradation
    fault varies the effective wax mass mid-run (pass
    ``check_enthalpy_closure=False``), since the simple product no longer
    describes the integral.
    """
    violations: list[Violation] = []
    residual = result.power_w - result.cooling_load_w - result.wax_heat_w
    scale = max(1.0, float(np.max(np.abs(result.power_w), initial=0.0)))
    worst = float(np.max(np.abs(residual), initial=0.0))
    if worst > 1e-9 * scale:
        index = int(np.argmax(np.abs(residual)))
        violations.append(
            Violation(
                "energy_balance",
                f"power - release - wax = {residual[index]:.6g} W at "
                f"t={result.times_s[index]:.0f}s (tolerance "
                f"{1e-9 * scale:.3g} W)",
            )
        )

    if (
        check_enthalpy_closure
        and initial_enthalpy_j_per_kg is not None
        and final_state is not None
        and wax_mass_kg is not None
    ):
        delta_h = (
            np.asarray(final_state.specific_enthalpy_j_per_kg, dtype=float)
            - np.asarray(initial_enthalpy_j_per_kg, dtype=float)
        )
        banked_j = float(np.sum(delta_h)) * wax_mass_kg
        integrated_j = float(np.sum(result.wax_heat_w)) * tick_interval_s
        budget = max(
            1.0, float(np.sum(np.abs(result.wax_heat_w))) * tick_interval_s
        )
        if abs(banked_j - integrated_j) > 1e-6 * budget:
            violations.append(
                Violation(
                    "energy_balance",
                    f"wax enthalpy closure failed: banked {banked_j:.6g} J "
                    f"vs integrated {integrated_j:.6g} J",
                )
            )
    return violations


def check_monotone_recovery(
    result: SimulationResult,
    clearance_s: float,
    relax_s: float = hours(4.0),
    tolerance_c: float = 0.05,
) -> list[Violation]:
    """After faults clear and the system relaxes, no new thermal peak.

    From ``clearance_s + relax_s`` onward the room temperature must never
    exceed its value at the start of that window by more than
    ``tolerance_c`` — the wax may still be refreezing (releasing heat),
    but a recovering system cannot climb to a fresh peak. Vacuously true
    when the run has no room model or the window is empty.
    """
    room = result.room_temperature_c
    if room is None:
        return []
    window = result.times_s >= clearance_s + relax_s
    if not np.any(window):
        return []
    temps = room[window]
    start = float(temps[0])
    peak = float(np.max(temps))
    if peak > start + tolerance_c:
        index = int(np.argmax(temps))
        when = result.times_s[window][index]
        return [
            Violation(
                "monotone_recovery",
                f"room reached {peak:.3f} C at t={when:.0f}s, above the "
                f"recovery-window start {start:.3f} C + {tolerance_c} C",
            )
        ]
    return []


def identical_results(a: SimulationResult, b: SimulationResult) -> bool:
    """Whether two runs produced byte-identical traces."""

    def bytes_of(array: np.ndarray | None) -> bytes | None:
        return None if array is None else np.ascontiguousarray(array).tobytes()

    fields = (
        "times_s",
        "demand",
        "utilization",
        "frequency_ghz",
        "power_w",
        "cooling_load_w",
        "wax_heat_w",
        "melt_fraction",
        "throughput",
        "queue_length",
        "shed_work",
        "room_temperature_c",
        "completed_work_s",
    )
    return all(
        bytes_of(getattr(a, name)) == bytes_of(getattr(b, name))
        for name in fields
    )
