"""Datacenter cooling system models.

The cooling load of a datacenter is "the power that must be removed to
maintain a constant temperature" (paper Section 5.1). These modules turn
simulator output into cooling-load series, model the cooling plant (sized
to a peak capacity, with subscription levels), and compute the
provisioning consequences of PCM: a smaller plant for the same servers, or
more servers under the same plant.
"""

from repro.cooling.load import CoolingLoadSeries, PeakComparison, compare_peaks
from repro.cooling.system import CoolingSystem, Subscription
from repro.cooling.provisioning import (
    ProvisioningGain,
    added_servers_under_same_plant,
    smaller_plant_for_same_servers,
)
from repro.cooling.chilled_water import (
    ChilledWaterTank,
    TankShaveResult,
    shave_with_tank,
    tank_matching_pcm_capacity,
)

__all__ = [
    "ChilledWaterTank",
    "TankShaveResult",
    "shave_with_tank",
    "tank_matching_pcm_capacity",
    "CoolingLoadSeries",
    "PeakComparison",
    "compare_peaks",
    "CoolingSystem",
    "Subscription",
    "ProvisioningGain",
    "added_servers_under_same_plant",
    "smaller_plant_for_same_servers",
]
