"""The cooling plant: capacity, subscription, and linear cost scaling.

The paper "assume[s] a linear relationship between the cost of cooling
infrastructure and the peak cooling load the cooling system can handle"
(Section 4.3); Table 2 prices CoolingInfraCapEx at $7.0 per kW of critical
power per month and CoolingEnergyOpEx at $18.4/kW-month. A
:class:`CoolingSystem` carries a removable-heat capacity and answers
whether a load series fits; :class:`Subscription` classifies the
relationship between plant capacity and the load placed on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cooling.load import CoolingLoadSeries
from repro.errors import ConfigurationError


class Subscription(enum.Enum):
    """How a cooling plant relates to the load it serves."""

    #: Capacity meets or exceeds the peak load indefinitely (Section 5.1).
    FULLY_SUBSCRIBED = "fully_subscribed"
    #: Capacity below the all-servers-active heat output (Section 5.2).
    OVERSUBSCRIBED = "oversubscribed"


@dataclass(frozen=True)
class CoolingSystem:
    """A cooling plant sized to remove a peak heat load.

    Parameters
    ----------
    capacity_w:
        Heat the plant can remove continuously.
    coefficient_of_performance:
        Heat removed per unit of electrical energy spent removing it
        (typical chilled-water plants run 3-5).
    """

    capacity_w: float
    coefficient_of_performance: float = 4.0

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ConfigurationError(
                f"cooling capacity must be positive, got {self.capacity_w}"
            )
        if self.coefficient_of_performance <= 0:
            raise ConfigurationError("COP must be positive")

    @classmethod
    def sized_for(
        cls, series: CoolingLoadSeries, margin: float = 0.0, **kwargs: float
    ) -> "CoolingSystem":
        """A plant sized to a load series' peak plus a fractional margin."""
        if margin < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin}")
        return cls(capacity_w=series.peak_w * (1.0 + margin), **kwargs)

    def subscription_for(self, series: CoolingLoadSeries) -> Subscription:
        """Classify this plant against a load series."""
        if series.peak_w <= self.capacity_w:
            return Subscription.FULLY_SUBSCRIBED
        return Subscription.OVERSUBSCRIBED

    def can_remove(self, series: CoolingLoadSeries) -> bool:
        """Whether the plant covers the series at every instant."""
        return bool(np.all(series.load_w <= self.capacity_w + 1e-9))

    def violation_hours(self, series: CoolingLoadSeries) -> float:
        """Hours for which the series exceeds capacity."""
        dt = np.diff(series.times_s, prepend=series.times_s[0])
        return float(np.sum(dt[series.load_w > self.capacity_w])) / 3600.0

    def electrical_power_w(self, heat_load_w: float | np.ndarray) -> np.ndarray:
        """Electricity drawn to remove a heat load (COP model)."""
        load = np.asarray(heat_load_w, dtype=float)
        if np.any(load < 0):
            raise ConfigurationError("heat load must be non-negative")
        return load / self.coefficient_of_performance

    def resized(self, capacity_w: float) -> "CoolingSystem":
        """Same plant efficiency at a different capacity."""
        return CoolingSystem(
            capacity_w=capacity_w,
            coefficient_of_performance=self.coefficient_of_performance,
        )
