"""Chilled-water-tank thermal energy storage: the active baseline.

Section 6 of the paper compares PCM against "chilled water tanks for
thermal energy storage ... an active cooling solution considered by
several authors" (Zheng et al.'s TE-Shave among them), and argues PCM's
advantages: completely passive, no floor space, no pumping power, no
standing losses ("chilled water tanks ... must be deployed outdoors and
cooled regularly, whether used or not, to compensate for environmental
losses").

This module implements that baseline so the comparison is quantitative: a
tank of chilled water charged (cooled below the supply setpoint) when the
plant has spare capacity and discharged against the peak, with:

* sensible-heat storage (no phase change): capacity = m * cp * dT_swing;
* charge limited by the plant's spare capacity;
* discharge limited by a heat-exchanger UA;
* a standing loss proportional to the stored charge (environmental gain
  into the cold tank);
* pumping power while charging or discharging;
* capital cost per kWh of storage and floor space per tank volume.

The shared peak-shaving scheduler in :func:`shave_with_tank` consumes the
same cluster cooling-load trace the PCM study produces, so the two
technologies are compared on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Specific heat of water, J/(kg K).
WATER_SPECIFIC_HEAT = 4186.0

#: Density of water, kg/m^3.
WATER_DENSITY = 998.0


@dataclass(frozen=True)
class ChilledWaterTank:
    """A stratified chilled-water storage tank.

    Parameters
    ----------
    volume_m3:
        Water volume.
    temperature_swing_k:
        Usable stratified swing between charged and discharged (typical
        district systems run 6-10 K).
    discharge_ua_w_per_k:
        Heat-exchanger conductance limiting the discharge rate.
    standing_loss_fraction_per_day:
        Fraction of the stored charge lost to the environment per day
        (the "cooled regularly, whether used or not" penalty).
    pump_power_w:
        Electrical draw of the charge/discharge loop while active.
    capital_usd_per_kwh_thermal:
        Installed cost per thermal kWh of capacity.
    floor_area_m2:
        Outdoor pad area the tank occupies.
    """

    volume_m3: float
    temperature_swing_k: float = 8.0
    discharge_ua_w_per_k: float | None = None
    standing_loss_fraction_per_day: float = 0.10
    pump_power_w: float = 0.0
    capital_usd_per_kwh_thermal: float = 120.0
    floor_area_m2: float = 0.0

    def __post_init__(self) -> None:
        if self.volume_m3 <= 0:
            raise ConfigurationError("tank volume must be positive")
        if self.temperature_swing_k <= 0:
            raise ConfigurationError("temperature swing must be positive")
        if not 0.0 <= self.standing_loss_fraction_per_day < 1.0:
            raise ConfigurationError(
                "standing loss must be a fraction in [0, 1)"
            )
        if self.pump_power_w < 0:
            raise ConfigurationError("pump power must be non-negative")
        if self.capital_usd_per_kwh_thermal < 0:
            raise ConfigurationError("capital cost must be non-negative")

    @property
    def mass_kg(self) -> float:
        """Water mass."""
        return self.volume_m3 * WATER_DENSITY

    @property
    def capacity_j(self) -> float:
        """Thermal storage capacity (sensible heat over the swing)."""
        return self.mass_kg * WATER_SPECIFIC_HEAT * self.temperature_swing_k

    @property
    def capacity_kwh(self) -> float:
        """Capacity in thermal kWh."""
        return self.capacity_j / 3.6e6

    @property
    def capital_cost_usd(self) -> float:
        """Installed cost of the tank."""
        return self.capacity_kwh * self.capital_usd_per_kwh_thermal

    def max_discharge_w(self, charge_fraction: float) -> float:
        """Cooling power the tank can deliver at a state of charge.

        UA-limited if a heat exchanger is specified (driving temperature
        scales with the remaining stratified swing), otherwise unlimited.
        """
        if not 0.0 <= charge_fraction <= 1.0:
            raise ConfigurationError(
                f"charge fraction must be in [0, 1], got {charge_fraction}"
            )
        if self.discharge_ua_w_per_k is None:
            return np.inf if charge_fraction > 0 else 0.0
        return (
            self.discharge_ua_w_per_k
            * self.temperature_swing_k
            * charge_fraction
        )


@dataclass
class TankShaveResult:
    """Outcome of peak-shaving a cooling-load trace with a tank."""

    times_s: np.ndarray
    shaved_load_w: np.ndarray
    charge_fraction: np.ndarray
    pump_energy_j: float
    standing_loss_j: float
    baseline_peak_w: float

    @property
    def peak_w(self) -> float:
        """Peak plant load after shaving."""
        return float(np.max(self.shaved_load_w))

    @property
    def peak_reduction_fraction(self) -> float:
        """Fractional reduction of the plant's peak load."""
        return 1.0 - self.peak_w / self.baseline_peak_w


def shave_with_tank(
    times_s: np.ndarray,
    cooling_load_w: np.ndarray,
    tank: ChilledWaterTank,
    plant_capacity_w: float,
) -> TankShaveResult:
    """Greedy peak shaving: discharge above the target, recharge below it.

    The target plant load is the given capacity: whenever the cluster's
    cooling load exceeds it, the tank discharges (if it has charge and
    discharge headroom); whenever the load is below it, the plant's spare
    capacity recharges the tank. Standing losses drain the charge
    continuously and must be re-charged — chilled water pays this tax
    every day whether the peak materializes or not.
    """
    times = np.asarray(times_s, dtype=float)
    load = np.asarray(cooling_load_w, dtype=float)
    if times.shape != load.shape or times.ndim != 1 or len(times) < 2:
        raise ConfigurationError("times and load must be congruent 1-D arrays")
    if plant_capacity_w <= 0:
        raise ConfigurationError("plant capacity must be positive")

    dt = np.diff(times, prepend=times[0])
    charge_j = tank.capacity_j  # start fully charged
    shaved = np.empty_like(load)
    charge_trace = np.empty_like(load)
    pump_energy = 0.0
    standing_loss = 0.0
    loss_rate = tank.standing_loss_fraction_per_day / 86400.0

    for i in range(len(times)):
        step = dt[i] if dt[i] > 0 else 0.0
        # Standing loss: the environment heats the cold tank continuously.
        loss = charge_j * loss_rate * step
        charge_j -= loss
        standing_loss += loss

        pumping = False
        if load[i] > plant_capacity_w and charge_j > 0:
            deficit = load[i] - plant_capacity_w
            rate = min(deficit, tank.max_discharge_w(charge_j / tank.capacity_j))
            rate = min(rate, charge_j / step if step > 0 else rate)
            shaved[i] = load[i] - rate
            charge_j -= rate * step
            pumping = rate > 0
        elif load[i] < plant_capacity_w and charge_j < tank.capacity_j:
            spare = plant_capacity_w - load[i]
            rate = min(spare, (tank.capacity_j - charge_j) / step if step > 0 else spare)
            shaved[i] = load[i] + rate
            charge_j += rate * step
            pumping = rate > 0
        else:
            shaved[i] = load[i]

        if pumping:
            pump_energy += tank.pump_power_w * step
        charge_j = float(np.clip(charge_j, 0.0, tank.capacity_j))
        charge_trace[i] = charge_j / tank.capacity_j

    return TankShaveResult(
        times_s=times,
        shaved_load_w=shaved,
        charge_fraction=charge_trace,
        pump_energy_j=pump_energy,
        standing_loss_j=standing_loss,
        baseline_peak_w=float(np.max(load)),
    )


def tank_matching_pcm_capacity(
    pcm_latent_capacity_j: float,
    server_count: int,
    **tank_overrides: float,
) -> ChilledWaterTank:
    """A tank sized to the same thermal capacity as a PCM deployment.

    The apples-to-apples comparison of Section 6: the same joules of peak
    shaving bought as chilled water instead of wax.
    """
    if pcm_latent_capacity_j <= 0 or server_count <= 0:
        raise ConfigurationError("capacity and server count must be positive")
    total_j = pcm_latent_capacity_j * server_count
    swing = tank_overrides.pop("temperature_swing_k", 8.0)
    volume = total_j / (WATER_DENSITY * WATER_SPECIFIC_HEAT * swing)
    return ChilledWaterTank(
        volume_m3=volume, temperature_swing_k=swing, **tank_overrides
    )
