"""Provisioning consequences of a reduced peak cooling load (Section 5.1).

With PCM clipping the peak cooling load by a fraction ``r``, the operator
can either:

* install a plant smaller by ``r`` for the same server fleet ("PCM allows
  us to install an 8.3-12% smaller cooling system"), or
* keep the plant and deploy more servers: the fleet grows by the
  reciprocal factor ``1 / (1 - r) - 1`` (the paper's +8.9% / +9.8% /
  +14.6% server counts), because each PCM-equipped server presents a
  peak cooling load smaller by ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cooling.load import PeakComparison
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProvisioningGain:
    """One provisioning option unlocked by PCM."""

    #: Fractional peak cooling-load reduction the wax delivered.
    peak_reduction_fraction: float
    #: Plant capacity saved for the same fleet (W).
    plant_capacity_saved_w: float
    #: Additional servers deployable under the unchanged plant.
    additional_servers: int
    #: Fleet growth fraction corresponding to ``additional_servers``.
    fleet_growth_fraction: float


def smaller_plant_for_same_servers(
    comparison: PeakComparison,
) -> float:
    """Plant capacity (W) saved by sizing to the PCM peak instead.

    The plant must still cover the repayment tail, but the repayment
    happens strictly below the clipped peak (the wax refreezes only when
    load has fallen), so sizing to the PCM peak is safe — the paper makes
    the same observation ("there is sufficient cooling capacity to
    completely resolidify before the end of a 24 hour cycle").
    """
    saved = comparison.baseline_peak_w - comparison.pcm_peak_w
    if saved < 0:
        raise ConfigurationError(
            "PCM peak exceeds baseline peak; wax configuration is harmful"
        )
    return saved


def added_servers_under_same_plant(
    comparison: PeakComparison, current_server_count: int
) -> ProvisioningGain:
    """Servers addable without exceeding the existing plant's capacity.

    The plant was sized for the no-PCM peak. Each PCM server contributes a
    per-server peak smaller by the reduction fraction, so the fleet can
    grow until (new count) x (per-server PCM peak) equals the old plant
    capacity.
    """
    if current_server_count <= 0:
        raise ConfigurationError(
            f"server count must be positive, got {current_server_count}"
        )
    reduction = comparison.peak_reduction_fraction
    if reduction >= 1.0:
        raise ConfigurationError("peak reduction fraction must be below 1")
    if reduction < 0:
        raise ConfigurationError(
            "PCM peak exceeds baseline peak; wax configuration is harmful"
        )
    growth = 1.0 / (1.0 - reduction) - 1.0
    additional = int(growth * current_server_count)
    return ProvisioningGain(
        peak_reduction_fraction=reduction,
        plant_capacity_saved_w=smaller_plant_for_same_servers(comparison),
        additional_servers=additional,
        fleet_growth_fraction=growth,
    )
