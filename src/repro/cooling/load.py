"""Cooling load series and with/without-PCM comparisons (Figure 11).

The cluster cooling load is the heat the servers hand to the room air:
electrical power minus the rate at which the wax is banking heat (or plus
the rate at which refreezing wax is paying it back). PCM clips the peak
and repays the stored energy during the off-peak hours — the paper
observes a repayment tail "lasting between six and nine hours" that
completes "before the end of a 24 hour cycle".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.simulator import SimulationResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoolingLoadSeries:
    """A cooling load time series for one cluster."""

    times_s: np.ndarray
    load_w: np.ndarray
    label: str = "cooling load"

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        load = np.asarray(self.load_w, dtype=float)
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "load_w", load)
        if times.shape != load.shape or times.ndim != 1:
            raise ConfigurationError("times and load must be 1-D and congruent")
        if len(times) < 2:
            raise ConfigurationError("need at least two samples")

    @classmethod
    def from_simulation(
        cls, result: SimulationResult, label: str = "cooling load"
    ) -> "CoolingLoadSeries":
        """Extract the cooling-load series from a simulator run."""
        return cls(times_s=result.times_s, load_w=result.cooling_load_w, label=label)

    @property
    def peak_w(self) -> float:
        """Peak load over the series."""
        return float(np.max(self.load_w))

    @property
    def peak_time_s(self) -> float:
        """Time of the peak load."""
        return float(self.times_s[int(np.argmax(self.load_w))])

    def average_w(self) -> float:
        """Time-averaged load."""
        duration = self.times_s[-1] - self.times_s[0]
        return float(np.trapezoid(self.load_w, self.times_s) / duration)

    def energy_j(self) -> float:
        """Total heat removed over the series."""
        return float(np.trapezoid(self.load_w, self.times_s))


@dataclass(frozen=True)
class PeakComparison:
    """Outcome of comparing a PCM cooling load against its baseline."""

    baseline_peak_w: float
    pcm_peak_w: float
    #: Duration for which the PCM load exceeds the baseline (the wax
    #: repayment tail while it refreezes).
    repayment_hours: float
    #: Largest excess of the PCM load over baseline during repayment.
    repayment_peak_w: float
    #: Heat-balance check: net energy banked over the horizon (J); near
    #: zero when the wax completes its daily cycle.
    residual_energy_j: float

    @property
    def peak_reduction_fraction(self) -> float:
        """Fractional peak cooling-load reduction (the paper's 8.3-12%)."""
        return 1.0 - self.pcm_peak_w / self.baseline_peak_w


def compare_peaks(
    baseline: CoolingLoadSeries,
    with_pcm: CoolingLoadSeries,
    repayment_threshold_fraction: float = 0.01,
) -> PeakComparison:
    """Compare cooling loads with and without PCM on a shared time base.

    The repayment tail counts only ticks where the PCM load meaningfully
    exceeds the baseline (more than ``repayment_threshold_fraction`` of
    the baseline peak) — trailing watt-level refreeze drips are not what
    the paper's six-to-nine-hour observation measures.
    """
    if len(baseline.times_s) != len(with_pcm.times_s) or not np.allclose(
        baseline.times_s, with_pcm.times_s
    ):
        raise ConfigurationError("series must share a time base")
    if repayment_threshold_fraction < 0:
        raise ConfigurationError("repayment threshold must be non-negative")
    excess = with_pcm.load_w - baseline.load_w
    dt = np.diff(baseline.times_s, prepend=baseline.times_s[0])
    repaying = excess > repayment_threshold_fraction * baseline.peak_w
    repayment_seconds = float(np.sum(dt[repaying]))
    repayment_peak = float(np.max(excess)) if np.any(repaying) else 0.0
    residual = float(np.trapezoid(-excess, baseline.times_s))
    return PeakComparison(
        baseline_peak_w=baseline.peak_w,
        pcm_peak_w=with_pcm.peak_w,
        repayment_hours=repayment_seconds / 3600.0,
        repayment_peak_w=repayment_peak,
        residual_energy_j=residual,
    )
