"""Physical constants and unit conversions used throughout the library.

All internal computation is in SI units:

* temperature      — degrees Celsius for interfaces, Kelvin-equivalent deltas
* energy           — joules
* power            — watts
* mass             — kilograms
* volume           — cubic meters
* volumetric flow  — cubic meters per second
* pressure         — pascals
* time             — seconds

Helpers exist for the unit systems the paper quotes results in (liters of
wax, J/g heats of fusion, CFM airflow, hours, kWh, $/ton).
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Physical constants
# --------------------------------------------------------------------------

#: Density of air at ~35 degC server-internal conditions (kg/m^3).
AIR_DENSITY = 1.145

#: Specific heat of air at constant pressure (J/(kg K)).
AIR_SPECIFIC_HEAT = 1006.0

#: Volumetric heat capacity of air (J/(m^3 K)).
AIR_VOLUMETRIC_HEAT_CAPACITY = AIR_DENSITY * AIR_SPECIFIC_HEAT

#: Density of aluminum (kg/m^3) — wax containers are aluminum boxes.
ALUMINUM_DENSITY = 2700.0

#: Specific heat of aluminum (J/(kg K)).
ALUMINUM_SPECIFIC_HEAT = 897.0

#: Thermal conductivity of aluminum (W/(m K)).
ALUMINUM_CONDUCTIVITY = 205.0

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


# --------------------------------------------------------------------------
# Energy and power
# --------------------------------------------------------------------------

JOULES_PER_KWH = 3.6e6


def kwh(value: float) -> float:
    """Convert kilowatt-hours to joules."""
    return value * JOULES_PER_KWH


def to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def joules_per_gram(value: float) -> float:
    """Convert a heat of fusion quoted in J/g (paper's unit) to J/kg."""
    return value * 1000.0


# --------------------------------------------------------------------------
# Mass and volume
# --------------------------------------------------------------------------

KG_PER_METRIC_TON = 1000.0


def liters(value: float) -> float:
    """Convert liters to cubic meters."""
    return value * 1e-3


def to_liters(cubic_meters: float) -> float:
    """Convert cubic meters to liters."""
    return cubic_meters * 1e3


def milliliters(value: float) -> float:
    """Convert milliliters to cubic meters."""
    return value * 1e-6


def grams(value: float) -> float:
    """Convert grams to kilograms."""
    return value * 1e-3


def grams_per_ml(value: float) -> float:
    """Convert a density quoted in g/ml (paper's unit) to kg/m^3."""
    return value * 1000.0


# --------------------------------------------------------------------------
# Airflow
# --------------------------------------------------------------------------

CUBIC_METERS_PER_SECOND_PER_CFM = 4.719474e-4


def cfm(value: float) -> float:
    """Convert cubic feet per minute to m^3/s."""
    return value * CUBIC_METERS_PER_SECOND_PER_CFM


def to_cfm(cubic_meters_per_second: float) -> float:
    """Convert m^3/s to cubic feet per minute."""
    return cubic_meters_per_second / CUBIC_METERS_PER_SECOND_PER_CFM


#: Meters per second per linear foot per minute (paper quotes LFM at the
#: Open Compute blade rear).
METERS_PER_SECOND_PER_LFM = 0.00508


def lfm(value: float) -> float:
    """Convert linear feet per minute (air velocity) to m/s."""
    return value * METERS_PER_SECOND_PER_LFM


# --------------------------------------------------------------------------
# Geometry of rack units
# --------------------------------------------------------------------------

#: Height of one rack unit in meters.
RACK_UNIT_HEIGHT = 0.04445

#: Standard 19-inch rack interior width in meters.
RACK_INTERIOR_WIDTH = 0.4445


def rack_units(value: float) -> float:
    """Convert a height in rack units (U) to meters."""
    return value * RACK_UNIT_HEIGHT


# --------------------------------------------------------------------------
# Temperature helpers
# --------------------------------------------------------------------------

def celsius_to_kelvin(value: float) -> float:
    """Convert degrees Celsius to Kelvin."""
    return value + 273.15


def kelvin_to_celsius(value: float) -> float:
    """Convert Kelvin to degrees Celsius."""
    return value - 273.15
