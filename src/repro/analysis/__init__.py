"""Analysis utilities: trace comparison statistics and table rendering."""

from repro.analysis.metrics import (
    TraceComparison,
    compare_traces,
    phase_activity_hours,
)
from repro.analysis.tables import format_table

__all__ = [
    "TraceComparison",
    "compare_traces",
    "phase_activity_hours",
    "format_table",
]
