"""Statistics for comparing temperature and load traces.

Used by the Figure 4 validation harness ("We observe a mean difference of
0.22 degC between the real measurements and Icepak simulation measurements
on the loaded server") and by tests asserting model agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceComparison:
    """Agreement statistics between two congruent traces."""

    mean_difference: float
    mean_abs_difference: float
    rmse: float
    max_abs_difference: float
    correlation: float

    def within(self, mean_abs_tolerance: float) -> bool:
        """Whether the mean absolute difference is inside a tolerance."""
        return self.mean_abs_difference <= mean_abs_tolerance


def compare_traces(reference: np.ndarray, candidate: np.ndarray) -> TraceComparison:
    """Compare a candidate trace against a reference of equal length."""
    ref = np.asarray(reference, dtype=float)
    cand = np.asarray(candidate, dtype=float)
    if ref.shape != cand.shape or ref.ndim != 1:
        raise ConfigurationError(
            f"traces must be congruent 1-D arrays, got {ref.shape} vs {cand.shape}"
        )
    if len(ref) < 2:
        raise ConfigurationError("need at least two samples to compare")
    difference = cand - ref
    ref_std = float(np.std(ref))
    cand_std = float(np.std(cand))
    if ref_std > 0 and cand_std > 0:
        correlation = float(np.corrcoef(ref, cand)[0, 1])
    else:
        # A constant trace correlates perfectly with a constant candidate
        # and is undefined otherwise; report 1.0 / 0.0 respectively.
        correlation = 1.0 if ref_std == cand_std else 0.0
    return TraceComparison(
        mean_difference=float(np.mean(difference)),
        mean_abs_difference=float(np.mean(np.abs(difference))),
        rmse=float(np.sqrt(np.mean(difference**2))),
        max_abs_difference=float(np.max(np.abs(difference))),
        correlation=correlation,
    )


def phase_activity_hours(
    times_s: np.ndarray,
    wax_heat_w: np.ndarray,
    threshold_w: float = 0.5,
) -> tuple[float, float]:
    """(absorbing, releasing) durations in hours of a wax heat-flow trace.

    The paper observes the validation wax "reduces temperatures for two
    hours while the wax melts ... and afterwards increases temperatures for
    two hours while the wax freezes".
    """
    times = np.asarray(times_s, dtype=float)
    heat = np.asarray(wax_heat_w, dtype=float)
    if times.shape != heat.shape:
        raise ConfigurationError("times and heat trace must be congruent")
    if threshold_w < 0:
        raise ConfigurationError("threshold must be non-negative")
    dt = np.diff(times, prepend=times[0])
    absorbing = float(np.sum(dt[heat > threshold_w])) / 3600.0
    releasing = float(np.sum(dt[heat < -threshold_w])) / 3600.0
    return absorbing, releasing
