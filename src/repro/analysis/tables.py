"""Plain-text table rendering for experiment output.

Experiments print the same rows the paper's tables and figure captions
report; this module renders them monospace-aligned so the benchmark logs
read like the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Cells are stringified with ``str``; numeric formatting is the caller's
    responsibility.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    string_rows = [[str(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)
