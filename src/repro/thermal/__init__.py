"""Server-level thermal simulation substrate.

This package stands in for the ANSYS Icepak CFD model the paper uses
(Section 3): a lumped thermal-RC network for the solid components, a
quasi-steady airflow network (fan curve against system impedance, with a
blockage model for grilles and wax boxes), and PCM nodes integrated by the
enthalpy method.

The model captures exactly what the paper's cluster-scale study consumes
from Icepak: transient temperatures near the wax, outlet/CPU temperature as
a function of airflow blockage, and lumped wax melting characteristics.
"""

from repro.thermal.airflow import (
    AirPath,
    AirSegment,
    FanBank,
    FanCurve,
    SystemImpedance,
    blockage_impedance_coefficient,
    operating_flow,
)
from repro.thermal.backends import (
    BACKEND_NAMES,
    SPARSE_AUTO_MAX_DENSITY,
    SPARSE_AUTO_MIN_STATE,
    SolverBackend,
    available_backends,
    resolve_backend,
)
from repro.thermal.convection import ConvectiveCoupling, flow_scaled_conductance
from repro.thermal.network import (
    BoundaryNode,
    CapacitiveNode,
    Conductance,
    PCMNode,
    ThermalNetwork,
)
from repro.thermal.solver import TransientResult, simulate_transient
from repro.thermal.steady_state import solve_steady_state
from repro.thermal.synthetic import rack_scale_network

__all__ = [
    "BACKEND_NAMES",
    "SPARSE_AUTO_MAX_DENSITY",
    "SPARSE_AUTO_MIN_STATE",
    "SolverBackend",
    "available_backends",
    "resolve_backend",
    "rack_scale_network",
    "AirPath",
    "AirSegment",
    "FanBank",
    "FanCurve",
    "SystemImpedance",
    "blockage_impedance_coefficient",
    "operating_flow",
    "ConvectiveCoupling",
    "flow_scaled_conductance",
    "BoundaryNode",
    "CapacitiveNode",
    "Conductance",
    "PCMNode",
    "ThermalNetwork",
    "TransientResult",
    "simulate_transient",
    "solve_steady_state",
]
