"""Transient integration of a chassis thermal network.

The solver advances the packed state ``[T_cap..., H_pcm...]`` with a
fixed-step classical Runge-Kutta (RK4) scheme. The step size is derived
from the smallest node time constant (a Gershgorin-style stability bound),
so callers choose only an *output* resolution; accuracy at the hour-scale
transients the paper studies is limited by the model, not the integrator.

The network's dictionary-based physics
(:meth:`~repro.thermal.network.ThermalNetwork.heat_flows_w`) is the
readable reference implementation; for the long (25 h) simulations and
parameter sweeps this module compiles the network into a vectorized
kernel once — conductance edges become a dense Laplacian matvec, boundary
couplings a second (usually constant-folded) matvec, air-path couplings a
single gather/scatter over all couplings with per-segment ``reduceat``
sums, and the PCM enthalpy→temperature map a piecewise evaluation over
all PCM nodes at once. Tests assert the paths agree.

:func:`simulate_transient_batch` goes one step further and packs N
structurally-identical networks into one ``(N, n_state)`` state array
advanced by a single RK4 loop, with per-member divergence isolation.
See ``docs/SOLVER.md`` for the three evaluation paths and measured
speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.obs import ObsRegistry, get_registry
from repro.thermal.backends import (
    NumbaBackend,
    NumpyBackend,
    SolverBackend,
    count_backend_selection,
    resolve_backend,
)
from repro.thermal.network import ThermalNetwork, constant_value_of
from repro.units import AIR_VOLUMETRIC_HEAT_CAPACITY

#: Default fraction of the minimum time constant used as the RK4 step.
DEFAULT_STEP_SAFETY = 0.5


@dataclass
class TransientResult:
    """Sampled trajectory of a transient simulation.

    Attributes
    ----------
    times_s:
        Sample times, seconds.
    temperatures_c:
        Node name -> temperature trace (capacitive, PCM, and boundary nodes).
    air_temperatures_c:
        Air segment name -> well-mixed temperature trace.
    flow_m3_s:
        Operating airflow trace.
    melt_fractions:
        PCM node name -> melt fraction trace.
    pcm_enthalpies_j:
        PCM node name -> total enthalpy trace.
    power_w:
        Total dissipated electrical power trace.
    """

    times_s: np.ndarray
    temperatures_c: dict[str, np.ndarray]
    air_temperatures_c: dict[str, np.ndarray]
    flow_m3_s: np.ndarray
    melt_fractions: dict[str, np.ndarray]
    pcm_enthalpies_j: dict[str, np.ndarray]
    power_w: np.ndarray

    def temperature(self, name: str) -> np.ndarray:
        """Temperature trace of a node or air segment."""
        if name in self.temperatures_c:
            return self.temperatures_c[name]
        if name in self.air_temperatures_c:
            return self.air_temperatures_c[name]
        raise KeyError(name)

    @property
    def times_hours(self) -> np.ndarray:
        """Sample times in hours."""
        return self.times_s / 3600.0

    def final_temperatures(self) -> dict[str, float]:
        """Temperatures of every node at the last sample."""
        return {name: float(trace[-1]) for name, trace in self.temperatures_c.items()}

    def heat_stored_in_pcm_j(self) -> np.ndarray:
        """Total PCM enthalpy (relative to the solidus datum) over time."""
        if not self.pcm_enthalpies_j:
            return np.zeros_like(self.times_s)
        return np.sum(
            [trace for trace in self.pcm_enthalpies_j.values()], axis=0
        )

    def heat_release_to_air_w(self) -> np.ndarray:
        """Instantaneous heat the chassis hands to the airstream.

        Energy balance: electrical power minus the rate of change of energy
        stored in PCM (sensible storage in component masses is neglected at
        this reporting level; it is small and zero-mean over a cycle). This
        is the quantity the datacenter cooling system must remove.
        """
        stored = self.heat_stored_in_pcm_j()
        storage_rate = np.gradient(stored, self.times_s)
        return self.power_w - storage_rate


@dataclass
class BatchTransientResult:
    """Trajectories of a batched transient simulation.

    ``results[i]`` is the :class:`TransientResult` of the i-th input
    network, or ``None`` if that member diverged; ``failures`` maps the
    index of each diverged member to its error message. A diverging member
    is frozen at its last finite state and excluded from further updates,
    so one unstable network cannot poison the rest of the batch.
    """

    results: list[TransientResult | None]
    failures: dict[int, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> TransientResult | None:
        return self.results[index]

    def require_all(self) -> list[TransientResult]:
        """All member results, raising if any member diverged."""
        if self.failures:
            detail = "; ".join(
                f"[{index}] {message}" for index, message in sorted(self.failures.items())
            )
            raise SolverError(f"{len(self.failures)} batch member(s) diverged: {detail}")
        return list(self.results)


def _sample_times(duration_s: float, output_interval_s: float) -> np.ndarray:
    """Output sample times: interval multiples plus the horizon itself.

    Always includes ``duration_s`` as the final sample, so short runs
    (``duration_s < output_interval_s``) integrate instead of silently
    returning the initial condition, and non-multiple durations keep their
    final partial interval instead of truncating the trace one interval
    early. Exact-multiple durations produce the same grid as before.
    """
    n_whole = int(np.floor(duration_s / output_interval_s + 1e-9))
    times = np.arange(n_whole + 1) * output_interval_s
    if duration_s - times[-1] > 1e-9 * output_interval_s:
        times = np.append(times, duration_s)
    return times


class _CompiledNetwork:
    """Vectorized flat-array evaluator of a network's right-hand side.

    Compilation hoists everything that does not change during a run:

    * conductance edges become a dense state-state Laplacian ``L`` and a
      state-boundary matrix ``B``;
    * boundary temperatures and node powers that are constants (tagged by
      ``_as_time_function``) are folded into a per-time ``base_flows``
      vector; only genuine schedules stay as per-call function slots, and
      a chassis-provided ``power_vector_fn`` replaces per-node power
      calls entirely;
    * air-path couplings across *all* segments become one concatenated
      index/parameter array — per-segment sums come from
      ``np.add.reduceat`` and only the short upstream-to-downstream
      mixing chain stays a (scalar) loop. Flow-dependent conductances
      are cached on the flow value, which fan schedules keep piecewise
      constant;
    * time-dependent inputs are cached per evaluation time — RK4
      evaluates ``t + dt/2`` twice per step.
    """

    def __init__(
        self, network: ThermalNetwork, backend: SolverBackend | None = None
    ) -> None:
        self.network = network
        self.backend = backend if backend is not None else NumpyBackend()
        self.cap_names = network.capacitive_names
        self.pcm_names = network.pcm_names
        self.n_cap = len(self.cap_names)
        self.n_pcm = len(self.pcm_names)
        self.n_state = self.n_cap + self.n_pcm

        index: dict[str, int] = {}
        for i, name in enumerate(self.cap_names):
            index[name] = i
        for i, name in enumerate(self.pcm_names):
            index[name] = self.n_cap + i
        self.state_index = index

        self.capacities = np.array(
            [
                network.capacitive_node(name).heat_capacity_j_per_k
                for name in self.cap_names
            ]
        )

        # -- node powers: constant part + schedule slots (or the chassis's
        #    all-node fast path when available) --------------------------------
        self.power_vector_fn = getattr(network, "power_vector_fn", None)
        power_functions = [
            network.capacitive_node(name).power_w for name in self.cap_names
        ]
        self.power_const = np.zeros(self.n_cap)
        self.power_slots: list[tuple[int, object]] = []
        for i, func in enumerate(power_functions):
            constant = constant_value_of(func)
            if constant is not None:
                self.power_const[i] = constant
            else:
                self.power_slots.append((i, func))

        # -- PCM enthalpy map parameters --------------------------------------
        self.pcm_samples = [network.pcm_node(name).sample for name in self.pcm_names]
        self.pcm_masses = np.array([s.mass_kg for s in self.pcm_samples])
        materials = [s.material for s in self.pcm_samples]
        self.pcm_solidus = np.array([m.solidus_c for m in materials])
        self.pcm_liquidus = np.array([m.liquidus_c for m in materials])
        self.pcm_fusion = np.array([m.heat_of_fusion_j_per_kg for m in materials])
        self.pcm_c_solid = np.array(
            [m.specific_heat_solid_j_per_kg_k for m in materials]
        )
        self.pcm_c_liquid = np.array(
            [m.specific_heat_liquid_j_per_kg_k for m in materials]
        )
        self.pcm_melt_range = np.array([m.melting_range_c for m in materials])

        # -- boundary temperatures: constant part + schedule slots -------------
        self.boundary_names = list(network.boundary_names)
        self.boundary_functions = {
            name: network.boundary_node(name).temperature_c
            for name in self.boundary_names
        }
        boundary_index = {name: j for j, name in enumerate(self.boundary_names)}
        self.n_boundary = len(self.boundary_names)
        self.boundary_const = np.zeros(self.n_boundary)
        self.boundary_slots: list[tuple[int, object]] = []
        for name, func in self.boundary_functions.items():
            constant = constant_value_of(func)
            j = boundary_index[name]
            if constant is not None:
                self.boundary_const[j] = constant
            else:
                self.boundary_slots.append((j, func))

        # -- conductance edges as Laplacian + boundary-coupling matrices -------
        self.laplacian = np.zeros((self.n_state, self.n_state))
        self.boundary_matrix = np.zeros((self.n_state, self.n_boundary))
        self.edge_struct: list[tuple[int, int]] = []
        for edge in network.conductances:
            g = edge.conductance_w_per_k
            ia = index.get(edge.node_a, -1)
            ib = index.get(edge.node_b, -1)
            self.edge_struct.append(
                (
                    ia if ia >= 0 else -1 - boundary_index[edge.node_a],
                    ib if ib >= 0 else -1 - boundary_index[edge.node_b],
                )
            )
            # heat = g * (T_a - T_b); flows[a] -= heat, flows[b] += heat.
            if ia >= 0:
                self.laplacian[ia, ia] -= g
                if ib >= 0:
                    self.laplacian[ia, ib] += g
                else:
                    self.boundary_matrix[ia, boundary_index[edge.node_b]] += g
            if ib >= 0:
                self.laplacian[ib, ib] -= g
                if ia >= 0:
                    self.laplacian[ib, ia] += g
                else:
                    self.boundary_matrix[ib, boundary_index[edge.node_a]] += g

        # When every boundary temperature is constant the whole boundary
        # matvec collapses to one precomputed flow vector.
        self.static_boundary_flows: np.ndarray | None = None
        if not self.boundary_slots:
            self.static_boundary_flows = self.boundary_matrix @ self.boundary_const

        # -- air path: one concatenated coupling array across segments ---------
        self.air_path = network.air_path
        self.segments: list[tuple[np.ndarray, list]] = []
        self.inlet_index = -1
        self.n_couplings = 0
        if self.air_path is not None:
            self.inlet_index = boundary_index["inlet"]
            ref_g: list[float] = []
            ref_flow: list[float] = []
            exponent: list[float] = []
            stagnant: list[float] = []
            for segment in self.air_path.segments:
                idx = np.array(
                    [index[c.node_name] for c in segment.couplings], dtype=np.intp
                )
                self.segments.append((idx, list(segment.couplings)))
                for coupling in segment.couplings:
                    ref_g.append(coupling.reference_conductance_w_per_k)
                    ref_flow.append(coupling.reference_flow_m3_s)
                    exponent.append(coupling.exponent)
                    stagnant.append(
                        coupling.stagnant_fraction
                        * coupling.reference_conductance_w_per_k
                    )
            self.n_couplings = len(ref_g)
            self.air_ref_g = np.array(ref_g)
            self.air_ref_flow = np.array(ref_flow)
            self.air_exponent = np.array(exponent)
            self.air_stagnant = np.array(stagnant)
        # -- capacity scaling folded into the operator -------------------------
        # Capacitive rows divide by heat capacity; PCM rows integrate raw
        # enthalpy flow. Folding the division into the compiled operator
        # turns the whole right-hand side into one matvec plus one add.
        self.inv_capacity = np.concatenate(
            [1.0 / self.capacities, np.ones(self.n_pcm)]
        )
        self.inv_capacity_rows = self.inv_capacity[:, None]

        # Precomputed liquid-branch intercept and mushy-zone slope for the
        # two-op form of the T(h) map used in the hot path.
        if self.n_pcm:
            self.pcm_liquid_intercept = (
                self.pcm_liquidus - self.pcm_fusion / self.pcm_c_liquid
            )
            self.pcm_mushy_slope = self.pcm_melt_range / self.pcm_fusion
        # Scalar parameters for the single-PCM-node fast path: with one wax
        # node (the common chassis layout) plain Python floats beat the
        # ~12 tiny-array ufunc dispatches of the vector branch.
        self._pcm_scalar: tuple[float, ...] | None = None
        if self.n_pcm == 1:
            self._pcm_scalar = (
                float(self.pcm_masses[0]),
                float(self.pcm_solidus[0]),
                float(self.pcm_fusion[0]),
                float(self.pcm_c_solid[0]),
                float(self.pcm_c_liquid[0]),
                float(self.pcm_liquid_intercept[0]),
                float(self.pcm_mushy_slope[0]),
            )

        # -- per-run caches ----------------------------------------------------
        self._input_cache_time: float | None = None
        self._input_cache: np.ndarray | None = None
        self._g_cache_flow: float | None = None
        self._g_cache: np.ndarray | None = None
        self._op_cache_flow: float | None = None
        self._op_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._prepared_cache_flow: float | None = None
        self._prepared_cache: object | None = None
        if self.air_path is None:
            self._op_cache_flow = 0.0
            self._op_cache = (
                self.laplacian * self.inv_capacity_rows,
                np.zeros(self.n_state),
            )
        if isinstance(self.backend, NumbaBackend):
            self.backend.warm_up(self.n_state)

    # -- backend plumbing -----------------------------------------------------

    def set_backend(self, backend: SolverBackend) -> None:
        """Swap the operator-application backend, invalidating its cache."""
        self.backend = backend
        self._prepared_cache_flow = None
        self._prepared_cache = None
        self._input_cache_time = None
        self._input_cache = None
        if isinstance(backend, NumbaBackend):
            backend.warm_up(self.n_state)

    def operator_density(self) -> float:
        """Structural density (nnz fraction) of the compiled operator.

        Probed at the run's initial flow — the operator the run builds
        first anyway — and used by ``backend="auto"`` to decide whether
        CSR is worth it.
        """
        flow = 0.0
        if self.air_path is not None:
            flow = self.air_path.flow_at_time(0.0)
        matrix, _ = self._operator_for_flow(flow)
        return np.count_nonzero(matrix) / matrix.size

    def _prepared_for_flow(self, flow: float) -> object:
        """The flow's operator in the backend's native form, cached."""
        if (
            flow == self._prepared_cache_flow
            and self._prepared_cache is not None
        ):
            return self._prepared_cache
        matrix, _ = self._operator_for_flow(flow)
        self._prepared_cache_flow = flow
        self._prepared_cache = self.backend.prepare(matrix)
        return self._prepared_cache

    # -- structural signature (batched solves require identical structure) ----

    def structure(self) -> tuple:
        """Hashable description of everything a batch must share."""
        return (
            tuple(self.cap_names),
            tuple(self.pcm_names),
            tuple(self.boundary_names),
            tuple(self.edge_struct),
            tuple(tuple(idx.tolist()) for idx, _ in self.segments),
            self.air_path is not None,
        )

    # -- state expansion ---------------------------------------------------

    def temperatures(self, state: np.ndarray) -> np.ndarray:
        """Temperatures of all state nodes (PCM via the enthalpy map).

        The piecewise branches follow
        :meth:`PCMMaterial.temperature_at_enthalpy`, vectorized over every
        PCM node at once with the liquid intercept and mushy slope
        precomputed at compile time.
        """
        if self._pcm_scalar is not None:
            mass, solidus, fusion, c_solid, c_liquid, intercept, slope = (
                self._pcm_scalar
            )
            temps = state.copy()
            specific = state[self.n_cap] / mass
            if specific <= 0.0:
                temps[self.n_cap] = solidus + specific / c_solid
            elif specific >= fusion:
                temps[self.n_cap] = intercept + specific / c_liquid
            else:
                temps[self.n_cap] = solidus + specific * slope
            return temps
        temps = np.empty(self.n_state)
        temps[: self.n_cap] = state[: self.n_cap]
        if self.n_pcm:
            specific = state[self.n_cap :] / self.pcm_masses
            solid = self.pcm_solidus + specific / self.pcm_c_solid
            liquid = self.pcm_liquid_intercept + specific / self.pcm_c_liquid
            mushy = self.pcm_solidus + specific * self.pcm_mushy_slope
            temps[self.n_cap :] = np.where(
                specific <= 0.0,
                solid,
                np.where(specific >= self.pcm_fusion, liquid, mushy),
            )
        return temps

    def boundary_temperature(self, name: str, time_s: float) -> float:
        return self.boundary_functions[name](time_s)

    # -- time-dependent inputs ---------------------------------------------

    def _powers_at(self, time_s: float) -> np.ndarray:
        if self.power_vector_fn is not None:
            return self.power_vector_fn(time_s)
        if not self.power_slots:
            return self.power_const
        powers = self.power_const.copy()
        for i, func in self.power_slots:
            powers[i] = func(time_s)
        return powers

    def _boundaries_at(self, time_s: float) -> np.ndarray:
        if not self.boundary_slots:
            return self.boundary_const
        boundary = self.boundary_const.copy()
        for j, func in self.boundary_slots:
            boundary[j] = func(time_s)
        return boundary

    def _coupling_conductances(self, flow: float) -> np.ndarray:
        """Concatenated coupling conductances (all segments) at a flow.

        Mirrors :func:`repro.thermal.convection.flow_scaled_conductance`
        elementwise; cached on the flow value because fan schedules are
        piecewise constant.
        """
        if flow == self._g_cache_flow and self._g_cache is not None:
            return self._g_cache
        g = np.maximum(
            self.air_ref_g * (flow / self.air_ref_flow) ** self.air_exponent,
            self.air_stagnant,
        )
        self._g_cache_flow = flow
        self._g_cache = g
        return g

    def _air_operator(self, flow: float) -> tuple[np.ndarray, np.ndarray]:
        """Air-path heat flows as an affine map of state temperatures.

        For a fixed flow the quasi-steady mixing chain is *linear*: each
        segment's mixed temperature is a conductance-weighted mean of the
        upstream air (itself linear in everything upstream) and the coupled
        node temperatures. Unrolling the chain gives

            air_flows = M @ temps + v * T_inlet

        with ``M`` and ``v`` depending only on the flow. ``upstream`` is
        tracked through the chain as the row vector + inlet coefficient of
        that affine form.
        """
        n = self.n_state
        matrix = np.zeros((n, n))
        inlet_vector = np.zeros(n)
        g_all = self._coupling_conductances(flow)
        capacity_rate = AIR_VOLUMETRIC_HEAT_CAPACITY * flow
        upstream_row = np.zeros(n)
        upstream_inlet = 1.0
        position = 0
        for idx, couplings in self.segments:
            count = len(couplings)
            g = g_all[position : position + count]
            position += count
            denominator = capacity_rate + g.sum()
            alpha = capacity_rate / denominator
            mixed_row = alpha * upstream_row
            if count:
                mixed_row[idx] += g / denominator
            mixed_inlet = alpha * upstream_inlet
            if count:
                # flows[idx_j] += g_j * (mixed - T_j)
                matrix[idx, :] += g[:, None] * mixed_row[None, :]
                matrix[idx, idx] -= g
                inlet_vector[idx] += g * mixed_inlet
            upstream_row = mixed_row
            upstream_inlet = mixed_inlet
        return matrix, inlet_vector

    def _operator_for_flow(self, flow: float) -> tuple[np.ndarray, np.ndarray]:
        """Capacity-scaled state operator and inlet vector at a flow.

        ``derivative = K @ temps + constants`` where ``K`` folds the edge
        Laplacian, the air-path affine map, and the per-row capacity
        division into one matrix. Cached on the flow value.
        """
        if flow == self._op_cache_flow and self._op_cache is not None:
            return self._op_cache
        matrix, inlet_vector = self._air_operator(flow)
        matrix += self.laplacian
        matrix *= self.inv_capacity_rows
        self._op_cache_flow = flow
        self._op_cache = (matrix, inlet_vector)
        return self._op_cache

    def _constants_at(self, time_s: float) -> tuple[np.ndarray, np.ndarray]:
        """(K, state-independent derivative terms) at a time, cached per time.

        The constant vector collects node powers, boundary-edge flows, and
        the air path's inlet contribution, already divided by capacity. RK4
        evaluates the midpoint twice per step, so one step costs three
        distinct input evaluations instead of four.
        """
        if time_s == self._input_cache_time and self._input_cache is not None:
            return self._input_cache
        if self.static_boundary_flows is not None:
            boundary = self.boundary_const
            base = self.static_boundary_flows.copy()
        else:
            boundary = self._boundaries_at(time_s)
            base = self.boundary_matrix @ boundary
        base[: self.n_cap] += self._powers_at(time_s)
        flow = 0.0
        if self.air_path is not None:
            flow = self.air_path.flow_at_time(time_s)
        _, inlet_vector = self._operator_for_flow(flow)
        if self.air_path is not None:
            base += inlet_vector * boundary[self.inlet_index]
        base *= self.inv_capacity
        inputs = (self._prepared_for_flow(flow), base)
        self._input_cache_time = time_s
        self._input_cache = inputs
        return inputs

    # -- physics --------------------------------------------------------------

    def rhs(self, state: np.ndarray, time_s: float) -> np.ndarray:
        """Packed state derivative; mirrors ThermalNetwork.state_derivative."""
        operator, constants = self._constants_at(time_s)
        return self.backend.apply(operator, self.temperatures(state), constants)

    def observe(
        self, state: np.ndarray, time_s: float
    ) -> tuple[dict[str, float], dict[str, float], float]:
        """Node temperatures, segment air temperatures, and flow at a state."""
        temps = self.temperatures(state)
        named = {name: float(temps[self.state_index[name]]) for name in self.cap_names}
        named.update(
            {name: float(temps[self.state_index[name]]) for name in self.pcm_names}
        )
        for name, func in self.boundary_functions.items():
            named[name] = float(func(time_s))
        air: dict[str, float] = {}
        flow = 0.0
        if self.air_path is not None:
            air_map, flow = self.network.air_temperatures(
                {**named}, time_s
            )
            air = {name: float(value) for name, value in air_map.items()}
        return named, air, flow


class _TraceBuffers:
    """Preallocated output traces shared by the RK4, BDF, and batch paths."""

    def __init__(self, compiled: _CompiledNetwork, n_outputs: int) -> None:
        self.compiled = compiled
        self.temp_traces = {
            name: np.empty(n_outputs)
            for name in compiled.cap_names
            + compiled.pcm_names
            + list(compiled.boundary_functions)
        }
        self.air_traces: dict[str, np.ndarray] = {}
        if compiled.air_path is not None:
            self.air_traces = {
                segment.name: np.empty(n_outputs)
                for segment in compiled.air_path.segments
            }
        self.flow_trace = np.zeros(n_outputs)
        self.melt_traces = {name: np.empty(n_outputs) for name in compiled.pcm_names}
        self.enthalpy_traces = {
            name: np.empty(n_outputs) for name in compiled.pcm_names
        }
        self.power_trace = np.empty(n_outputs)

    def record(self, sample_index: int, state: np.ndarray, time_s: float) -> None:
        compiled = self.compiled
        named, air, flow = compiled.observe(state, time_s)
        for name, value in named.items():
            self.temp_traces[name][sample_index] = value
        for name, value in air.items():
            self.air_traces[name][sample_index] = value
        self.flow_trace[sample_index] = flow
        for i, name in enumerate(compiled.pcm_names):
            enthalpy = state[compiled.n_cap + i]
            self.enthalpy_traces[name][sample_index] = enthalpy
            sample = compiled.pcm_samples[i]
            self.melt_traces[name][sample_index] = (
                sample.material.melt_fraction_at_enthalpy(enthalpy / sample.mass_kg)
            )
        self.power_trace[sample_index] = compiled.network.total_power_w(time_s)

    def result(self, times: np.ndarray) -> TransientResult:
        return TransientResult(
            times_s=times,
            temperatures_c=self.temp_traces,
            air_temperatures_c=self.air_traces,
            flow_m3_s=self.flow_trace,
            melt_fractions=self.melt_traces,
            pcm_enthalpies_j=self.enthalpy_traces,
            power_w=self.power_trace,
        )


def stable_step_s(network: ThermalNetwork, safety: float = DEFAULT_STEP_SAFETY) -> float:
    """Step size bound from the network's smallest time constant.

    Evaluated at full fan speed (maximum flow, hence maximum convective
    conductance and stiffest dynamics).
    """
    if not 0 < safety <= 1.0:
        raise ConfigurationError(f"step safety must be in (0, 1], got {safety}")
    get_registry().count("solver.stability_rebuilds")
    if network.air_path is not None:
        flow = network.air_path.flow_at_time(0.0)
        # Conductance grows with flow; bound using the largest flow the fan
        # bank can deliver into the current impedance at full speed.
        from repro.thermal.airflow import operating_flow

        flow = max(
            flow,
            operating_flow(network.air_path.fans, network.air_path.total_impedance()),
        )
    else:
        flow = 0.0
    return safety * network.min_time_constant_s(flow)


def _validate_run_args(duration_s: float, output_interval_s: float) -> None:
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    if output_interval_s <= 0:
        raise ConfigurationError(
            f"output interval must be positive, got {output_interval_s}"
        )


def _resolve_step(
    network: ThermalNetwork,
    step_safety: float,
    max_step_s: float | None,
    output_interval_s: float,
) -> float:
    step = stable_step_s(network, step_safety)
    if max_step_s is not None:
        if max_step_s <= 0:
            raise ConfigurationError(f"max step must be positive, got {max_step_s}")
        step = min(step, max_step_s)
    return min(step, output_interval_s)


def simulate_transient(
    network: ThermalNetwork,
    duration_s: float,
    output_interval_s: float = 60.0,
    max_step_s: float | None = None,
    step_safety: float = DEFAULT_STEP_SAFETY,
    commit_final_state: bool = False,
    method: str = "rk4",
    backend: str = "auto",
) -> TransientResult:
    """Integrate a network forward in time and sample its trajectory.

    Parameters
    ----------
    network:
        The chassis network. Its PCM samples' current enthalpies are the
        initial conditions; they are left untouched unless
        ``commit_final_state`` is set.
    duration_s:
        Simulation horizon. The returned traces always end with a sample
        at exactly ``duration_s``, even when the horizon is shorter than
        (or not a multiple of) the output interval.
    output_interval_s:
        Sampling resolution of the returned traces.
    max_step_s:
        Optional cap on the internal RK4 step (defaults to the stability
        bound and never exceeds the output interval).
    step_safety:
        Fraction of the minimum time constant used for the internal step.
    commit_final_state:
        If true, write the final PCM enthalpies back into the network's
        samples, letting callers chain simulation phases.
    method:
        ``"rk4"`` (default): fixed-step explicit RK4 at the stability
        bound — fast, deterministic, exact energy bookkeeping.
        ``"bdf"``: SciPy's implicit BDF integrator on the same compiled
        right-hand side — an independent numerical path used as a
        cross-check (tests assert the two agree).
    backend:
        Operator-application backend: ``"auto"`` (default — dense NumPy,
        switching to SciPy CSR past the size/density thresholds in
        :mod:`repro.thermal.backends`), or an explicit ``"numpy"``,
        ``"sparse"``, or ``"numba"`` (requires the ``compiled`` extra).
    """
    _validate_run_args(duration_s, output_interval_s)
    if method not in ("rk4", "bdf"):
        raise ConfigurationError(
            f"method must be 'rk4' or 'bdf', got {method!r}"
        )
    network.validate()
    obs = get_registry()
    with obs.timer("solver.transient"):
        compiled = _CompiledNetwork(network)
        compiled.set_backend(
            resolve_backend(backend, compiled.n_state, compiled.operator_density)
        )
        count_backend_selection(compiled.backend)
        obs.count("solver.compiled_builds")
        obs.count("solver.path.compiled")

        if method == "bdf":
            return _simulate_bdf(
                network, compiled, duration_s, output_interval_s, commit_final_state
            )

        step = _resolve_step(network, step_safety, max_step_s, output_interval_s)
        return _integrate_rk4(
            network, compiled, duration_s, output_interval_s, step,
            commit_final_state, obs,
        )


def _integrate_rk4(
    network: ThermalNetwork,
    compiled: _CompiledNetwork,
    duration_s: float,
    output_interval_s: float,
    step: float,
    commit_final_state: bool,
    obs: ObsRegistry,
) -> TransientResult:
    """Fixed-step RK4 integration of the compiled network."""

    times = _sample_times(duration_s, output_interval_s)
    n_outputs = len(times)

    state = network.initial_state()
    n_cap = compiled.n_cap
    buffers = _TraceBuffers(compiled, n_outputs)

    buffers.record(0, state, 0.0)
    time_now = 0.0
    steps_taken = 0
    for sample_index in range(1, n_outputs):
        target = times[sample_index]
        while time_now < target - 1e-9:
            dt = min(step, target - time_now)
            k1 = compiled.rhs(state, time_now)
            k2 = compiled.rhs(state + 0.5 * dt * k1, time_now + 0.5 * dt)
            k3 = compiled.rhs(state + 0.5 * dt * k2, time_now + 0.5 * dt)
            k4 = compiled.rhs(state + dt * k3, time_now + dt)
            state = state + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            time_now += dt
            steps_taken += 1
            if not np.all(np.isfinite(state)):
                raise SolverError(
                    f"non-finite state at t={time_now:.1f}s in network "
                    f"{network.name!r}; step {step:.3g}s may be unstable"
                )
        buffers.record(sample_index, state, target)

    if obs.enabled:
        obs.count("solver.runs")
        obs.count("solver.method.rk4")
        obs.count("solver.rk4_steps", steps_taken)
        obs.count("solver.rhs_evals", 4 * steps_taken)
        obs.record("solver.step_s", step)

    if commit_final_state:
        for i, name in enumerate(compiled.pcm_names):
            network.pcm_node(name).sample.enthalpy_j = float(state[n_cap + i])

    return buffers.result(times)


def _simulate_bdf(
    network: ThermalNetwork,
    compiled: _CompiledNetwork,
    duration_s: float,
    output_interval_s: float,
    commit_final_state: bool,
) -> TransientResult:
    """SciPy BDF integration of the compiled network (cross-check path).

    Power and fan schedules may be discontinuous (step profiles), which
    adaptive implicit solvers handle but step over; the maximum internal
    step is capped at the output interval so no feature narrower than the
    sampling resolution is skipped entirely.
    """
    from scipy.integrate import solve_ivp

    times = _sample_times(duration_s, output_interval_s)
    n_outputs = len(times)
    initial = network.initial_state()

    solution = solve_ivp(
        lambda t, y: compiled.rhs(y, t),
        t_span=(0.0, duration_s),
        y0=initial,
        method="BDF",
        t_eval=times,
        max_step=output_interval_s,
        rtol=1e-6,
        atol=1e-6,
    )
    if not solution.success:
        raise SolverError(f"BDF integration failed: {solution.message}")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.runs")
        obs.count("solver.method.bdf")
        obs.count("solver.rhs_evals", int(solution.nfev))

    n_cap = compiled.n_cap
    buffers = _TraceBuffers(compiled, n_outputs)
    for sample_index, time_s in enumerate(times):
        buffers.record(sample_index, solution.y[:, sample_index], float(time_s))

    if commit_final_state:
        # The final t_eval sample now sits exactly at the horizon.
        for i, name in enumerate(compiled.pcm_names):
            network.pcm_node(name).sample.enthalpy_j = float(
                solution.y[n_cap + i, -1]
            )

    return buffers.result(times)


class _BatchCompiledNetwork:
    """Stacked evaluator advancing N structurally-identical networks at once.

    Structure (node names and order, edge endpoints, air-segment coupling
    layout) must match across members; *parameters* (conductance values,
    powers, PCM masses and materials, fan curves) are free to differ —
    they are stacked along a leading member axis and every kernel op
    broadcasts over it.
    """

    def __init__(
        self,
        members: list[_CompiledNetwork],
        backend: SolverBackend | None = None,
    ) -> None:
        if not members:
            raise ConfigurationError("batch must contain at least one network")
        self.backend = backend if backend is not None else NumpyBackend()
        first = members[0]
        for position, member in enumerate(members[1:], start=1):
            if member.structure() != first.structure():
                raise ConfigurationError(
                    f"batch member {position} ({member.network.name!r}) is not "
                    f"structurally identical to member 0 "
                    f"({first.network.name!r}); batched simulation requires "
                    f"matching node order, edges, and air-path layout"
                )
        self.members = members
        self.n_members = len(members)
        self.n_cap = first.n_cap
        self.n_pcm = first.n_pcm
        self.n_state = first.n_state

        self.boundary_matrix = np.stack([m.boundary_matrix for m in members])
        self.inv_capacity = np.stack([m.inv_capacity for m in members])
        if self.n_pcm:
            self.pcm_masses = np.stack([m.pcm_masses for m in members])
            self.pcm_solidus = np.stack([m.pcm_solidus for m in members])
            self.pcm_fusion = np.stack([m.pcm_fusion for m in members])
            self.pcm_c_solid = np.stack([m.pcm_c_solid for m in members])
            self.pcm_c_liquid = np.stack([m.pcm_c_liquid for m in members])
            self.pcm_liquid_intercept = np.stack(
                [m.pcm_liquid_intercept for m in members]
            )
            self.pcm_mushy_slope = np.stack([m.pcm_mushy_slope for m in members])

        self.air = first.air_path is not None
        self.inlet_index = first.inlet_index
        self.static_boundary = all(
            m.static_boundary_flows is not None for m in members
        )
        if self.static_boundary:
            self.boundary_const = np.stack([m.boundary_const for m in members])
            self.static_boundary_flows = np.stack(
                [m.static_boundary_flows for m in members]
            )

        self._input_cache_time: float | None = None
        self._input_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._op_cache_key: bytes | None = None
        self._op_cache: tuple[object, np.ndarray] | None = None
        if isinstance(self.backend, NumbaBackend):
            self.backend.warm_up(self.n_state)

    def temperatures(self, state: np.ndarray) -> np.ndarray:
        """Stacked node temperatures; same branch arithmetic as the
        single-network path, broadcast over the member axis."""
        temps = np.empty_like(state)
        temps[:, : self.n_cap] = state[:, : self.n_cap]
        if self.n_pcm:
            specific = state[:, self.n_cap :] / self.pcm_masses
            solid = self.pcm_solidus + specific / self.pcm_c_solid
            liquid = self.pcm_liquid_intercept + specific / self.pcm_c_liquid
            mushy = self.pcm_solidus + specific * self.pcm_mushy_slope
            temps[:, self.n_cap :] = np.where(
                specific <= 0.0,
                solid,
                np.where(specific >= self.pcm_fusion, liquid, mushy),
            )
        return temps

    def _operators_for(self, flows: np.ndarray) -> tuple[object, np.ndarray]:
        """Stacked per-member (K, inlet vector) operators at member flows,
        already converted to the backend's native batch form."""
        key = flows.tobytes()
        if key == self._op_cache_key and self._op_cache is not None:
            return self._op_cache
        pairs = [
            member._operator_for_flow(float(flow))
            for member, flow in zip(self.members, flows)
        ]
        operators = np.stack([pair[0] for pair in pairs])
        inlet_vectors = np.stack([pair[1] for pair in pairs])
        self._op_cache_key = key
        self._op_cache = (self.backend.prepare_batch(operators), inlet_vectors)
        return self._op_cache

    def _constants_at(self, time_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Stacked (K, state-independent terms) at a time, cached per time."""
        if time_s == self._input_cache_time and self._input_cache is not None:
            return self._input_cache
        if self.static_boundary:
            boundary = self.boundary_const
            base = self.static_boundary_flows.copy()
        else:
            boundary = np.stack(
                [m._boundaries_at(time_s) for m in self.members]
            )
            base = np.einsum("nij,nj->ni", self.boundary_matrix, boundary)
        base[:, : self.n_cap] += np.stack(
            [m._powers_at(time_s) for m in self.members]
        )
        if self.air:
            flows = np.array(
                [m.air_path.flow_at_time(time_s) for m in self.members]
            )
        else:
            flows = np.zeros(self.n_members)
        operators, inlet_vectors = self._operators_for(flows)
        if self.air:
            base += inlet_vectors * boundary[:, self.inlet_index, None]
        base *= self.inv_capacity
        inputs = (operators, base)
        self._input_cache_time = time_s
        self._input_cache = inputs
        return inputs

    def rhs(self, state: np.ndarray, time_s: float) -> np.ndarray:
        """Stacked state derivative for all members; shape ``(N, n_state)``."""
        operators, constants = self._constants_at(time_s)
        return self.backend.apply_batch(
            operators, self.temperatures(state), constants
        )


def simulate_transient_batch(
    networks: list[ThermalNetwork],
    duration_s: float,
    output_interval_s: float = 60.0,
    max_step_s: float | None = None,
    step_safety: float = DEFAULT_STEP_SAFETY,
    commit_final_state: bool = False,
    backend: str = "auto",
    progress_cb: Callable[[int, int, float], None] | None = None,
) -> BatchTransientResult:
    """Advance N structurally-identical networks in one RK4 loop.

    The networks are packed into a single ``(N, n_state)`` state array and
    stepped together at the most conservative member's stability bound, so
    a sweep over parameter variants (wax mass, blockage, sprint power)
    costs one vectorized integration instead of N scalar ones.

    A member whose state goes non-finite is *isolated*, not fatal: it is
    frozen at its last finite state, recorded as a failure, and excluded
    from further updates while the rest of the batch continues. Member
    trajectories are returned in input order; diverged members yield
    ``None`` (see :class:`BatchTransientResult`).

    ``progress_cb``, when given, is called once per committed output
    sample as ``progress_cb(sample_index, n_samples, time_s)`` (including
    the initial condition at index 0). It adds nothing to the hot step
    loop when omitted. An exception raised by the callback aborts the
    integration and propagates to the caller unchanged — long-running
    service layers use this for cooperative cancellation.
    """
    _validate_run_args(duration_s, output_interval_s)
    if not networks:
        raise ConfigurationError("batch must contain at least one network")
    for network in networks:
        network.validate()

    obs = get_registry()
    with obs.timer("solver.transient_batch"):
        members = [_CompiledNetwork(network) for network in networks]
        # All members share one structure, so member 0's size and density
        # stand in for the whole batch when resolving "auto".
        batch_backend = resolve_backend(
            backend, members[0].n_state, members[0].operator_density
        )
        batch = _BatchCompiledNetwork(members, backend=batch_backend)
        count_backend_selection(batch_backend)
        obs.count("solver.compiled_builds", len(members))
        obs.count("solver.path.batched")

        step = min(
            _resolve_step(network, step_safety, max_step_s, output_interval_s)
            for network in networks
        )

        times = _sample_times(duration_s, output_interval_s)
        n_outputs = len(times)
        n_members = len(networks)
        n_cap = batch.n_cap

        state = np.stack([network.initial_state() for network in networks])
        active = np.ones(n_members, dtype=bool)
        failures: dict[int, str] = {}
        buffers = [_TraceBuffers(member, n_outputs) for member in members]

        for member_index, member_buffers in enumerate(buffers):
            member_buffers.record(0, state[member_index], 0.0)
        if progress_cb is not None:
            progress_cb(0, n_outputs, 0.0)

        time_now = 0.0
        steps_taken = 0
        for sample_index in range(1, n_outputs):
            target = times[sample_index]
            while time_now < target - 1e-9:
                dt = min(step, target - time_now)
                k1 = batch.rhs(state, time_now)
                k2 = batch.rhs(state + 0.5 * dt * k1, time_now + 0.5 * dt)
                k3 = batch.rhs(state + 0.5 * dt * k2, time_now + 0.5 * dt)
                k4 = batch.rhs(state + dt * k3, time_now + dt)
                advanced = state + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
                time_now += dt
                steps_taken += 1
                finite = np.all(np.isfinite(advanced), axis=1)
                newly_diverged = active & ~finite
                if np.any(newly_diverged):
                    for member_index in np.flatnonzero(newly_diverged):
                        failures[int(member_index)] = (
                            f"non-finite state at t={time_now:.1f}s in network "
                            f"{networks[member_index].name!r}; step {step:.3g}s "
                            f"may be unstable"
                        )
                    active &= finite
                # Diverged members stay frozen at their last finite state.
                state = np.where(active[:, None], advanced, state)
            for member_index in range(n_members):
                if active[member_index]:
                    buffers[member_index].record(
                        sample_index, state[member_index], target
                    )
            if progress_cb is not None:
                progress_cb(sample_index, n_outputs, float(target))

        if obs.enabled:
            obs.count("solver.runs")
            obs.count("solver.method.rk4_batch")
            obs.count("solver.batch_members", n_members)
            obs.count("solver.rk4_steps", steps_taken)
            obs.count("solver.rhs_evals", 4 * steps_taken * n_members)
            obs.record("solver.step_s", step)

        if commit_final_state:
            for member_index, member in enumerate(members):
                if not active[member_index]:
                    continue
                for i, name in enumerate(member.pcm_names):
                    networks[member_index].pcm_node(name).sample.enthalpy_j = float(
                        state[member_index, n_cap + i]
                    )

        results: list[TransientResult | None] = [
            buffers[member_index].result(times) if active[member_index] else None
            for member_index in range(n_members)
        ]
        return BatchTransientResult(results=results, failures=failures)
