"""Transient integration of a chassis thermal network.

The solver advances the packed state ``[T_cap..., H_pcm...]`` with a
fixed-step classical Runge-Kutta (RK4) scheme. The step size is derived
from the smallest node time constant (a Gershgorin-style stability bound),
so callers choose only an *output* resolution; accuracy at the hour-scale
transients the paper studies is limited by the model, not the integrator.

The network's dictionary-based physics
(:meth:`~repro.thermal.network.ThermalNetwork.heat_flows_w`) is the
readable reference implementation; for the long (25 h) simulations and
parameter sweeps this module compiles the network into flat NumPy arrays
once and evaluates the same equations ~10x faster. Tests assert the two
paths agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.obs import ObsRegistry, get_registry
from repro.thermal.network import ThermalNetwork
from repro.units import AIR_VOLUMETRIC_HEAT_CAPACITY

#: Default fraction of the minimum time constant used as the RK4 step.
DEFAULT_STEP_SAFETY = 0.5


@dataclass
class TransientResult:
    """Sampled trajectory of a transient simulation.

    Attributes
    ----------
    times_s:
        Sample times, seconds.
    temperatures_c:
        Node name -> temperature trace (capacitive, PCM, and boundary nodes).
    air_temperatures_c:
        Air segment name -> well-mixed temperature trace.
    flow_m3_s:
        Operating airflow trace.
    melt_fractions:
        PCM node name -> melt fraction trace.
    pcm_enthalpies_j:
        PCM node name -> total enthalpy trace.
    power_w:
        Total dissipated electrical power trace.
    """

    times_s: np.ndarray
    temperatures_c: dict[str, np.ndarray]
    air_temperatures_c: dict[str, np.ndarray]
    flow_m3_s: np.ndarray
    melt_fractions: dict[str, np.ndarray]
    pcm_enthalpies_j: dict[str, np.ndarray]
    power_w: np.ndarray

    def temperature(self, name: str) -> np.ndarray:
        """Temperature trace of a node or air segment."""
        if name in self.temperatures_c:
            return self.temperatures_c[name]
        if name in self.air_temperatures_c:
            return self.air_temperatures_c[name]
        raise KeyError(name)

    @property
    def times_hours(self) -> np.ndarray:
        """Sample times in hours."""
        return self.times_s / 3600.0

    def final_temperatures(self) -> dict[str, float]:
        """Temperatures of every node at the last sample."""
        return {name: float(trace[-1]) for name, trace in self.temperatures_c.items()}

    def heat_stored_in_pcm_j(self) -> np.ndarray:
        """Total PCM enthalpy (relative to the solidus datum) over time."""
        if not self.pcm_enthalpies_j:
            return np.zeros_like(self.times_s)
        return np.sum(
            [trace for trace in self.pcm_enthalpies_j.values()], axis=0
        )

    def heat_release_to_air_w(self) -> np.ndarray:
        """Instantaneous heat the chassis hands to the airstream.

        Energy balance: electrical power minus the rate of change of energy
        stored in PCM (sensible storage in component masses is neglected at
        this reporting level; it is small and zero-mean over a cycle). This
        is the quantity the datacenter cooling system must remove.
        """
        stored = self.heat_stored_in_pcm_j()
        storage_rate = np.gradient(stored, self.times_s)
        return self.power_w - storage_rate


class _CompiledNetwork:
    """Flat-array evaluator of a network's right-hand side."""

    def __init__(self, network: ThermalNetwork) -> None:
        self.network = network
        self.cap_names = network.capacitive_names
        self.pcm_names = network.pcm_names
        self.n_cap = len(self.cap_names)
        self.n_pcm = len(self.pcm_names)
        self.n_state = self.n_cap + self.n_pcm

        index: dict[str, int] = {}
        for i, name in enumerate(self.cap_names):
            index[name] = i
        for i, name in enumerate(self.pcm_names):
            index[name] = self.n_cap + i
        self.state_index = index

        self.capacities = np.array(
            [
                network.capacitive_node(name).heat_capacity_j_per_k
                for name in self.cap_names
            ]
        )
        self.power_functions = [
            network.capacitive_node(name).power_w for name in self.cap_names
        ]
        self.pcm_samples = [network.pcm_node(name).sample for name in self.pcm_names]
        self.pcm_masses = np.array([s.mass_kg for s in self.pcm_samples])

        self.boundary_functions = {
            name: network.boundary_node(name).temperature_c
            for name in network.boundary_names
        }

        # Conductance edges, split by whether each endpoint is a state node.
        edges = network.conductances
        self.edge_g = np.array([e.conductance_w_per_k for e in edges])
        self.edge_a_state = [index.get(e.node_a, -1) for e in edges]
        self.edge_b_state = [index.get(e.node_b, -1) for e in edges]
        self.edge_a_boundary = [
            e.node_a if e.node_a not in index else None for e in edges
        ]
        self.edge_b_boundary = [
            e.node_b if e.node_b not in index else None for e in edges
        ]

        self.air_path = network.air_path
        if self.air_path is not None:
            self.segments = [
                (
                    [index[c.node_name] for c in segment.couplings],
                    list(segment.couplings),
                )
                for segment in self.air_path.segments
            ]

    # -- state expansion ---------------------------------------------------

    def temperatures(self, state: np.ndarray) -> np.ndarray:
        """Temperatures of all state nodes (PCM via the enthalpy map)."""
        temps = np.empty(self.n_state)
        temps[: self.n_cap] = state[: self.n_cap]
        for i, sample in enumerate(self.pcm_samples):
            specific = state[self.n_cap + i] / sample.mass_kg
            temps[self.n_cap + i] = sample.material.temperature_at_enthalpy(specific)
        return temps

    def boundary_temperature(self, name: str, time_s: float) -> float:
        return self.boundary_functions[name](time_s)

    # -- physics --------------------------------------------------------------

    def rhs(self, state: np.ndarray, time_s: float) -> np.ndarray:
        """Packed state derivative; mirrors ThermalNetwork.state_derivative."""
        temps = self.temperatures(state)
        flows = np.zeros(self.n_state)

        for i, power in enumerate(self.power_functions):
            flows[i] += power(time_s)

        for k in range(len(self.edge_g)):
            ia, ib = self.edge_a_state[k], self.edge_b_state[k]
            t_a = (
                temps[ia]
                if ia >= 0
                else self.boundary_temperature(self.edge_a_boundary[k], time_s)
            )
            t_b = (
                temps[ib]
                if ib >= 0
                else self.boundary_temperature(self.edge_b_boundary[k], time_s)
            )
            heat = self.edge_g[k] * (t_a - t_b)
            if ia >= 0:
                flows[ia] -= heat
            if ib >= 0:
                flows[ib] += heat

        if self.air_path is not None:
            inlet = self.boundary_temperature("inlet", time_s)
            flow = self.air_path.flow_at_time(time_s)
            capacity_rate = AIR_VOLUMETRIC_HEAT_CAPACITY * flow
            upstream = inlet
            for state_indices, couplings in self.segments:
                numerator = capacity_rate * upstream
                denominator = capacity_rate
                conductances = []
                for idx, coupling in zip(state_indices, couplings):
                    g = coupling.conductance_at_flow(flow)
                    conductances.append(g)
                    numerator += g * temps[idx]
                    denominator += g
                mixed = numerator / denominator
                for idx, g in zip(state_indices, conductances):
                    flows[idx] += g * (mixed - temps[idx])
                upstream = mixed

        derivative = np.empty(self.n_state)
        derivative[: self.n_cap] = flows[: self.n_cap] / self.capacities
        derivative[self.n_cap :] = flows[self.n_cap :]
        return derivative

    def observe(
        self, state: np.ndarray, time_s: float
    ) -> tuple[dict[str, float], dict[str, float], float]:
        """Node temperatures, segment air temperatures, and flow at a state."""
        temps = self.temperatures(state)
        named = {name: float(temps[self.state_index[name]]) for name in self.cap_names}
        named.update(
            {name: float(temps[self.state_index[name]]) for name in self.pcm_names}
        )
        for name, func in self.boundary_functions.items():
            named[name] = float(func(time_s))
        air: dict[str, float] = {}
        flow = 0.0
        if self.air_path is not None:
            air_map, flow = self.network.air_temperatures(
                {**named}, time_s
            )
            air = {name: float(value) for name, value in air_map.items()}
        return named, air, flow


def stable_step_s(network: ThermalNetwork, safety: float = DEFAULT_STEP_SAFETY) -> float:
    """Step size bound from the network's smallest time constant.

    Evaluated at full fan speed (maximum flow, hence maximum convective
    conductance and stiffest dynamics).
    """
    if not 0 < safety <= 1.0:
        raise ConfigurationError(f"step safety must be in (0, 1], got {safety}")
    get_registry().count("solver.stability_rebuilds")
    if network.air_path is not None:
        flow = network.air_path.flow_at_time(0.0)
        # Conductance grows with flow; bound using the largest flow the fan
        # bank can deliver into the current impedance at full speed.
        from repro.thermal.airflow import operating_flow

        flow = max(
            flow,
            operating_flow(network.air_path.fans, network.air_path.total_impedance()),
        )
    else:
        flow = 0.0
    return safety * network.min_time_constant_s(flow)


def simulate_transient(
    network: ThermalNetwork,
    duration_s: float,
    output_interval_s: float = 60.0,
    max_step_s: float | None = None,
    step_safety: float = DEFAULT_STEP_SAFETY,
    commit_final_state: bool = False,
    method: str = "rk4",
) -> TransientResult:
    """Integrate a network forward in time and sample its trajectory.

    Parameters
    ----------
    network:
        The chassis network. Its PCM samples' current enthalpies are the
        initial conditions; they are left untouched unless
        ``commit_final_state`` is set.
    duration_s:
        Simulation horizon.
    output_interval_s:
        Sampling resolution of the returned traces.
    max_step_s:
        Optional cap on the internal RK4 step (defaults to the stability
        bound and never exceeds the output interval).
    step_safety:
        Fraction of the minimum time constant used for the internal step.
    commit_final_state:
        If true, write the final PCM enthalpies back into the network's
        samples, letting callers chain simulation phases.
    method:
        ``"rk4"`` (default): fixed-step explicit RK4 at the stability
        bound — fast, deterministic, exact energy bookkeeping.
        ``"bdf"``: SciPy's implicit BDF integrator on the same compiled
        right-hand side — an independent numerical path used as a
        cross-check (tests assert the two agree).
    """
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    if output_interval_s <= 0:
        raise ConfigurationError(
            f"output interval must be positive, got {output_interval_s}"
        )
    if method not in ("rk4", "bdf"):
        raise ConfigurationError(
            f"method must be 'rk4' or 'bdf', got {method!r}"
        )
    network.validate()
    obs = get_registry()
    with obs.timer("solver.transient"):
        compiled = _CompiledNetwork(network)
        obs.count("solver.compiled_builds")
        obs.count("solver.path.compiled")

        if method == "bdf":
            return _simulate_bdf(
                network, compiled, duration_s, output_interval_s, commit_final_state
            )

        step = stable_step_s(network, step_safety)
        if max_step_s is not None:
            if max_step_s <= 0:
                raise ConfigurationError(
                    f"max step must be positive, got {max_step_s}"
                )
            step = min(step, max_step_s)
        step = min(step, output_interval_s)
        return _integrate_rk4(
            network, compiled, duration_s, output_interval_s, step,
            commit_final_state, obs,
        )


def _integrate_rk4(
    network: ThermalNetwork,
    compiled: _CompiledNetwork,
    duration_s: float,
    output_interval_s: float,
    step: float,
    commit_final_state: bool,
    obs: ObsRegistry,
) -> TransientResult:
    """Fixed-step RK4 integration of the compiled network."""

    n_outputs = int(np.floor(duration_s / output_interval_s)) + 1
    times = np.arange(n_outputs) * output_interval_s

    state = network.initial_state()
    n_cap = compiled.n_cap

    temp_traces = {
        name: np.empty(n_outputs)
        for name in compiled.cap_names
        + compiled.pcm_names
        + list(compiled.boundary_functions)
    }
    air_traces: dict[str, np.ndarray] = {}
    if network.air_path is not None:
        air_traces = {
            segment.name: np.empty(n_outputs)
            for segment in network.air_path.segments
        }
    flow_trace = np.zeros(n_outputs)
    melt_traces = {name: np.empty(n_outputs) for name in compiled.pcm_names}
    enthalpy_traces = {name: np.empty(n_outputs) for name in compiled.pcm_names}
    power_trace = np.empty(n_outputs)

    def record(sample_index: int, time_s: float) -> None:
        named, air, flow = compiled.observe(state, time_s)
        for name, value in named.items():
            temp_traces[name][sample_index] = value
        for name, value in air.items():
            air_traces[name][sample_index] = value
        flow_trace[sample_index] = flow
        for i, name in enumerate(compiled.pcm_names):
            enthalpy = state[n_cap + i]
            enthalpy_traces[name][sample_index] = enthalpy
            sample = compiled.pcm_samples[i]
            melt_traces[name][sample_index] = (
                sample.material.melt_fraction_at_enthalpy(enthalpy / sample.mass_kg)
            )
        power_trace[sample_index] = network.total_power_w(time_s)

    record(0, 0.0)
    time_now = 0.0
    steps_taken = 0
    for sample_index in range(1, n_outputs):
        target = times[sample_index]
        while time_now < target - 1e-9:
            dt = min(step, target - time_now)
            k1 = compiled.rhs(state, time_now)
            k2 = compiled.rhs(state + 0.5 * dt * k1, time_now + 0.5 * dt)
            k3 = compiled.rhs(state + 0.5 * dt * k2, time_now + 0.5 * dt)
            k4 = compiled.rhs(state + dt * k3, time_now + dt)
            state = state + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            time_now += dt
            steps_taken += 1
            if not np.all(np.isfinite(state)):
                raise SolverError(
                    f"non-finite state at t={time_now:.1f}s in network "
                    f"{network.name!r}; step {step:.3g}s may be unstable"
                )
        record(sample_index, target)

    if obs.enabled:
        obs.count("solver.runs")
        obs.count("solver.method.rk4")
        obs.count("solver.rk4_steps", steps_taken)
        obs.count("solver.rhs_evals", 4 * steps_taken)
        obs.record("solver.step_s", step)

    if commit_final_state:
        for i, name in enumerate(compiled.pcm_names):
            network.pcm_node(name).sample.enthalpy_j = float(state[n_cap + i])

    return TransientResult(
        times_s=times,
        temperatures_c=temp_traces,
        air_temperatures_c=air_traces,
        flow_m3_s=flow_trace,
        melt_fractions=melt_traces,
        pcm_enthalpies_j=enthalpy_traces,
        power_w=power_trace,
    )


def _simulate_bdf(
    network: ThermalNetwork,
    compiled: _CompiledNetwork,
    duration_s: float,
    output_interval_s: float,
    commit_final_state: bool,
) -> TransientResult:
    """SciPy BDF integration of the compiled network (cross-check path).

    Power and fan schedules may be discontinuous (step profiles), which
    adaptive implicit solvers handle but step over; the maximum internal
    step is capped at the output interval so no feature narrower than the
    sampling resolution is skipped entirely.
    """
    from scipy.integrate import solve_ivp

    n_outputs = int(np.floor(duration_s / output_interval_s)) + 1
    times = np.arange(n_outputs) * output_interval_s
    initial = network.initial_state()

    solution = solve_ivp(
        lambda t, y: compiled.rhs(y, t),
        t_span=(0.0, float(times[-1])) if times[-1] > 0 else (0.0, duration_s),
        y0=initial,
        method="BDF",
        t_eval=times,
        max_step=output_interval_s,
        rtol=1e-6,
        atol=1e-6,
    )
    if not solution.success:
        raise SolverError(f"BDF integration failed: {solution.message}")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.runs")
        obs.count("solver.method.bdf")
        obs.count("solver.rhs_evals", int(solution.nfev))

    n_cap = compiled.n_cap
    temp_traces = {
        name: np.empty(n_outputs)
        for name in compiled.cap_names
        + compiled.pcm_names
        + list(compiled.boundary_functions)
    }
    air_traces: dict[str, np.ndarray] = {}
    if network.air_path is not None:
        air_traces = {
            segment.name: np.empty(n_outputs)
            for segment in network.air_path.segments
        }
    flow_trace = np.zeros(n_outputs)
    melt_traces = {name: np.empty(n_outputs) for name in compiled.pcm_names}
    enthalpy_traces = {name: np.empty(n_outputs) for name in compiled.pcm_names}
    power_trace = np.empty(n_outputs)

    for sample_index, time_s in enumerate(times):
        state = solution.y[:, sample_index]
        named, air, flow = compiled.observe(state, float(time_s))
        for name, value in named.items():
            temp_traces[name][sample_index] = value
        for name, value in air.items():
            air_traces[name][sample_index] = value
        flow_trace[sample_index] = flow
        for i, name in enumerate(compiled.pcm_names):
            enthalpy = state[n_cap + i]
            enthalpy_traces[name][sample_index] = enthalpy
            sample = compiled.pcm_samples[i]
            melt_traces[name][sample_index] = (
                sample.material.melt_fraction_at_enthalpy(enthalpy / sample.mass_kg)
            )
        power_trace[sample_index] = network.total_power_w(float(time_s))

    if commit_final_state:
        for i, name in enumerate(compiled.pcm_names):
            network.pcm_node(name).sample.enthalpy_j = float(
                solution.y[n_cap + i, -1]
            )

    return TransientResult(
        times_s=times,
        temperatures_c=temp_traces,
        air_temperatures_c=air_traces,
        flow_m3_s=flow_trace,
        melt_fractions=melt_traces,
        pcm_enthalpies_j=enthalpy_traces,
        power_w=power_trace,
    )
