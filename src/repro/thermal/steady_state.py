"""Steady-state solution of a chassis thermal network.

Used for the paper's Figure 7 experiments (temperatures after 12 h at
constant load, as a function of airflow blockage) and for the steady-state
columns of the Figure 4 validation. Rather than integrating to equilibrium,
the solver damps a fixed-point iteration on the energy balance:

    T_i = (P_i + sum_j G_ij * T_j) / sum_j G_ij

with the quasi-steady segment air temperatures recomputed each sweep. PCM
nodes at steady state carry no latent flux, so they behave as ordinary
temperature nodes (their steady temperature determines whether the wax
ends the period molten, frozen, or pinned inside the melting interval —
pinning cannot persist at a true steady state unless the node temperature
equals the mushy-zone temperature exactly, so the fixed point treats them
as sensible nodes and reports the implied phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.obs import get_registry, timed
from repro.thermal.backends import count_backend_selection, resolve_backend
from repro.thermal.network import ThermalNetwork
from repro.units import AIR_VOLUMETRIC_HEAT_CAPACITY


@dataclass
class SteadyStateResult:
    """Converged steady-state operating point of a network."""

    temperatures_c: dict[str, float]
    air_temperatures_c: dict[str, float]
    flow_m3_s: float
    iterations: int

    def outlet_temperature_c(self) -> float:
        """Temperature of the last (rear-most) air segment."""
        if not self.air_temperatures_c:
            raise KeyError("network has no air path")
        return list(self.air_temperatures_c.values())[-1]


@timed("solver.steady_state")
def solve_steady_state(
    network: ThermalNetwork,
    time_s: float = 0.0,
    tolerance_c: float = 1e-6,
    max_iterations: int = 20_000,
    relaxation: float = 0.8,
) -> SteadyStateResult:
    """Solve for the network's steady temperatures at a frozen time.

    Power schedules, boundary temperatures, and fan speeds are evaluated at
    ``time_s`` and held constant.

    Parameters
    ----------
    tolerance_c:
        Convergence criterion on the largest temperature update per sweep.
    relaxation:
        Under-relaxation factor in (0, 1]; 1.0 is plain Gauss-Seidel-style
        fixed point, smaller is more robust for strongly-coupled networks.
    """
    network.validate()
    if not 0 < relaxation <= 1.0:
        raise SolverError(f"relaxation must be in (0, 1], got {relaxation}")

    cap_names = network.capacitive_names
    pcm_names = network.pcm_names
    state_names = cap_names + pcm_names

    temps: dict[str, float] = {}
    for name in cap_names:
        temps[name] = network.capacitive_node(name).initial_temperature_c
    for name in pcm_names:
        temps[name] = network.pcm_node(name).sample.temperature_c
    for name in network.boundary_names:
        temps[name] = network.boundary_node(name).temperature_c(time_s)

    powers = {
        name: network.capacitive_node(name).power_w(time_s) for name in cap_names
    }

    air_temps: dict[str, float] = {}
    flow = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if network.air_path is not None:
            air_temps, flow = network.air_temperatures(temps, time_s)

        # Accumulate, per state node, the conductance-weighted neighbour sum.
        weighted_sum = {name: 0.0 for name in state_names}
        conductance_sum = {name: 0.0 for name in state_names}
        for edge in network.conductances:
            if edge.node_a in weighted_sum:
                weighted_sum[edge.node_a] += edge.conductance_w_per_k * temps[edge.node_b]
                conductance_sum[edge.node_a] += edge.conductance_w_per_k
            if edge.node_b in weighted_sum:
                weighted_sum[edge.node_b] += edge.conductance_w_per_k * temps[edge.node_a]
                conductance_sum[edge.node_b] += edge.conductance_w_per_k
        if network.air_path is not None:
            for segment in network.air_path.segments:
                segment_temp = air_temps[segment.name]
                for coupling in segment.couplings:
                    g = coupling.conductance_at_flow(flow)
                    weighted_sum[coupling.node_name] += g * segment_temp
                    conductance_sum[coupling.node_name] += g

        worst_update = 0.0
        for name in state_names:
            if conductance_sum[name] <= 0:
                raise SolverError(
                    f"node {name!r} has no conductance at steady state"
                )
            power = powers.get(name, 0.0)
            target = (power + weighted_sum[name]) / conductance_sum[name]
            update = relaxation * (target - temps[name])
            temps[name] += update
            worst_update = max(worst_update, abs(update))

        if worst_update < tolerance_c:
            break
    else:
        raise SolverError(
            f"steady state failed to converge within {max_iterations} sweeps "
            f"(last update {worst_update:.3g} degC)"
        )

    if network.air_path is not None:
        air_temps, flow = network.air_temperatures(temps, time_s)

    if not all(np.isfinite(list(temps.values()))):
        raise SolverError("steady state produced non-finite temperatures")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.steady_solves")
        obs.count("solver.steady_sweeps", iterations)
        obs.count("solver.path.dict")

    return SteadyStateResult(
        temperatures_c=dict(temps),
        air_temperatures_c=dict(air_temps),
        flow_m3_s=flow,
        iterations=iterations,
    )


def _steady_structure(network: ThermalNetwork) -> tuple:
    """Structural signature a steady-state batch must share."""
    air = None
    if network.air_path is not None:
        air = tuple(
            (segment.name, tuple(c.node_name for c in segment.couplings))
            for segment in network.air_path.segments
        )
    return (
        tuple(network.capacitive_names),
        tuple(network.pcm_names),
        tuple(network.boundary_names),
        tuple((e.node_a, e.node_b) for e in network.conductances),
        air,
    )


@timed("solver.steady_state_batch")
def solve_steady_state_batch(
    networks: list[ThermalNetwork],
    time_s: float = 0.0,
    tolerance_c: float = 1e-6,
    max_iterations: int = 20_000,
    relaxation: float = 0.8,
    backend: str = "auto",
) -> list[SteadyStateResult]:
    """Solve many structurally-identical networks' steady states at once.

    Every per-member arithmetic step mirrors :func:`solve_steady_state`
    exactly — the same conductance accumulations in the same order, the
    same damped update, and per-member freezing once a member converges —
    but performed elementwise across a member axis, so each member's
    result is bit-identical to a serial solve of that network alone.

    Node values (conductances, powers, wax mass, fan speed, ...) may vary
    between members; only the structure (node names, edge endpoints, air
    segments) must match, otherwise :class:`ConfigurationError` is raised
    naming the mismatching member.

    ``backend`` selects the sweep arithmetic. The default dict-of-arrays
    sweep (``"numpy"``; ``"numba"`` resolves here too — the sweep is
    elementwise, there is no matvec to JIT) keeps the bit-identity
    guarantee above. ``"sparse"`` — or ``"auto"`` on a rack-scale network
    past the thresholds in :mod:`repro.thermal.backends` — runs a
    CSR-style gather/``reduceat`` sweep instead: the same damped Jacobi
    fixed point, equivalent to ≤1e-9 but not bitwise (row sums
    reassociate).
    """
    if not networks:
        raise SolverError("steady-state batch needs at least one network")
    if not 0 < relaxation <= 1.0:
        raise SolverError(f"relaxation must be in (0, 1], got {relaxation}")
    for network in networks:
        network.validate()
    first = networks[0]
    signature = _steady_structure(first)
    for member, network in enumerate(networks[1:], start=1):
        if _steady_structure(network) != signature:
            raise ConfigurationError(
                f"batch member {member} ({network.name!r}) does not share "
                f"the structure of member 0 ({first.name!r})"
            )

    n_members = len(networks)
    cap_names = first.capacitive_names
    pcm_names = first.pcm_names
    state_names = cap_names + pcm_names

    temps: dict[str, np.ndarray] = {}
    for name in cap_names:
        temps[name] = np.array(
            [net.capacitive_node(name).initial_temperature_c for net in networks]
        )
    for name in pcm_names:
        temps[name] = np.array(
            [net.pcm_node(name).sample.temperature_c for net in networks]
        )
    for name in first.boundary_names:
        temps[name] = np.array(
            [net.boundary_node(name).temperature_c(time_s) for net in networks]
        )

    powers = {
        name: np.array(
            [net.capacitive_node(name).power_w(time_s) for net in networks]
        )
        for name in cap_names
    }

    # Time is frozen, so flows — and therefore coupling conductances — are
    # fixed for the whole solve. Evaluate them once with the same scalar
    # code path the serial solver uses.
    has_air = first.air_path is not None
    flows = np.zeros(n_members)
    capacity_rate = np.zeros(n_members)
    inlet = np.zeros(n_members)
    segment_couplings: list[tuple[str, list[tuple[str, np.ndarray]]]] = []
    if has_air:
        flows = np.array(
            [net.air_path.flow_at_time(time_s) for net in networks]
        )
        capacity_rate = AIR_VOLUMETRIC_HEAT_CAPACITY * flows
        inlet = np.array(
            [net.boundary_node("inlet").temperature_c(time_s) for net in networks]
        )
        for s, segment in enumerate(first.air_path.segments):
            per_coupling: list[tuple[str, np.ndarray]] = []
            for c, coupling in enumerate(segment.couplings):
                conductances = np.array(
                    [
                        net.air_path.segments[s]
                        .couplings[c]
                        .conductance_at_flow(float(flow))
                        for net, flow in zip(networks, flows)
                    ]
                )
                per_coupling.append((coupling.node_name, conductances))
            segment_couplings.append((segment.name, per_coupling))

    edges = [
        (
            edge.node_a,
            edge.node_b,
            np.array(
                [net.conductances[e].conductance_w_per_k for net in networks]
            ),
        )
        for e, edge in enumerate(first.conductances)
    ]

    # Structural density of the implied neighbour operator: one entry per
    # state endpoint of each edge plus one per air coupling.
    state_set = set(state_names)
    nnz = sum(
        (a in state_set) + (b in state_set) for a, b, _ in edges
    ) + sum(len(per_coupling) for _, per_coupling in segment_couplings)
    resolved = resolve_backend(
        backend, len(state_names), nnz / max(1, len(state_names)) ** 2
    )
    count_backend_selection(resolved)
    if resolved.name == "sparse":
        return _solve_steady_batch_sparse(
            networks=networks,
            state_names=state_names,
            boundary_names=list(first.boundary_names),
            temps=temps,
            powers=powers,
            has_air=has_air,
            flows=flows,
            capacity_rate=capacity_rate,
            inlet=inlet,
            segment_couplings=segment_couplings,
            edges=edges,
            tolerance_c=tolerance_c,
            max_iterations=max_iterations,
            relaxation=relaxation,
        )

    def march_air(current: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Front-to-rear quasi-steady air march, all members at once."""
        air: dict[str, np.ndarray] = {}
        upstream = inlet
        for segment_name, per_coupling in segment_couplings:
            numerator = capacity_rate * upstream
            denominator = capacity_rate.copy()
            for node_name, conductances in per_coupling:
                numerator = numerator + conductances * current[node_name]
                denominator = denominator + conductances
            mixed = numerator / denominator
            air[segment_name] = mixed
            upstream = mixed
        return air

    active = np.ones(n_members, dtype=bool)
    iterations = np.zeros(n_members, dtype=np.intp)
    worst_update = np.zeros(n_members)
    air_temps: dict[str, np.ndarray] = {}
    for sweep in range(1, max_iterations + 1):
        if has_air:
            air_temps = march_air(temps)

        weighted_sum = {name: np.zeros(n_members) for name in state_names}
        conductance_sum = {name: np.zeros(n_members) for name in state_names}
        for node_a, node_b, conductances in edges:
            if node_a in weighted_sum:
                weighted_sum[node_a] += conductances * temps[node_b]
                conductance_sum[node_a] += conductances
            if node_b in weighted_sum:
                weighted_sum[node_b] += conductances * temps[node_a]
                conductance_sum[node_b] += conductances
        if has_air:
            for segment_name, per_coupling in segment_couplings:
                segment_temp = air_temps[segment_name]
                for node_name, conductances in per_coupling:
                    weighted_sum[node_name] += conductances * segment_temp
                    conductance_sum[node_name] += conductances

        worst_update[:] = 0.0
        for name in state_names:
            if np.any(conductance_sum[name] <= 0):
                raise SolverError(
                    f"node {name!r} has no conductance at steady state"
                )
            power = powers.get(name, 0.0)
            target = (power + weighted_sum[name]) / conductance_sum[name]
            update = relaxation * (target - temps[name])
            # Converged members are frozen: their update is suppressed so
            # they stay exactly at the value a serial solve would return.
            temps[name] = temps[name] + np.where(active, update, 0.0)
            np.maximum(worst_update, np.abs(update), out=worst_update)

        iterations[active] = sweep
        active &= worst_update >= tolerance_c
        if not active.any():
            break
    if active.any():
        unconverged = ", ".join(
            f"{m} ({networks[m].name!r})" for m in np.nonzero(active)[0]
        )
        raise SolverError(
            f"steady state failed to converge within {max_iterations} sweeps "
            f"for batch members {unconverged}"
        )

    if has_air:
        air_temps = march_air(temps)

    for name in state_names:
        if not np.all(np.isfinite(temps[name])):
            raise SolverError("steady state produced non-finite temperatures")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.steady_solves", n_members)
        obs.count("solver.steady_sweeps", int(iterations.sum()))
        obs.count("solver.path.batched", n_members)

    return [
        SteadyStateResult(
            temperatures_c={
                name: float(temps[name][m]) for name in temps
            },
            air_temperatures_c={
                name: float(values[m]) for name, values in air_temps.items()
            },
            flow_m3_s=float(flows[m]),
            iterations=int(iterations[m]),
        )
        for m in range(n_members)
    ]


def _solve_steady_batch_sparse(
    networks: list[ThermalNetwork],
    state_names: list[str],
    boundary_names: list[str],
    temps: dict[str, np.ndarray],
    powers: dict[str, np.ndarray],
    has_air: bool,
    flows: np.ndarray,
    capacity_rate: np.ndarray,
    inlet: np.ndarray,
    segment_couplings: list[tuple[str, list[tuple[str, np.ndarray]]]],
    edges: list[tuple[str, str, np.ndarray]],
    tolerance_c: float,
    max_iterations: int,
    relaxation: float,
) -> list[SteadyStateResult]:
    """CSR-style sweep for rack-scale steady batches.

    Same damped Jacobi fixed point as the dict sweep, but the per-node
    neighbour accumulation becomes one gather plus a segmented
    ``np.add.reduceat`` over a flat (member, entry) table, so cost scales
    with the number of couplings instead of nodes × dict lookups. Row
    sums reassociate relative to the dict path, so results are equivalent
    to ~1e-9 rather than bitwise.
    """
    n_members = len(networks)
    n_state = len(state_names)

    columns = list(state_names) + boundary_names + [
        segment_name for segment_name, _ in segment_couplings
    ]
    col_index = {name: i for i, name in enumerate(columns)}
    temps_all = np.zeros((n_members, len(columns)))
    for name in state_names + boundary_names:
        temps_all[:, col_index[name]] = temps[name]

    # Per-state-node entry lists, in the dict sweep's accumulation order
    # (conductance edges first, then air couplings).
    row_entries: list[list[tuple[int, np.ndarray]]] = [[] for _ in state_names]
    state_pos = {name: i for i, name in enumerate(state_names)}
    for node_a, node_b, conductances in edges:
        if node_a in state_pos:
            row_entries[state_pos[node_a]].append(
                (col_index[node_b], conductances)
            )
        if node_b in state_pos:
            row_entries[state_pos[node_b]].append(
                (col_index[node_a], conductances)
            )
    for segment_name, per_coupling in segment_couplings:
        for node_name, conductances in per_coupling:
            row_entries[state_pos[node_name]].append(
                (col_index[segment_name], conductances)
            )
    for name, entries in zip(state_names, row_entries):
        if not entries:
            raise SolverError(
                f"node {name!r} has no conductance at steady state"
            )

    col_idx = np.array(
        [col for entries in row_entries for col, _ in entries], dtype=np.intp
    )
    data = np.stack(
        [g for entries in row_entries for _, g in entries], axis=1
    )
    row_ptr = np.cumsum([0] + [len(entries) for entries in row_entries])[:-1]
    conductance_sum = np.add.reduceat(data, row_ptr, axis=1)
    for i, name in enumerate(state_names):
        if np.any(conductance_sum[:, i] <= 0):
            raise SolverError(
                f"node {name!r} has no conductance at steady state"
            )
    power_rows = np.stack(
        [powers.get(name, np.zeros(n_members)) for name in state_names],
        axis=1,
    )
    segment_cols = [
        col_index[segment_name] for segment_name, _ in segment_couplings
    ]

    def march_air_columns() -> None:
        upstream = inlet
        for (_, per_coupling), segment_col in zip(
            segment_couplings, segment_cols
        ):
            numerator = capacity_rate * upstream
            denominator = capacity_rate.copy()
            for node_name, conductances in per_coupling:
                numerator = numerator + (
                    conductances * temps_all[:, col_index[node_name]]
                )
                denominator = denominator + conductances
            mixed = numerator / denominator
            temps_all[:, segment_col] = mixed
            upstream = mixed

    active = np.ones(n_members, dtype=bool)
    iterations = np.zeros(n_members, dtype=np.intp)
    state_view = temps_all[:, :n_state]
    for sweep in range(1, max_iterations + 1):
        if has_air:
            march_air_columns()
        weighted = np.add.reduceat(
            data * temps_all[:, col_idx], row_ptr, axis=1
        )
        target = (power_rows + weighted) / conductance_sum
        update = relaxation * (target - state_view)
        state_view += np.where(active[:, None], update, 0.0)
        worst_update = np.abs(update).max(axis=1)
        iterations[active] = sweep
        active &= worst_update >= tolerance_c
        if not active.any():
            break
    else:
        unconverged = ", ".join(
            f"{m} ({networks[m].name!r})" for m in np.nonzero(active)[0]
        )
        raise SolverError(
            f"steady state failed to converge within {max_iterations} sweeps "
            f"for batch members {unconverged}"
        )

    if has_air:
        march_air_columns()

    if not np.all(np.isfinite(state_view)):
        raise SolverError("steady state produced non-finite temperatures")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.steady_solves", n_members)
        obs.count("solver.steady_sweeps", int(iterations.sum()))
        obs.count("solver.path.sparse", n_members)

    return [
        SteadyStateResult(
            temperatures_c={
                name: float(temps_all[m, col_index[name]])
                for name in state_names + boundary_names
            },
            air_temperatures_c={
                segment_name: float(temps_all[m, segment_col])
                for (segment_name, _), segment_col in zip(
                    segment_couplings, segment_cols
                )
            },
            flow_m3_s=float(flows[m]),
            iterations=int(iterations[m]),
        )
        for m in range(n_members)
    ]
