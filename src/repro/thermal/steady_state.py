"""Steady-state solution of a chassis thermal network.

Used for the paper's Figure 7 experiments (temperatures after 12 h at
constant load, as a function of airflow blockage) and for the steady-state
columns of the Figure 4 validation. Rather than integrating to equilibrium,
the solver damps a fixed-point iteration on the energy balance:

    T_i = (P_i + sum_j G_ij * T_j) / sum_j G_ij

with the quasi-steady segment air temperatures recomputed each sweep. PCM
nodes at steady state carry no latent flux, so they behave as ordinary
temperature nodes (their steady temperature determines whether the wax
ends the period molten, frozen, or pinned inside the melting interval —
pinning cannot persist at a true steady state unless the node temperature
equals the mushy-zone temperature exactly, so the fixed point treats them
as sensible nodes and reports the implied phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.obs import get_registry, timed
from repro.thermal.network import ThermalNetwork


@dataclass
class SteadyStateResult:
    """Converged steady-state operating point of a network."""

    temperatures_c: dict[str, float]
    air_temperatures_c: dict[str, float]
    flow_m3_s: float
    iterations: int

    def outlet_temperature_c(self) -> float:
        """Temperature of the last (rear-most) air segment."""
        if not self.air_temperatures_c:
            raise KeyError("network has no air path")
        return list(self.air_temperatures_c.values())[-1]


@timed("solver.steady_state")
def solve_steady_state(
    network: ThermalNetwork,
    time_s: float = 0.0,
    tolerance_c: float = 1e-6,
    max_iterations: int = 20_000,
    relaxation: float = 0.8,
) -> SteadyStateResult:
    """Solve for the network's steady temperatures at a frozen time.

    Power schedules, boundary temperatures, and fan speeds are evaluated at
    ``time_s`` and held constant.

    Parameters
    ----------
    tolerance_c:
        Convergence criterion on the largest temperature update per sweep.
    relaxation:
        Under-relaxation factor in (0, 1]; 1.0 is plain Gauss-Seidel-style
        fixed point, smaller is more robust for strongly-coupled networks.
    """
    network.validate()
    if not 0 < relaxation <= 1.0:
        raise SolverError(f"relaxation must be in (0, 1], got {relaxation}")

    cap_names = network.capacitive_names
    pcm_names = network.pcm_names
    state_names = cap_names + pcm_names

    temps: dict[str, float] = {}
    for name in cap_names:
        temps[name] = network.capacitive_node(name).initial_temperature_c
    for name in pcm_names:
        temps[name] = network.pcm_node(name).sample.temperature_c
    for name in network.boundary_names:
        temps[name] = network.boundary_node(name).temperature_c(time_s)

    powers = {
        name: network.capacitive_node(name).power_w(time_s) for name in cap_names
    }

    air_temps: dict[str, float] = {}
    flow = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if network.air_path is not None:
            air_temps, flow = network.air_temperatures(temps, time_s)

        # Accumulate, per state node, the conductance-weighted neighbour sum.
        weighted_sum = {name: 0.0 for name in state_names}
        conductance_sum = {name: 0.0 for name in state_names}
        for edge in network.conductances:
            if edge.node_a in weighted_sum:
                weighted_sum[edge.node_a] += edge.conductance_w_per_k * temps[edge.node_b]
                conductance_sum[edge.node_a] += edge.conductance_w_per_k
            if edge.node_b in weighted_sum:
                weighted_sum[edge.node_b] += edge.conductance_w_per_k * temps[edge.node_a]
                conductance_sum[edge.node_b] += edge.conductance_w_per_k
        if network.air_path is not None:
            for segment in network.air_path.segments:
                segment_temp = air_temps[segment.name]
                for coupling in segment.couplings:
                    g = coupling.conductance_at_flow(flow)
                    weighted_sum[coupling.node_name] += g * segment_temp
                    conductance_sum[coupling.node_name] += g

        worst_update = 0.0
        for name in state_names:
            if conductance_sum[name] <= 0:
                raise SolverError(
                    f"node {name!r} has no conductance at steady state"
                )
            power = powers.get(name, 0.0)
            target = (power + weighted_sum[name]) / conductance_sum[name]
            update = relaxation * (target - temps[name])
            temps[name] += update
            worst_update = max(worst_update, abs(update))

        if worst_update < tolerance_c:
            break
    else:
        raise SolverError(
            f"steady state failed to converge within {max_iterations} sweeps "
            f"(last update {worst_update:.3g} degC)"
        )

    if network.air_path is not None:
        air_temps, flow = network.air_temperatures(temps, time_s)

    if not all(np.isfinite(list(temps.values()))):
        raise SolverError("steady state produced non-finite temperatures")

    obs = get_registry()
    if obs.enabled:
        obs.count("solver.steady_solves")
        obs.count("solver.steady_sweeps", iterations)
        obs.count("solver.path.dict")

    return SteadyStateResult(
        temperatures_c=dict(temps),
        air_temperatures_c=dict(air_temps),
        flow_m3_s=flow,
        iterations=iterations,
    )
