"""Flow-dependent convective conductances.

Forced-convection heat transfer coefficients in turbulent internal flow
scale roughly with the 0.8 power of velocity (Dittus-Boelter / Colburn
correlations). Rather than resolving boundary layers, each component is
given a *reference* conductance at a *reference* flow — obtainable from
vendor heat-sink data or one calibration run — and the solver rescales it
with the instantaneous operating flow:

    G(Q) = G_ref * (Q / Q_ref)^n        (n ~= 0.8)

A configurable floor models the natural-convection/radiation path that
remains when forced flow collapses (e.g. heavy blockage), preventing the
unphysical conclusion that a blocked server exchanges no heat at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Default velocity exponent for turbulent forced convection.
DEFAULT_FLOW_EXPONENT = 0.8

#: Default fraction of the reference conductance retained at zero flow.
DEFAULT_STAGNANT_FRACTION = 0.05


def flow_scaled_conductance(
    reference_conductance_w_per_k: float,
    flow_m3_s: float,
    reference_flow_m3_s: float,
    exponent: float = DEFAULT_FLOW_EXPONENT,
    stagnant_fraction: float = DEFAULT_STAGNANT_FRACTION,
) -> float:
    """Convective conductance at an operating flow.

    Clamps to a stagnant floor so conductance stays positive as flow goes to
    zero.
    """
    if reference_conductance_w_per_k <= 0:
        raise ConfigurationError(
            f"reference conductance must be positive, got "
            f"{reference_conductance_w_per_k}"
        )
    if reference_flow_m3_s <= 0:
        raise ConfigurationError(
            f"reference flow must be positive, got {reference_flow_m3_s}"
        )
    if flow_m3_s < 0:
        raise ConfigurationError(f"flow must be non-negative, got {flow_m3_s}")
    if not 0.0 <= stagnant_fraction <= 1.0:
        raise ConfigurationError(
            f"stagnant fraction must be in [0, 1], got {stagnant_fraction}"
        )
    scaled = reference_conductance_w_per_k * (
        (flow_m3_s / reference_flow_m3_s) ** exponent
    )
    floor = stagnant_fraction * reference_conductance_w_per_k
    return max(scaled, floor)


@dataclass(frozen=True)
class ConvectiveCoupling:
    """Convective link between a thermal node and an air stream segment.

    Parameters
    ----------
    node_name:
        Name of the thermal network node exchanging heat with the segment.
    reference_conductance_w_per_k:
        Conductance (h * A) at the reference flow.
    reference_flow_m3_s:
        Flow at which the reference conductance was characterized.
    exponent:
        Velocity exponent (0.8 for turbulent channels; lower for laminar).
    stagnant_fraction:
        Conductance floor as a fraction of the reference value.
    """

    node_name: str
    reference_conductance_w_per_k: float
    reference_flow_m3_s: float
    exponent: float = DEFAULT_FLOW_EXPONENT
    stagnant_fraction: float = DEFAULT_STAGNANT_FRACTION

    def __post_init__(self) -> None:
        # Delegate range validation to the function by evaluating once at
        # the reference point.
        flow_scaled_conductance(
            self.reference_conductance_w_per_k,
            self.reference_flow_m3_s,
            self.reference_flow_m3_s,
            self.exponent,
            self.stagnant_fraction,
        )

    def conductance_at_flow(self, flow_m3_s: float) -> float:
        """Conductance (W/K) at an operating flow."""
        return flow_scaled_conductance(
            self.reference_conductance_w_per_k,
            flow_m3_s,
            self.reference_flow_m3_s,
            self.exponent,
            self.stagnant_fraction,
        )
