"""Quasi-steady airflow network: fans, impedance, blockage, stream segments.

The paper's Icepak models resolve airflow through each chassis and show how
wax containers (and, in controlled experiments, uniform grilles) block that
flow and raise temperatures (Figure 7). We reproduce the same behaviour with
the classic fan-curve / system-impedance construction:

* each fan follows a quadratic fan curve
  ``dP = dP_max * (1 - (q / q_max)^2)``;
* the chassis presents a quadratic system impedance ``dP = k * Q^2``;
* blockage with free-area ratio ``f`` adds an orifice term
  ``k_blockage = rho / (2 * (Cd * A * f)^2)``;
* the operating flow is the intersection of the two curves (closed form).

Air is then advected front-to-rear through an ordered list of
:class:`AirSegment` stream segments. Air heat capacity is negligible next
to the metal and wax, so each segment's well-mixed temperature is computed
algebraically from an energy balance at every solver step (quasi-steady
treatment) rather than integrated as a state variable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.thermal.convection import ConvectiveCoupling
from repro.units import AIR_DENSITY


@dataclass(frozen=True)
class FanCurve:
    """Quadratic pressure-flow characteristic of a single fan.

    Parameters
    ----------
    max_pressure_pa:
        Shut-off (zero-flow) static pressure, Pa.
    max_flow_m3_s:
        Free-delivery (zero-pressure) volumetric flow, m^3/s.
    """

    max_pressure_pa: float
    max_flow_m3_s: float

    def __post_init__(self) -> None:
        if self.max_pressure_pa <= 0:
            raise ConfigurationError(
                f"fan shut-off pressure must be positive, got {self.max_pressure_pa}"
            )
        if self.max_flow_m3_s <= 0:
            raise ConfigurationError(
                f"fan free-delivery flow must be positive, got {self.max_flow_m3_s}"
            )

    def pressure_at_flow(self, flow_m3_s: float, speed_fraction: float = 1.0) -> float:
        """Static pressure developed at a given flow and speed fraction.

        Fan affinity laws: flow scales with speed, pressure with speed^2.
        Flows beyond free delivery return negative pressure (the fan acts as
        a restriction), which the operating-point solver never selects.
        """
        if speed_fraction <= 0:
            raise ConfigurationError(
                f"fan speed fraction must be positive, got {speed_fraction}"
            )
        scaled_max_flow = self.max_flow_m3_s * speed_fraction
        scaled_max_pressure = self.max_pressure_pa * speed_fraction**2
        return scaled_max_pressure * (1.0 - (flow_m3_s / scaled_max_flow) ** 2)


@dataclass(frozen=True)
class FanBank:
    """A set of identical fans operating in parallel.

    Parallel fans each see the full system pressure and contribute equal
    shares of the total flow.
    """

    curve: FanCurve
    count: int
    power_per_fan_w: float = 0.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(f"fan count must be positive, got {self.count}")
        if self.power_per_fan_w < 0:
            raise ConfigurationError("fan power must be non-negative")

    @property
    def total_power_w(self) -> float:
        """Aggregate electrical power of the bank at full speed."""
        return self.count * self.power_per_fan_w

    def max_flow_m3_s(self, speed_fraction: float = 1.0) -> float:
        """Aggregate free-delivery flow of the bank."""
        return self.count * self.curve.max_flow_m3_s * speed_fraction

    def pressure_at_flow(self, total_flow_m3_s: float, speed_fraction: float = 1.0) -> float:
        """Pressure developed when the bank moves a total flow."""
        per_fan_flow = total_flow_m3_s / self.count
        return self.curve.pressure_at_flow(per_fan_flow, speed_fraction)

    def with_failed_fans(self, failed: int) -> "FanBank":
        """The bank with ``failed`` fans seized (used by fault injection).

        A seized rotor in a parallel bank is treated as removed: the
        survivors each still see the full system pressure, so the bank
        is simply smaller. At least one fan must survive — a chassis
        with zero moving fans has no forced-convection operating point.
        """
        if failed < 0:
            raise ConfigurationError(
                f"failed fan count must be non-negative, got {failed}"
            )
        if failed >= self.count:
            raise ConfigurationError(
                f"cannot fail {failed} of {self.count} fans: at least one "
                "fan must survive"
            )
        if failed == 0:
            return self
        return FanBank(
            curve=self.curve,
            count=self.count - failed,
            power_per_fan_w=self.power_per_fan_w,
        )


@dataclass(frozen=True)
class SystemImpedance:
    """Quadratic chassis flow resistance ``dP = k * Q^2``.

    ``coefficient_pa_s2_per_m6`` is the base (unblocked) chassis impedance;
    additional blockage terms are summed on top of it.
    """

    coefficient_pa_s2_per_m6: float

    def __post_init__(self) -> None:
        if self.coefficient_pa_s2_per_m6 < 0:
            raise ConfigurationError(
                f"impedance coefficient must be non-negative, got "
                f"{self.coefficient_pa_s2_per_m6}"
            )

    def pressure_drop(self, flow_m3_s: float) -> float:
        """Pressure drop across the chassis at a flow."""
        return self.coefficient_pa_s2_per_m6 * flow_m3_s**2

    def with_added(self, extra_coefficient: float) -> "SystemImpedance":
        """Impedance with an additional series restriction."""
        if extra_coefficient < 0:
            raise ConfigurationError("added impedance must be non-negative")
        return SystemImpedance(self.coefficient_pa_s2_per_m6 + extra_coefficient)


def blockage_impedance_coefficient(
    free_area_m2: float,
    blocked_fraction: float,
    discharge_coefficient: float = 0.62,
) -> float:
    """Orifice impedance added by blocking a fraction of a flow cross-section.

    A grille or a row of wax boxes that blocks fraction ``b`` of a duct of
    cross-section ``A`` leaves an orifice of area ``A * (1 - b)``. The
    incompressible orifice equation gives
    ``dP = rho / 2 * (Q / (Cd * A * (1 - b)))^2``, i.e. a quadratic
    impedance coefficient ``rho / (2 * (Cd * A * (1-b))^2)``.

    To model only the *added* restriction (an unblocked duct already carries
    the base chassis impedance), the coefficient of the empty cross-section
    is subtracted, so ``blocked_fraction = 0`` adds exactly zero.
    """
    if free_area_m2 <= 0:
        raise ConfigurationError(f"duct area must be positive, got {free_area_m2}")
    if not 0.0 <= blocked_fraction < 1.0:
        raise ConfigurationError(
            f"blocked fraction must be in [0, 1), got {blocked_fraction}"
        )
    if not 0.0 < discharge_coefficient <= 1.0:
        raise ConfigurationError(
            f"discharge coefficient must be in (0, 1], got {discharge_coefficient}"
        )

    def orifice_k(open_area: float) -> float:
        return AIR_DENSITY / (2.0 * (discharge_coefficient * open_area) ** 2)

    open_area = free_area_m2 * (1.0 - blocked_fraction)
    return orifice_k(open_area) - orifice_k(free_area_m2)


def operating_flow(
    fans: FanBank,
    impedance: SystemImpedance,
    speed_fraction: float = 1.0,
) -> float:
    """Operating volumetric flow: intersection of fan curve and impedance.

    With a quadratic fan curve and a quadratic impedance the intersection
    has the closed form
    ``Q = sqrt(P_max / (k + P_max / Q_free^2))``
    where ``P_max`` and ``Q_free`` are the bank's speed-scaled shut-off
    pressure and free-delivery flow.
    """
    if speed_fraction <= 0:
        raise ConfigurationError(
            f"fan speed fraction must be positive, got {speed_fraction}"
        )
    max_pressure = fans.curve.max_pressure_pa * speed_fraction**2
    free_flow = fans.max_flow_m3_s(speed_fraction)
    k = impedance.coefficient_pa_s2_per_m6
    return math.sqrt(max_pressure / (k + max_pressure / free_flow**2))


def degraded_flow_fraction(
    fans: FanBank,
    impedance: SystemImpedance,
    failed_fans: int = 0,
    speed_fraction: float = 1.0,
) -> float:
    """Fraction of healthy full-speed flow a degraded bank still moves.

    The physical anchor for the fault injector's fan-derate magnitude:
    fail ``failed_fans`` rotors and/or slow the survivors to
    ``speed_fraction``, re-intersect the (smaller, slower) bank with the
    unchanged chassis impedance, and compare against the healthy
    operating point. Always in ``(0, 1]``; exactly 1.0 when nothing is
    degraded.
    """
    healthy = operating_flow(fans, impedance, 1.0)
    degraded = operating_flow(
        fans.with_failed_fans(failed_fans), impedance, speed_fraction
    )
    return degraded / healthy


@dataclass
class AirSegment:
    """A well-mixed stream segment of the front-to-rear air path.

    Components thermally coupled to the segment exchange heat with its
    well-mixed air temperature through flow-dependent convective
    conductances. Segments are traversed in order; each segment's outlet
    feeds the next segment's inlet.
    """

    name: str
    couplings: list[ConvectiveCoupling] = field(default_factory=list)

    def couple(self, coupling: ConvectiveCoupling) -> None:
        """Attach a component coupling to this segment."""
        if any(c.node_name == coupling.node_name for c in self.couplings):
            raise ConfigurationError(
                f"segment {self.name!r} already couples node "
                f"{coupling.node_name!r}"
            )
        self.couplings.append(coupling)

    def mixed_temperature(
        self,
        inlet_temperature_c: float,
        node_temperatures: dict[str, float],
        flow_m3_s: float,
        capacity_rate_w_per_k: float,
    ) -> float:
        """Well-mixed segment air temperature from a quasi-steady balance.

        Energy balance with the segment fully mixed at temperature ``T_a``::

            m_dot * cp * (T_a - T_in) = sum_i G_i(Q) * (T_i - T_a)

        which solves to a conductance-weighted mean of the inlet air and the
        coupled component temperatures.
        """
        numerator = capacity_rate_w_per_k * inlet_temperature_c
        denominator = capacity_rate_w_per_k
        for coupling in self.couplings:
            conductance = coupling.conductance_at_flow(flow_m3_s)
            numerator += conductance * node_temperatures[coupling.node_name]
            denominator += conductance
        return numerator / denominator


@dataclass
class AirPath:
    """The complete front-to-rear airflow system of a chassis.

    Combines a fan bank, a base chassis impedance plus any added blockage,
    and the ordered stream segments. ``fan_speed_schedule`` maps simulation
    time to a speed fraction, modeling the idle/loaded fan step the paper
    uses ("fans are modeled as a time-based step function between the idle
    and loaded speeds").
    """

    fans: FanBank
    base_impedance: SystemImpedance
    segments: list[AirSegment]
    duct_area_m2: float
    added_blockage_fraction: float = 0.0
    fan_speed_schedule: Callable[[float], float] | None = None
    #: Memo of the last (speed fraction, operating flow) pair; the fan
    #: schedule is piecewise constant, so the solver's per-step flow
    #: lookups almost always hit. Instance-local; ``with_blockage`` copies
    #: start with a cold cache.
    _flow_cache: tuple[float, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _impedance_cache: SystemImpedance | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("an air path needs at least one segment")
        if self.duct_area_m2 <= 0:
            raise ConfigurationError(
                f"duct area must be positive, got {self.duct_area_m2}"
            )
        if not 0.0 <= self.added_blockage_fraction < 1.0:
            raise ConfigurationError(
                "blockage fraction must be in [0, 1), got "
                f"{self.added_blockage_fraction}"
            )
        names = [segment.name for segment in self.segments]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate segment names: {names}")

    def segment(self, name: str) -> AirSegment:
        """Look up a stream segment by name."""
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise ConfigurationError(f"no air segment named {name!r}")

    def total_impedance(self) -> SystemImpedance:
        """Base impedance plus the configured blockage restriction.

        Both terms are fixed per path instance, so the composition is
        computed once and reused.
        """
        if self._impedance_cache is None:
            if self.added_blockage_fraction == 0.0:
                self._impedance_cache = self.base_impedance
            else:
                extra = blockage_impedance_coefficient(
                    self.duct_area_m2, self.added_blockage_fraction
                )
                self._impedance_cache = self.base_impedance.with_added(extra)
        return self._impedance_cache

    def speed_fraction(self, time_s: float) -> float:
        """Fan speed fraction at a simulation time (default: full speed)."""
        if self.fan_speed_schedule is None:
            return 1.0
        return self.fan_speed_schedule(time_s)

    def flow_at_time(self, time_s: float) -> float:
        """Operating volumetric flow at a simulation time."""
        speed = self.speed_fraction(time_s)
        cached = self._flow_cache
        if cached is not None and cached[0] == speed:
            return cached[1]
        flow = operating_flow(self.fans, self.total_impedance(), speed)
        self._flow_cache = (speed, flow)
        return flow

    def with_blockage(self, blocked_fraction: float) -> "AirPath":
        """Copy of this path with a different added blockage fraction.

        Segment objects are shared (couplings are configuration, not state),
        matching the paper's grille experiments which change only the
        restriction.
        """
        return AirPath(
            fans=self.fans,
            base_impedance=self.base_impedance,
            segments=self.segments,
            duct_area_m2=self.duct_area_m2,
            added_blockage_fraction=blocked_fraction,
            fan_speed_schedule=self.fan_speed_schedule,
        )
