"""Pluggable compute backends for the compiled thermal solver.

The compiled solver reduces every right-hand-side evaluation to one
affine operator application, ``derivative = K @ temperatures + c`` (see
``docs/SOLVER.md``). This module owns *how* that application is
computed, behind a small :class:`SolverBackend` interface, mirroring how
``engine="reference"`` anchors :mod:`repro.dcsim.event_engine` one layer
up:

* :class:`NumpyBackend` — the reference implementation: the dense
  ``ndarray`` matvec the solver has always used. Every other backend is
  tested for equivalence against it.
* :class:`SparseBackend` — SciPy CSR operators. A rack-scale conduction
  network has a few nonzeros per row, so past a size/density threshold
  the dense matvec wastes almost all of its work; ``backend="auto"``
  switches here automatically (see :data:`SPARSE_AUTO_MIN_STATE`).
* :class:`NumbaBackend` — an optional JIT-compiled dense kernel.
  Requires the ``compiled`` extra (``pip install 'repro[compiled]'``);
  never chosen by ``auto`` because a JIT matvec reassociates floating
  point relative to BLAS, and auto-selection must leave the golden
  figure fingerprints machine-independent. If Numba imports but fails
  to compile at warm-up, the backend degrades to the NumPy arithmetic
  and counts ``solver.backend.numba_fallbacks`` instead of raising.

Selection is validated up front: public entry points accept
``backend="auto"|"numpy"|"numba"|"sparse"`` and raise
:class:`~repro.errors.ConfigurationError` on anything else, or on an
explicit request for a backend whose import is unavailable. Every
resolution is counted under ``solver.backend.<name>`` so bench reports
show which path actually ran.
"""

from __future__ import annotations

import importlib.util
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_registry

#: The accepted values of every ``backend=`` knob.
BACKEND_NAMES = ("auto", "numpy", "numba", "sparse")

#: ``auto`` considers the sparse backend only at or above this many
#: state nodes. Below it the dense matvec fits in cache and CSR indexing
#: overhead dominates; the 1U/2U/OCP chassis networks (tens of nodes)
#: always stay dense, which keeps the golden fingerprints byte-identical
#: under ``auto``.
SPARSE_AUTO_MIN_STATE = 512

#: ``auto`` requires the structural operator density (nonzeros / n^2) to
#: sit at or below this fraction before switching to CSR. Air-mixing
#: chains fill operator rows with every upstream coupling, so an
#: air-heavy network can be large yet effectively dense.
SPARSE_AUTO_MAX_DENSITY = 0.05

#: Hint appended to unavailable-backend errors.
_INSTALL_HINT = "install the compiled extra: pip install 'repro[compiled]'"


def validate_backend_choice(
    backend: str, allowed: tuple[str, ...] = BACKEND_NAMES
) -> str:
    """Validate a ``backend=`` knob value, returning it unchanged."""
    if backend not in allowed:
        raise ConfigurationError(
            f"backend must be one of {list(allowed)}, got {backend!r}"
        )
    return backend


class SolverBackend:
    """How the solver applies its affine operator ``K @ temps + c``.

    A backend owns two representations: a single operator (one network,
    shape ``(n, n)``) and a stacked batch of member operators (shape
    ``(N, n, n)``). ``prepare*`` converts a freshly built dense operator
    into the backend's native form once per (flow) cache entry;
    ``apply*`` is the hot path, called four times per RK4 step.
    """

    #: Name used in ``backend=`` knobs and ``solver.backend.*`` counters.
    name = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's dependencies import on this machine."""
        return True

    def prepare(self, matrix: np.ndarray) -> object:
        """Convert a dense operator into this backend's native handle."""
        return matrix

    def apply(
        self, operator: object, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        """``operator @ temps + constants`` for one network."""
        raise NotImplementedError

    def prepare_batch(self, operators: np.ndarray) -> object:
        """Convert stacked dense member operators ``(N, n, n)``."""
        return operators

    def apply_batch(
        self, operators: object, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        """Stacked application for all members; shapes ``(N, n)``."""
        raise NotImplementedError


class NumpyBackend(SolverBackend):
    """The dense reference backend (plain ``ndarray`` matvec)."""

    name = "numpy"

    def apply(
        self, operator: np.ndarray, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        derivative = operator @ temps
        derivative += constants
        return derivative

    def apply_batch(
        self, operators: np.ndarray, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        derivative = np.einsum("nij,nj->ni", operators, temps)
        derivative += constants
        return derivative


class SparseBackend(SolverBackend):
    """SciPy CSR operators for large, sparse conduction networks.

    Equivalent to the NumPy oracle to floating-point reassociation (a
    few ULPs — CSR sums each row in column order, BLAS blocks and
    pairs); deterministic run to run.
    """

    name = "sparse"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("scipy") is not None

    def prepare(self, matrix: np.ndarray) -> object:
        from scipy.sparse import csr_matrix

        return csr_matrix(matrix)

    def apply(
        self, operator: object, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        derivative = operator @ temps
        derivative += constants
        return derivative

    def prepare_batch(self, operators: np.ndarray) -> object:
        from scipy.sparse import csr_matrix

        return [csr_matrix(member) for member in operators]

    def apply_batch(
        self, operators: list, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        derivative = np.empty_like(temps)
        for member, operator in enumerate(operators):
            derivative[member] = operator @ temps[member]
        derivative += constants
        return derivative


class NumbaBackend(SolverBackend):
    """Optional Numba-JIT dense kernel (``pip install 'repro[compiled]'``).

    The matvec-plus-add is compiled once per process and warmed up once
    per network *structure* (state size), so sweeps over many same-shape
    networks pay the JIT cost a single time. Any Numba failure after a
    successful import — a compile error, an unsupported platform —
    degrades permanently to the NumPy arithmetic and counts
    ``solver.backend.numba_fallbacks``.
    """

    name = "numba"

    #: Compiled (single, batch) kernels, shared process-wide.
    _kernels: tuple[Callable, Callable] | None = None
    #: State sizes already warmed up (one JIT specialization serves all
    #: shapes, but the first call per structure pays dispatch + compile).
    _warmed: set[int] = set()
    #: Set after a post-import Numba failure; apply() then uses NumPy.
    _degraded = False

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    @classmethod
    def _compiled_kernels(cls) -> tuple[Callable, Callable] | None:
        if cls._degraded:
            return None
        if cls._kernels is None:
            try:
                import numba

                @numba.njit(cache=False, fastmath=False)
                def matvec_add(operator, temps, constants):
                    n = operator.shape[0]
                    out = np.empty(n)
                    for i in range(n):
                        acc = constants[i]
                        row = operator[i]
                        for j in range(n):
                            acc += row[j] * temps[j]
                        out[i] = acc
                    return out

                @numba.njit(cache=False, fastmath=False)
                def batch_matvec_add(operators, temps, constants):
                    members, n = temps.shape
                    out = np.empty((members, n))
                    for m in range(members):
                        for i in range(n):
                            acc = constants[m, i]
                            row = operators[m, i]
                            for j in range(n):
                                acc += row[j] * temps[m, j]
                            out[m, i] = acc
                    return out

                cls._kernels = (matvec_add, batch_matvec_add)
            except Exception:  # noqa: BLE001 - any JIT failure -> NumPy
                cls._degraded = True
                get_registry().count("solver.backend.numba_fallbacks")
                return None
        return cls._kernels

    def warm_up(self, n_state: int) -> None:
        """Trigger JIT compilation once per network structure size."""
        if n_state in self._warmed:
            return
        kernels = self._compiled_kernels()
        if kernels is None:
            return
        matvec_add, batch_matvec_add = kernels
        try:
            zeros = np.zeros(n_state)
            matvec_add(np.zeros((n_state, n_state)), zeros, zeros)
            batch_matvec_add(
                np.zeros((1, n_state, n_state)),
                np.zeros((1, n_state)),
                np.zeros((1, n_state)),
            )
        except Exception:  # noqa: BLE001 - compile failure -> NumPy
            type(self)._degraded = True
            get_registry().count("solver.backend.numba_fallbacks")
            return
        type(self)._warmed.add(n_state)
        get_registry().count("solver.backend.numba_warmups")

    def prepare(self, matrix: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(matrix)

    def apply(
        self, operator: np.ndarray, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        kernels = self._compiled_kernels()
        if kernels is None:
            derivative = operator @ temps
            derivative += constants
            return derivative
        return kernels[0](operator, temps, constants)

    def prepare_batch(self, operators: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(operators)

    def apply_batch(
        self, operators: np.ndarray, temps: np.ndarray, constants: np.ndarray
    ) -> np.ndarray:
        kernels = self._compiled_kernels()
        if kernels is None:
            derivative = np.einsum("nij,nj->ni", operators, temps)
            derivative += constants
            return derivative
        return kernels[1](
            operators, np.ascontiguousarray(temps), np.ascontiguousarray(constants)
        )


#: Backend classes by knob name ("auto" resolves to one of these).
BACKEND_CLASSES: dict[str, type[SolverBackend]] = {
    NumpyBackend.name: NumpyBackend,
    SparseBackend.name: SparseBackend,
    NumbaBackend.name: NumbaBackend,
}


def available_backends() -> list[str]:
    """Concrete backend names importable on this machine, in knob order."""
    return [
        name
        for name in ("numpy", "numba", "sparse")
        if BACKEND_CLASSES[name].is_available()
    ]


def resolve_backend(
    backend: str,
    n_state: int,
    density: float | Callable[[], float] = 1.0,
) -> SolverBackend:
    """Resolve a validated knob value to a backend instance.

    ``density`` is the structural density of the compiled operator
    (nonzeros over ``n_state**2``); pass a callable to defer the count —
    ``auto`` only evaluates it once ``n_state`` clears
    :data:`SPARSE_AUTO_MIN_STATE`, so small networks never pay for it.

    Explicitly requesting an unavailable backend raises
    :class:`ConfigurationError` naming the install extra; ``auto`` never
    raises — it falls back to NumPy whenever the sparse criteria are not
    met.
    """
    validate_backend_choice(backend)
    if backend == "auto":
        if n_state >= SPARSE_AUTO_MIN_STATE and SparseBackend.is_available():
            measured = density() if callable(density) else density
            if measured <= SPARSE_AUTO_MAX_DENSITY:
                return SparseBackend()
        return NumpyBackend()
    cls = BACKEND_CLASSES[backend]
    if not cls.is_available():
        raise ConfigurationError(
            f"solver backend {backend!r} is not available on this machine "
            f"({_INSTALL_HINT}), or use backend='auto' for the NumPy "
            f"fallback"
        )
    return cls()


def count_backend_selection(backend: SolverBackend) -> None:
    """Record which backend a public solve actually ran on."""
    obs = get_registry()
    if obs.enabled:
        obs.count(f"solver.backend.{backend.name}")


# -- elementwise JIT helper ---------------------------------------------------

#: JIT-compiled elementwise kernels by cache key (see :func:`jit_compile`).
_JIT_CACHE: dict[str, Callable] = {}


def jit_compile(fn: Callable, key: str) -> tuple[Callable, bool]:
    """Numba-compile an elementwise array kernel, or return it unchanged.

    Used by code whose hot loop is elementwise rather than a matvec
    (:class:`~repro.dcsim.thermal_coupling.BatchedClusterThermalState`).
    Returns ``(kernel, jitted)``: when Numba is unavailable or fails to
    compile ``fn``, the original function comes back with ``jitted``
    False and ``solver.backend.numba_fallbacks`` incremented — callers
    keep identical behaviour either way.
    """
    if key in _JIT_CACHE:
        return _JIT_CACHE[key], True
    if not NumbaBackend.is_available():
        return fn, False
    try:
        import numba

        compiled = numba.njit(cache=False, fastmath=False)(fn)
    except Exception:  # noqa: BLE001 - any JIT failure -> plain function
        get_registry().count("solver.backend.numba_fallbacks")
        return fn, False
    _JIT_CACHE[key] = compiled
    return compiled, True
