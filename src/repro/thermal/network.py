"""Lumped thermal-RC network of a server chassis.

Nodes
-----
* :class:`CapacitiveNode` — a solid component with heat capacity and an
  optional time-varying power dissipation (CPU package, DIMM, drive, PSU).
* :class:`BoundaryNode` — a fixed- or scheduled-temperature boundary (the
  cold-aisle inlet air, the chassis skin to ambient).
* :class:`PCMNode` — a wax container integrated by the enthalpy method; its
  state variable is total enthalpy rather than temperature.

Edges
-----
* :class:`Conductance` — a constant conductive link between two nodes
  (heat-sink joint, board spreading, container wall).
* Convective links to the air are *not* edges of this graph: they live on
  the :class:`~repro.thermal.airflow.AirSegment` objects of the chassis
  :class:`~repro.thermal.airflow.AirPath` because their conductance depends
  on the operating flow and their far side (segment air temperature) is
  algebraic, not a state.

The network assembles the packed ODE state vector
``y = [T_1..T_n, H_1..H_m]`` (capacitive temperatures then PCM enthalpies)
and evaluates its right-hand side; integration lives in
:mod:`repro.thermal.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, NetworkError
from repro.materials.pcm import PCMSample
from repro.thermal.airflow import AirPath
from repro.units import AIR_VOLUMETRIC_HEAT_CAPACITY

PowerFunction = Callable[[float], float]
TemperatureFunction = Callable[[float], float]


def _as_time_function(value: float | Callable[[float], float]) -> Callable[[float], float]:
    """Wrap a constant as a function of time; pass callables through.

    The wrapper is tagged with ``constant_value`` so the compiled solver
    can hoist it out of the right-hand side entirely (see
    :func:`constant_value_of`).
    """
    if callable(value):
        return value
    constant = float(value)

    def constant_function(_time: float) -> float:
        return constant

    constant_function.constant_value = constant
    return constant_function


def constant_value_of(func: Callable[[float], float]) -> float | None:
    """The constant a time function always returns, or ``None``.

    Only functions created by :func:`_as_time_function` from a plain
    number carry the tag; arbitrary callables are (soundly) treated as
    time-varying.
    """
    return getattr(func, "constant_value", None)


@dataclass
class CapacitiveNode:
    """A solid node with thermal mass and optional power dissipation."""

    name: str
    heat_capacity_j_per_k: float
    initial_temperature_c: float
    power_w: PowerFunction

    def __post_init__(self) -> None:
        if self.heat_capacity_j_per_k <= 0:
            raise ConfigurationError(
                f"node {self.name!r}: heat capacity must be positive, got "
                f"{self.heat_capacity_j_per_k}"
            )


@dataclass
class BoundaryNode:
    """A node held at a prescribed (possibly time-varying) temperature."""

    name: str
    temperature_c: TemperatureFunction


@dataclass
class PCMNode:
    """A wax container node carrying a :class:`PCMSample` enthalpy state."""

    name: str
    sample: PCMSample


@dataclass(frozen=True)
class Conductance:
    """A constant conductive link between two named nodes."""

    node_a: str
    node_b: str
    conductance_w_per_k: float

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ConfigurationError(
                f"conductance endpoints must differ, got {self.node_a!r} twice"
            )
        if self.conductance_w_per_k <= 0:
            raise ConfigurationError(
                f"conductance {self.node_a!r}-{self.node_b!r} must be "
                f"positive, got {self.conductance_w_per_k}"
            )


@dataclass
class NetworkState:
    """Unpacked view of the ODE state at one instant."""

    temperatures_c: dict[str, float]
    pcm_enthalpies_j: dict[str, float]


class ThermalNetwork:
    """A chassis thermal network: nodes, conductances, and one air path."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._capacitive: dict[str, CapacitiveNode] = {}
        self._boundary: dict[str, BoundaryNode] = {}
        self._pcm: dict[str, PCMNode] = {}
        self._conductances: list[Conductance] = []
        self.air_path: AirPath | None = None
        #: Optional fast path for the compiled solver: a function of time
        #: returning the power of every capacitive node (state order) as
        #: one array. Builders that drive many nodes from one shared
        #: schedule (e.g. a chassis utilization trace) install it so the
        #: solver evaluates the schedule once per step instead of once
        #: per node. Must agree with the per-node ``power_w`` callables,
        #: which remain the readable reference.
        self.power_vector_fn: Callable[[float], np.ndarray] | None = None

    # -- construction -----------------------------------------------------

    def _check_new_name(self, name: str) -> None:
        if name in self._capacitive or name in self._boundary or name in self._pcm:
            raise NetworkError(f"duplicate node name {name!r}")

    def add_capacitive_node(
        self,
        name: str,
        heat_capacity_j_per_k: float,
        initial_temperature_c: float,
        power_w: float | PowerFunction = 0.0,
    ) -> CapacitiveNode:
        """Add a solid node with thermal mass.

        ``power_w`` may be a constant or a function of simulation time,
        letting callers drive CPUs with utilization-derived power traces.
        """
        self._check_new_name(name)
        node = CapacitiveNode(
            name=name,
            heat_capacity_j_per_k=heat_capacity_j_per_k,
            initial_temperature_c=initial_temperature_c,
            power_w=_as_time_function(power_w),
        )
        self._capacitive[name] = node
        return node

    def add_boundary_node(
        self, name: str, temperature_c: float | TemperatureFunction
    ) -> BoundaryNode:
        """Add a prescribed-temperature boundary node."""
        self._check_new_name(name)
        node = BoundaryNode(name=name, temperature_c=_as_time_function(temperature_c))
        self._boundary[name] = node
        return node

    def add_pcm_node(self, name: str, sample: PCMSample) -> PCMNode:
        """Add a wax container node. The sample's current enthalpy becomes
        the initial condition."""
        self._check_new_name(name)
        node = PCMNode(name=name, sample=sample)
        self._pcm[name] = node
        return node

    def add_conductance(
        self, node_a: str, node_b: str, conductance_w_per_k: float
    ) -> None:
        """Add a constant conductive link between two existing nodes."""
        for endpoint in (node_a, node_b):
            if not self.has_node(endpoint):
                raise NetworkError(
                    f"conductance references unknown node {endpoint!r}"
                )
        self._conductances.append(
            Conductance(node_a=node_a, node_b=node_b, conductance_w_per_k=conductance_w_per_k)
        )

    def set_air_path(self, air_path: AirPath) -> None:
        """Attach the chassis air path; couplings must reference known nodes."""
        for segment in air_path.segments:
            for coupling in segment.couplings:
                if coupling.node_name not in self._capacitive and (
                    coupling.node_name not in self._pcm
                ):
                    raise NetworkError(
                        f"air segment {segment.name!r} couples unknown or "
                        f"non-state node {coupling.node_name!r}"
                    )
        self.air_path = air_path

    # -- introspection ------------------------------------------------------

    def has_node(self, name: str) -> bool:
        """Whether a node of any kind exists with this name."""
        return name in self._capacitive or name in self._boundary or name in self._pcm

    @property
    def capacitive_names(self) -> list[str]:
        """Capacitive node names in state-vector order."""
        return list(self._capacitive)

    @property
    def pcm_names(self) -> list[str]:
        """PCM node names in state-vector order."""
        return list(self._pcm)

    @property
    def boundary_names(self) -> list[str]:
        """Boundary node names."""
        return list(self._boundary)

    @property
    def conductances(self) -> list[Conductance]:
        """All conductive links."""
        return list(self._conductances)

    def capacitive_node(self, name: str) -> CapacitiveNode:
        """Look up a capacitive node."""
        try:
            return self._capacitive[name]
        except KeyError:
            raise NetworkError(f"no capacitive node named {name!r}") from None

    def pcm_node(self, name: str) -> PCMNode:
        """Look up a PCM node."""
        try:
            return self._pcm[name]
        except KeyError:
            raise NetworkError(f"no PCM node named {name!r}") from None

    def boundary_node(self, name: str) -> BoundaryNode:
        """Look up a boundary node."""
        try:
            return self._boundary[name]
        except KeyError:
            raise NetworkError(f"no boundary node named {name!r}") from None

    def total_power_w(self, time_s: float) -> float:
        """Total dissipated power across all capacitive nodes at a time."""
        return sum(node.power_w(time_s) for node in self._capacitive.values())

    # -- state packing -----------------------------------------------------

    def initial_state(self) -> np.ndarray:
        """Packed initial ODE state ``[T_cap..., H_pcm...]``."""
        temps = [node.initial_temperature_c for node in self._capacitive.values()]
        enthalpies = [node.sample.enthalpy_j for node in self._pcm.values()]
        return np.array(temps + enthalpies, dtype=float)

    def unpack_state(self, state: np.ndarray, time_s: float) -> NetworkState:
        """Expand a packed state vector into named temperatures/enthalpies.

        Boundary temperatures (evaluated at ``time_s``) and PCM-implied
        temperatures are included in ``temperatures_c`` so downstream code
        can treat every node uniformly.
        """
        n_cap = len(self._capacitive)
        expected = n_cap + len(self._pcm)
        if state.shape != (expected,):
            raise NetworkError(
                f"state vector has shape {state.shape}, expected ({expected},)"
            )
        temperatures = dict(zip(self._capacitive, state[:n_cap]))
        enthalpies = dict(zip(self._pcm, state[n_cap:]))
        for name, node in self._pcm.items():
            specific = enthalpies[name] / node.sample.mass_kg
            temperatures[name] = node.sample.material.temperature_at_enthalpy(specific)
        for name, node in self._boundary.items():
            temperatures[name] = node.temperature_c(time_s)
        return NetworkState(temperatures_c=temperatures, pcm_enthalpies_j=enthalpies)

    # -- physics -----------------------------------------------------------

    def air_temperatures(
        self,
        node_temperatures: dict[str, float],
        time_s: float,
        inlet_override_c: float | None = None,
    ) -> tuple[dict[str, float], float]:
        """Quasi-steady segment air temperatures and the operating flow.

        Marches front-to-rear: each segment's well-mixed temperature follows
        from its inlet temperature (the previous segment's mixed outlet) and
        the coupled component temperatures. The chassis inlet temperature
        comes from a boundary node named ``"inlet"`` unless overridden.
        """
        if self.air_path is None:
            raise NetworkError(f"network {self.name!r} has no air path")
        if inlet_override_c is not None:
            inlet = inlet_override_c
        else:
            inlet = self.boundary_node("inlet").temperature_c(time_s)
        flow = self.air_path.flow_at_time(time_s)
        capacity_rate = AIR_VOLUMETRIC_HEAT_CAPACITY * flow
        air_temps: dict[str, float] = {}
        upstream = inlet
        for segment in self.air_path.segments:
            mixed = segment.mixed_temperature(
                upstream, node_temperatures, flow, capacity_rate
            )
            air_temps[segment.name] = mixed
            upstream = mixed
        return air_temps, flow

    def heat_flows_w(
        self, state: NetworkState, time_s: float
    ) -> tuple[dict[str, float], dict[str, float], float]:
        """Net heat flow into every state node (W), segment air temps, flow.

        Returns ``(flows, air_temperatures, flow_m3_s)`` where ``flows`` maps
        capacitive and PCM node names to net incoming heat including power
        dissipation, conduction, and convection to the air stream.
        """
        temps = state.temperatures_c
        flows = {name: 0.0 for name in self._capacitive}
        flows.update({name: 0.0 for name in self._pcm})

        for name, node in self._capacitive.items():
            flows[name] += node.power_w(time_s)

        for edge in self._conductances:
            delta = temps[edge.node_a] - temps[edge.node_b]
            heat = edge.conductance_w_per_k * delta
            if edge.node_a in flows:
                flows[edge.node_a] -= heat
            if edge.node_b in flows:
                flows[edge.node_b] += heat

        air_temps: dict[str, float] = {}
        flow = 0.0
        if self.air_path is not None:
            air_temps, flow = self.air_temperatures(temps, time_s)
            for segment in self.air_path.segments:
                segment_temp = air_temps[segment.name]
                for coupling in segment.couplings:
                    conductance = coupling.conductance_at_flow(flow)
                    flows[coupling.node_name] += conductance * (
                        segment_temp - temps[coupling.node_name]
                    )
        return flows, air_temps, flow

    def state_derivative(self, state_vector: np.ndarray, time_s: float) -> np.ndarray:
        """Right-hand side of the packed ODE system."""
        state = self.unpack_state(state_vector, time_s)
        flows, _air, _flow = self.heat_flows_w(state, time_s)
        derivative = np.empty_like(state_vector)
        for index, (name, node) in enumerate(self._capacitive.items()):
            derivative[index] = flows[name] / node.heat_capacity_j_per_k
        offset = len(self._capacitive)
        for index, name in enumerate(self._pcm):
            derivative[offset + index] = flows[name]
        return derivative

    def min_time_constant_s(self, flow_m3_s: float) -> float:
        """Smallest node time constant, used to bound explicit step sizes.

        Conservatively sums every conductance touching a node (constant
        edges plus convective couplings evaluated at the given flow).
        """
        totals: dict[str, float] = {name: 0.0 for name in self._capacitive}
        totals.update({name: 0.0 for name in self._pcm})
        for edge in self._conductances:
            if edge.node_a in totals:
                totals[edge.node_a] += edge.conductance_w_per_k
            if edge.node_b in totals:
                totals[edge.node_b] += edge.conductance_w_per_k
        if self.air_path is not None:
            for segment in self.air_path.segments:
                for coupling in segment.couplings:
                    totals[coupling.node_name] += coupling.conductance_at_flow(
                        flow_m3_s
                    )
        smallest = np.inf
        for name, node in self._capacitive.items():
            if totals[name] > 0:
                smallest = min(smallest, node.heat_capacity_j_per_k / totals[name])
        for name, node in self._pcm.items():
            if totals[name] > 0:
                capacity = node.sample.mass_kg * min(
                    node.sample.material.specific_heat_solid_j_per_kg_k,
                    node.sample.material.specific_heat_liquid_j_per_kg_k,
                )
                smallest = min(smallest, capacity / totals[name])
        if not np.isfinite(smallest):
            raise NetworkError(
                f"network {self.name!r} has no thermal links; nothing to solve"
            )
        return float(smallest)

    def validate(self) -> None:
        """Check the network is solvable: nodes exist, everything is linked."""
        if not self._capacitive and not self._pcm:
            raise NetworkError(f"network {self.name!r} has no state nodes")
        linked: set[str] = set()
        for edge in self._conductances:
            linked.add(edge.node_a)
            linked.add(edge.node_b)
        if self.air_path is not None:
            for segment in self.air_path.segments:
                for coupling in segment.couplings:
                    linked.add(coupling.node_name)
        orphans = [
            name
            for name in list(self._capacitive) + list(self._pcm)
            if name not in linked
        ]
        if orphans:
            raise NetworkError(
                f"network {self.name!r} has thermally isolated nodes: {orphans}"
            )
