"""Synthetic rack-scale thermal networks for the sparse solver path.

The paper's chassis networks top out at a few dozen nodes, which never
exercises the sparse backend. This module builds a deterministic
rack-scale conduction network — hundreds of servers, each a short
cpu–sink–board chain hanging off a shared board rail, a few thousand
state nodes total — whose operator is overwhelmingly zero off a narrow
band. It exists for backend equivalence tests and the
``solver_backend_*`` bench scenarios; it is *not* a physical model of
any rack in the paper, just a structurally honest large sparse network
with realistic time constants (so the RK4 stability step stays in the
tens of seconds and transient runs finish quickly).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.materials.pcm import PCMSample
from repro.thermal.network import ThermalNetwork

#: Server count whose network clears the issue's ">=2k state nodes" bar
#: (3 nodes per server plus one PCM node per :data:`DEFAULT_PCM_EVERY`).
RACK_SCALE_SERVERS = 700

#: Default PCM placement: one wax node on every k-th server's heat sink.
DEFAULT_PCM_EVERY = 8


def rack_scale_network(
    servers: int = RACK_SCALE_SERVERS,
    seed: int = 0,
    pcm_every: int | None = DEFAULT_PCM_EVERY,
    ambient_c: float = 25.0,
    name: str | None = None,
) -> ThermalNetwork:
    """A deterministic sparse conduction network of ``servers`` servers.

    Each server ``s`` is a chain ``cpu{s} — sink{s} — board{s}`` with the
    board tied to its rack neighbour (``board{s} — board{s+1}``) and to
    ambient; every ``pcm_every``-th server hangs a wax sample off its
    heat sink (``None`` disables PCM). CPU powers are seeded constants in
    20–80 W, capacities and conductances are seeded within a realistic
    band, so two calls with the same arguments build identical networks.

    State size is ``3 * servers + ceil(servers / pcm_every)`` — 700
    servers with the default PCM spacing gives 2188 nodes at ~0.1%
    operator density, well past the ``backend="auto"`` sparse thresholds.
    """
    if servers < 1:
        raise ConfigurationError(f"servers must be >= 1, got {servers}")
    if pcm_every is not None and pcm_every < 1:
        raise ConfigurationError(
            f"pcm_every must be >= 1 or None, got {pcm_every}"
        )
    rng = np.random.default_rng(seed)
    network = ThermalNetwork(
        name if name is not None else f"rack-{servers}x-seed{seed}"
    )
    network.add_boundary_node("ambient", ambient_c)

    cpu_capacity = rng.uniform(350.0, 450.0, size=servers)
    sink_capacity = rng.uniform(700.0, 900.0, size=servers)
    board_capacity = rng.uniform(1300.0, 1700.0, size=servers)
    cpu_power = rng.uniform(20.0, 80.0, size=servers)
    g_cpu_sink = rng.uniform(2.5, 3.5, size=servers)
    g_sink_board = rng.uniform(1.8, 2.6, size=servers)
    g_board_rail = rng.uniform(0.8, 1.2, size=servers)
    g_board_ambient = rng.uniform(0.4, 0.7, size=servers)
    g_pcm = rng.uniform(1.0, 1.6, size=servers)
    pcm_mass = rng.uniform(0.3, 0.5, size=servers)

    for s in range(servers):
        network.add_capacitive_node(
            f"cpu{s}", float(cpu_capacity[s]), ambient_c,
            power_w=float(cpu_power[s]),
        )
        network.add_capacitive_node(
            f"sink{s}", float(sink_capacity[s]), ambient_c
        )
        network.add_capacitive_node(
            f"board{s}", float(board_capacity[s]), ambient_c
        )
        network.add_conductance(f"cpu{s}", f"sink{s}", float(g_cpu_sink[s]))
        network.add_conductance(f"sink{s}", f"board{s}", float(g_sink_board[s]))
        if s > 0:
            network.add_conductance(
                f"board{s - 1}", f"board{s}", float(g_board_rail[s])
            )
        network.add_conductance(
            f"board{s}", "ambient", float(g_board_ambient[s])
        )
        if pcm_every is not None and s % pcm_every == 0:
            sample = PCMSample(
                material=commercial_paraffin_with_melting_point(43.0),
                mass_kg=float(pcm_mass[s]),
            )
            sample.set_temperature(ambient_c)
            network.add_pcm_node(f"wax{s}", sample)
            network.add_conductance(f"wax{s}", f"sink{s}", float(g_pcm[s]))

    return network
