"""Chip-scale sprint thermal model on the shared RC substrate.

The sprinting literature's canonical setup (Raghavan et al., HPCA'12 /
ISCA'13): a dark-silicon chip whose sustainable cooling supports ~1 W
continuously sprints at an order of magnitude more power for as long as
its thermal capacitance allows, then must drop back and cool off. A few
grams of eicosane on the package extend the sprint by absorbing the burst
at the melting plateau.

The model is three nodes of the same :class:`~repro.thermal.network`
machinery the datacenter study uses — die, heat spreader (with the PCM
layer attached), and a weak path to ambient — integrated with the same
RK4 solver. What changes between this and the warehouse study is only
scale: joules instead of megajoules, seconds instead of hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.materials.library import EICOSANE
from repro.materials.pcm import PCMMaterial, PCMSample
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver import TransientResult, simulate_transient
from repro.thermal.solver import simulate_transient_batch


@dataclass(frozen=True)
class SprintChip:
    """A dark-silicon chip package for sprint experiments.

    Defaults follow the sprinting literature's testbed scale: ~1 W
    sustainable, ~16 W sprints, a 75 degC junction limit, and a package
    able to carry a few tens of grams of PCM.
    """

    die_heat_capacity_j_per_k: float = 2.0
    spreader_heat_capacity_j_per_k: float = 8.0
    die_to_spreader_w_per_k: float = 2.5
    spreader_to_ambient_w_per_k: float = 0.045
    pcm_to_spreader_w_per_k: float = 3.0
    ambient_c: float = 25.0
    junction_limit_c: float = 75.0
    idle_power_w: float = 0.1
    sustainable_power_w: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "die_heat_capacity_j_per_k",
            "spreader_heat_capacity_j_per_k",
            "die_to_spreader_w_per_k",
            "spreader_to_ambient_w_per_k",
            "pcm_to_spreader_w_per_k",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.junction_limit_c <= self.ambient_c:
            raise ConfigurationError("junction limit must exceed ambient")
        if self.sustainable_power_w <= self.idle_power_w:
            raise ConfigurationError(
                "sustainable power must exceed idle power"
            )

    def steady_junction_c(self, power_w: float) -> float:
        """Steady die temperature at a continuous power (no PCM effect —
        at steady state the wax is saturated)."""
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        spreader = self.ambient_c + power_w / self.spreader_to_ambient_w_per_k
        return spreader + power_w / self.die_to_spreader_w_per_k

    def build_network(
        self,
        sprint_power_w: float,
        pcm_grams: float = 0.0,
        material: PCMMaterial = EICOSANE,
        initial_temperature_c: float | None = None,
    ) -> ThermalNetwork:
        """Assemble the package network, optionally with on-package PCM."""
        if sprint_power_w <= 0:
            raise ConfigurationError("sprint power must be positive")
        if pcm_grams < 0:
            raise ConfigurationError("PCM mass must be non-negative")
        start = (
            initial_temperature_c
            if initial_temperature_c is not None
            else self.steady_junction_c(self.idle_power_w)
        )
        network = ThermalNetwork("sprint package")
        network.add_boundary_node("ambient", self.ambient_c)
        network.add_capacitive_node(
            "die", self.die_heat_capacity_j_per_k, start, power_w=sprint_power_w
        )
        network.add_capacitive_node(
            "spreader", self.spreader_heat_capacity_j_per_k, start
        )
        network.add_conductance("die", "spreader", self.die_to_spreader_w_per_k)
        network.add_conductance(
            "spreader", "ambient", self.spreader_to_ambient_w_per_k
        )
        if pcm_grams > 0:
            sample = PCMSample(
                material=material, mass_kg=pcm_grams / 1000.0
            )
            sample.set_temperature(start)
            network.add_pcm_node("pcm", sample)
            network.add_conductance(
                "pcm", "spreader", self.pcm_to_spreader_w_per_k
            )
        return network


@dataclass(frozen=True)
class SprintResult:
    """Outcome of one sprint-to-thermal-limit run."""

    sprint_power_w: float
    pcm_grams: float
    duration_s: float
    hit_limit: bool
    final_melt_fraction: float


def _sprint_outcome(
    chip: SprintChip,
    result: TransientResult,
    sprint_power_w: float,
    pcm_grams: float,
    horizon_s: float,
) -> SprintResult:
    """Condense one transient trace into a sprint outcome."""
    die = result.temperatures_c["die"]
    over = die >= chip.junction_limit_c
    if np.any(over):
        duration = float(result.times_s[int(np.argmax(over))])
        hit = True
    else:
        duration = horizon_s
        hit = False
    melt = 0.0
    if pcm_grams > 0:
        index = int(np.argmax(over)) if hit else -1
        melt = float(result.melt_fractions["pcm"][index])
    return SprintResult(
        sprint_power_w=sprint_power_w,
        pcm_grams=pcm_grams,
        duration_s=duration,
        hit_limit=hit,
        final_melt_fraction=melt,
    )


def run_sprint(
    chip: SprintChip,
    sprint_power_w: float,
    pcm_grams: float = 0.0,
    material: PCMMaterial = EICOSANE,
    horizon_s: float = 600.0,
    output_interval_s: float = 0.05,
) -> SprintResult:
    """Sprint from the idle steady state until the junction limit.

    Returns the sprint duration (time to the junction limit, or the full
    horizon if the chip never hits it — i.e. the power was sustainable).
    """
    if horizon_s <= 0:
        raise ConfigurationError("horizon must be positive")
    network = chip.build_network(sprint_power_w, pcm_grams, material)
    result = simulate_transient(
        network, horizon_s, output_interval_s=output_interval_s
    )
    return _sprint_outcome(chip, result, sprint_power_w, pcm_grams, horizon_s)


def run_sprint_batch(
    chip: SprintChip,
    sprint_powers_w: list[float],
    pcm_grams: float = 0.0,
    material: PCMMaterial = EICOSANE,
    horizon_s: float = 600.0,
    output_interval_s: float = 0.05,
) -> list[SprintResult]:
    """Sprint a whole power sweep in one batched transient run.

    All members share the package structure (the PCM loadout must be the
    same), so the sweep advances as one stacked RK4 integration via
    :func:`repro.thermal.solver.simulate_transient_batch`.
    """
    if horizon_s <= 0:
        raise ConfigurationError("horizon must be positive")
    networks = [
        chip.build_network(float(power), pcm_grams, material)
        for power in sprint_powers_w
    ]
    batch = simulate_transient_batch(
        networks, horizon_s, output_interval_s=output_interval_s
    )
    return [
        _sprint_outcome(chip, result, float(power), pcm_grams, horizon_s)
        for power, result in zip(sprint_powers_w, batch.require_all())
    ]


def sprint_extension_ratio(
    chip: SprintChip,
    sprint_power_w: float,
    pcm_grams: float,
    material: PCMMaterial = EICOSANE,
    horizon_s: float = 600.0,
) -> float:
    """How many times longer the PCM lets the chip sprint."""
    bare = run_sprint(chip, sprint_power_w, 0.0, material, horizon_s)
    with_pcm = run_sprint(chip, sprint_power_w, pcm_grams, material, horizon_s)
    if bare.duration_s <= 0:
        raise ConfigurationError("bare sprint duration is zero; model broken")
    return with_pcm.duration_s / bare.duration_s
