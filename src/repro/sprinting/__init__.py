"""Computational sprinting: the chip-scale PCM application (Section 6).

The paper positions thermal time shifting against computational sprinting
(Raghavan et al.): "While that work uses PCM in small quantities to
reshape the load without impacting thermals, we take the opposite
approach ... we study PCM deployment on a datacenter scale to consider
thermal time shifting over periods lasting several hours, compared to
seconds or fractions of seconds in the computational sprinting approach."

This package builds the sprinting configuration on the same thermal
substrate — a die + heat spreader + on-package PCM stack with a
dark-silicon-constrained sustainable cooling path — so the two regimes
can be compared quantitatively: grams vs liters of wax, seconds vs hours
of buffering, eicosane vs commercial paraffin economics.
"""

from repro.sprinting.model import (
    SprintChip,
    SprintResult,
    run_sprint,
    run_sprint_batch,
    sprint_extension_ratio,
)

__all__ = [
    "SprintChip",
    "SprintResult",
    "run_sprint",
    "run_sprint_batch",
    "sprint_extension_ratio",
]
