"""The parallel sweep engine: fan independent evaluations over processes.

:func:`sweep` is the one entry point. It takes a *top-level* function
and a list of items, evaluates ``func(item)`` for each, and returns the
results **in item order** regardless of completion order — callers can
zip results back onto their inputs and downstream reductions (argmin
over a melting-point grid, table rows in paper order) are identical to
a serial run.

Execution strategy, in order of preference:

* ``jobs == 1`` (the default) or a single pending item — run serially
  in-process. No pickling requirement, no worker processes, byte-
  identical behaviour to the pre-runner code.
* ``jobs > 1`` — fan out over a ``ProcessPoolExecutor``. Each task gets
  a per-attempt ``timeout_s`` and up to ``retries`` re-submissions; a
  task that exhausts its attempts raises :class:`RunnerError` naming
  the item index.
* **graceful degradation** — if the function cannot be pickled (a
  lambda, a closure) or the pool dies mid-sweep
  (``BrokenProcessPool``), the remaining items run serially in-process
  instead of failing the sweep. The fallback is counted under
  ``runner.pool_fallbacks`` so it is visible, not silent.

When a :class:`~repro.runner.cache.ResultCache` is supplied, each item
is addressed by the function's qualified name plus the item's canonical
encoding (or ``key_fn(item)`` for items the codec cannot express); hits
skip evaluation entirely and misses are stored after evaluation.
Workers run in separate processes, so observability counters they
increment stay in the worker — the sweep itself reports scheduling
counters (``runner.tasks``, ``runner.retries``, ``runner.timeouts``,
``runner.cache.*``) in the parent process.
"""

from __future__ import annotations

import pickle
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.errors import RunnerError
from repro.obs import get_registry
from repro.runner.cache import MISS, ResultCache
from repro.runner.serialize import SerializationError


def _abandon(executor: ProcessPoolExecutor) -> None:
    """Discard an executor whose workers may be wedged in a call we gave
    up on. ``shutdown(wait=False)`` alone leaves each such worker alive
    until its hung call returns on its own, so a sweep with repeated
    timeouts would accumulate orphaned processes without bound; kill the
    workers outright instead. ``_processes`` is private executor state,
    hence the defensive ``getattr``: if a future interpreter renames it,
    we degrade to the old leak-until-done behaviour, not a crash. The
    snapshot happens *before* shutdown, which drops the executor's own
    reference to the process table."""
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # noqa: BLE001 - already-reaped process etc.
            pass


def _task_spec(func: Callable, item: Any, key_fn: Callable | None) -> Any:
    """Cache address of one task: function identity + item content."""
    return {
        "kind": "sweep-task",
        "func": f"{func.__module__}.{func.__qualname__}",
        "item": key_fn(item) if key_fn is not None else item,
    }


def _run_serial(
    func: Callable,
    item: Any,
    index: int,
    retries: int,
) -> Any:
    obs = get_registry()
    last_error: BaseException | None = None
    for _attempt in range(retries + 1):
        try:
            return func(item)
        except Exception as error:  # noqa: BLE001 - reported via RunnerError
            last_error = error
            obs.count("runner.retries")
    assert last_error is not None
    raise RunnerError(
        f"sweep task {index} ({getattr(func, '__qualname__', func)!r}) "
        f"failed after {retries + 1} attempt(s): {last_error!r}"
    ) from last_error


def _encode_payload(value: Any, encoder: Callable | None) -> Any:
    return encoder(value) if encoder is not None else value


def _decode_payload(value: Any, decoder: Callable | None) -> Any:
    return decoder(value) if decoder is not None else value


def sweep(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
    retries: int = 0,
    cache: ResultCache | None = None,
    key_fn: Callable[[Any], Any] | None = None,
    encoder: Callable[[Any], Any] | None = None,
    decoder: Callable[[Any], Any] | None = None,
    label: str = "runner.sweep",
) -> list[Any]:
    """Evaluate ``func`` over ``items``; results in item order.

    Parameters
    ----------
    func:
        A single-argument callable. For ``jobs > 1`` it must be a
        module-level function (picklable); otherwise the sweep falls
        back to serial execution.
    jobs:
        Worker processes. ``1`` runs serially in-process.
    timeout_s:
        Per-attempt wall-clock limit, enforced only in process-pool
        mode (a serial in-process task cannot be interrupted safely).
        A timed-out attempt counts against ``retries``. Because a
        running process-pool call cannot be cancelled, a timeout
        recycles the executor (counted under ``runner.pool_recycles``):
        the abandoned pool's worker processes are killed — so orphans
        cannot pile up across repeated timeouts — while the retry and
        all later tasks run on fresh workers.
    retries:
        Extra attempts after a failure or timeout before the sweep
        raises :class:`RunnerError`.
    cache:
        Optional :class:`ResultCache`. Items must be expressible by the
        canonical codec, or ``key_fn`` must map them to something that
        is; payloads likewise, or supply ``encoder``/``decoder``.
    key_fn / encoder / decoder:
        Cache adapters: ``key_fn`` derives the item's cache identity,
        ``encoder``/``decoder`` convert results to/from the codec's
        value space. All default to identity.
    """
    if jobs < 1:
        raise RunnerError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise RunnerError(f"retries must be >= 0, got {retries}")
    items = list(items)
    obs = get_registry()
    obs.count("runner.sweeps")
    obs.count("runner.tasks", len(items))

    results: list[Any] = [None] * len(items)
    pending: list[int] = []

    with obs.timer(label):
        if cache is not None:
            for index, item in enumerate(items):
                try:
                    spec = _task_spec(func, item, key_fn)
                    payload = cache.get(spec)
                except SerializationError as error:
                    raise RunnerError(
                        f"sweep item {index} cannot address the cache "
                        f"({error}); pass key_fn to derive a cacheable key"
                    ) from error
                if payload is MISS:
                    pending.append(index)
                else:
                    results[index] = _decode_payload(payload, decoder)
        else:
            pending = list(range(len(items)))

        computed = _execute(
            func,
            [items[index] for index in pending],
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            indices=pending,
        )
        for index, value in zip(pending, computed):
            results[index] = value
            if cache is not None:
                try:
                    cache.put(
                        _task_spec(func, items[index], key_fn),
                        _encode_payload(value, encoder),
                    )
                except SerializationError as error:
                    raise RunnerError(
                        f"sweep result for item {index} cannot be cached "
                        f"({error}); pass encoder to convert it"
                    ) from error
    return results


def _execute(
    func: Callable[[Any], Any],
    items: list[Any],
    *,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    indices: list[int],
) -> list[Any]:
    """Run the pending tasks; returns values aligned with ``items``."""
    obs = get_registry()
    if not items:
        return []
    if jobs == 1 or len(items) == 1:
        return [
            _run_serial(func, item, index, retries)
            for item, index in zip(items, indices)
        ]

    try:
        pickle.dumps(func)
    except Exception:  # noqa: BLE001 - any pickling failure means "can't ship"
        obs.count("runner.pool_fallbacks")
        return [
            _run_serial(func, item, index, retries)
            for item, index in zip(items, indices)
        ]

    results: list[Any] = [None] * len(items)
    obs.count("runner.parallel_tasks", len(items))
    executor = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    clean_exit = False
    try:
        futures = {
            position: executor.submit(func, item)
            for position, item in enumerate(items)
        }
        attempts = dict.fromkeys(futures, 1)
        for position in range(len(items)):
            while True:
                future = futures[position]
                try:
                    results[position] = future.result(timeout=timeout_s)
                    break
                except BrokenProcessPool:
                    # The pool died (OOM-killed worker, interpreter
                    # crash): finish everything not yet collected
                    # in-process rather than losing the sweep.
                    obs.count("runner.pool_fallbacks")
                    for tail in range(position, len(items)):
                        results[tail] = _run_serial(
                            func, items[tail], indices[tail], retries
                        )
                    return results
                except FutureTimeoutError:
                    obs.count("runner.timeouts")
                    future.cancel()
                    if attempts[position] > retries:
                        raise RunnerError(
                            f"sweep task {indices[position]} timed out after "
                            f"{attempts[position]} attempt(s) of "
                            f"{timeout_s}s each"
                        ) from None
                    attempts[position] += 1
                    obs.count("runner.retries")
                    # A ProcessPoolExecutor cannot interrupt a running
                    # call: the worker owning the timed-out task stays
                    # occupied until the task finishes on its own, so
                    # resubmitting to the same pool permanently loses one
                    # worker per timeout — enough timeouts and the retry
                    # itself queues behind the very task it is retrying.
                    # Recycle instead: move every uncollected task to a
                    # fresh executor and kill the old pool's workers
                    # (the hung call would otherwise keep its process
                    # alive arbitrarily long, and repeated timeouts
                    # would pile such orphans up). In-flight work for
                    # later items is redone, which is safe (retries
                    # already require the function to tolerate
                    # re-execution).
                    obs.count("runner.pool_recycles")
                    _abandon(executor)
                    executor = ProcessPoolExecutor(
                        max_workers=min(jobs, len(items) - position)
                    )
                    for tail in range(position, len(items)):
                        futures[tail] = executor.submit(func, items[tail])
                except Exception as error:  # noqa: BLE001
                    if attempts[position] > retries:
                        raise RunnerError(
                            f"sweep task {indices[position]} "
                            f"({getattr(func, '__qualname__', func)!r}) "
                            f"failed after {attempts[position]} attempt(s): "
                            f"{error!r}"
                        ) from error
                    attempts[position] += 1
                    obs.count("runner.retries")
                    futures[position] = executor.submit(func, items[position])
        clean_exit = True
        return results
    finally:
        if clean_exit:
            executor.shutdown(wait=True)
        else:
            # Error path: workers may be stuck in a task we already
            # gave up on; kill them rather than leaking processes.
            _abandon(executor)
