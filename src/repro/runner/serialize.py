"""Canonical encoding for cache keys and array-aware result payloads.

Two jobs live here, sharing one tagged encoding:

* **cache keys** — :func:`canonical_json` renders any scenario
  configuration (nested dicts, lists, tuples, numpy scalars and arrays)
  to a deterministic string: object keys are sorted, whitespace is
  fixed, and every value type has exactly one spelling. Hashing that
  string gives a content address that is invariant to dict insertion
  order and sensitive to any value change.
* **payload storage** — :func:`encode` / :func:`decode` round-trip the
  same value space exactly, including ``NaN``/``inf`` floats, empty
  arrays, non-ASCII keys, and numpy scalar types (an ``np.float64`` in
  comes back an ``np.float64``, not a bare ``float`` — and never
  silently coerced; see :func:`decode`).

The tagged forms (``__tuple__``, ``__ndarray__``, ``__npscalar__``,
``__float__``) are objects whose single key cannot collide with plain
data: any dict that *contains* one of those keys alongside others, or
with a different value shape, is rejected rather than misread.
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any

import numpy as np

from repro.errors import ReproError

#: Tag keys; a plain payload dict must not use these as its sole key.
_TAGS = ("__tuple__", "__ndarray__", "__npscalar__", "__float__")


class SerializationError(ReproError):
    """A value cannot be canonically encoded (or a payload decoded)."""


def _encode_float(value: float) -> Any:
    """Floats that strict JSON cannot carry become tagged hex strings."""
    if math.isfinite(value):
        return value
    return {"__float__": value.hex() if not math.isnan(value) else "nan"}


def _decode_float(spec: str) -> float:
    return float("nan") if spec == "nan" else float.fromhex(spec)


def encode(value: Any) -> Any:
    """Recursively convert ``value`` into a JSON-able tagged structure.

    Accepts ``None``, ``bool``, ``int``, ``float``, ``str``, numpy
    scalars and arrays, and ``dict``/``list``/``tuple`` containers
    (dict keys must be strings). Anything else — sets, bytes, arbitrary
    objects — raises :class:`SerializationError` instead of guessing.
    """
    if value is None or isinstance(value, str):
        return value
    # numpy scalars first: np.float64 *subclasses* float (and np.int_
    # can subclass int on some platforms), so the plain-number branches
    # below would silently strip the numpy type.
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        kind = type(value).__name__
        if isinstance(value, np.bool_):
            payload: Any = bool(value)
        elif isinstance(value, np.integer):
            payload = int(value)
        else:
            payload = _encode_float(float(value))
        return {"__npscalar__": [kind, payload]}
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            raise SerializationError(
                "object-dtype arrays have no canonical encoding"
            )
        return {
            "__ndarray__": {
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "data": base64.b64encode(
                    np.ascontiguousarray(value).tobytes()
                ).decode("ascii"),
            }
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            out[key] = encode(item)
        if len(out) == 1 and next(iter(out)) in _TAGS:
            raise SerializationError(
                f"dict key {next(iter(out))!r} collides with a codec tag"
            )
        return out
    raise SerializationError(
        f"cannot canonically encode {type(value).__name__}"
    )


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`; exact, including NaN and numpy types."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag, body = next(iter(value.items()))
            if tag == "__float__":
                return _decode_float(body)
            if tag == "__tuple__":
                return tuple(decode(item) for item in body)
            if tag == "__npscalar__":
                kind, payload = body
                try:
                    ctor = getattr(np, kind)
                except AttributeError:
                    raise SerializationError(
                        f"unknown numpy scalar kind {kind!r}"
                    ) from None
                if isinstance(payload, dict):
                    payload = _decode_float(payload["__float__"])
                return ctor(payload)
            if tag == "__ndarray__":
                dtype = np.dtype(body["dtype"])
                raw = base64.b64decode(body["data"])
                return np.frombuffer(raw, dtype=dtype).reshape(
                    body["shape"]
                ).copy()
        return {key: decode(item) for key, item in value.items()}
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON text of ``value`` (the cache-key substrate).

    Keys are sorted, separators are fixed, and non-ASCII is escaped so
    the byte stream is identical across platforms and locales.
    """
    return json.dumps(
        encode(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def dumps_payload(value: Any) -> str:
    """Serialize a payload for on-disk storage.

    Unlike :func:`canonical_json` (the key substrate), keys are *not*
    sorted: dict insertion order is part of an exact round-trip —
    summary tables and CSV column order must come back as written.
    """
    return json.dumps(
        encode(value),
        indent=1,
        ensure_ascii=False,
        allow_nan=False,
    )


def loads_payload(text: str) -> Any:
    """Inverse of :func:`dumps_payload`."""
    return decode(json.loads(text))


def encode_experiment_result(result: Any) -> dict[str, Any]:
    """Flatten an :class:`~repro.experiments.registry.ExperimentResult`
    into the codec's value space.

    ``perf`` is deliberately dropped: it describes the *run that
    produced the result*, so replaying it from a cache would misreport
    a hit as the original cold run.
    """
    return {
        "kind": "ExperimentResult",
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": result.tables,
        "series": result.series,
        "summary": result.summary,
        "paper": result.paper,
    }


def decode_experiment_result(payload: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_experiment_result`."""
    from repro.experiments.registry import ExperimentResult

    if payload.get("kind") != "ExperimentResult":
        raise SerializationError(
            f"payload kind {payload.get('kind')!r} is not an ExperimentResult"
        )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        tables=payload["tables"],
        series=payload["series"],
        summary=payload["summary"],
        paper=payload["paper"],
    )
