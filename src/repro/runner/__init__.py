"""Parallel experiment execution and content-addressed result caching.

The substrate every sweep-shaped workload in the library runs on:

* :func:`~repro.runner.pool.sweep` — fan independent evaluations
  (steady-state solves, two-day cluster simulations, TCO points) over a
  process pool with deterministic result ordering, per-task timeout and
  retry, and graceful fallback to serial execution.
* :class:`~repro.runner.cache.ResultCache` — a content-addressed
  on-disk store keyed by SHA-256 of the canonical scenario encoding
  plus a code-version salt. Off by default; enabled per-call, via
  ``--cache`` on the CLIs, or the ``REPRO_CACHE_DIR`` environment
  variable.
* :mod:`~repro.runner.serialize` — the exact, array-aware codec both
  of the above share.

See ``docs/RUNNER.md`` for the full contract.
"""

from repro.runner.cache import (
    CACHE_SCHEMA,
    ENV_CACHE_DIR,
    MISS,
    ResultCache,
    cache_from_env,
    cache_key,
    default_salt,
    resolve_cache,
)
from repro.runner.pool import sweep
from repro.runner.serialize import (
    SerializationError,
    canonical_json,
    decode,
    decode_experiment_result,
    dumps_payload,
    encode,
    encode_experiment_result,
    loads_payload,
)

__all__ = [
    "CACHE_SCHEMA",
    "ENV_CACHE_DIR",
    "MISS",
    "ResultCache",
    "SerializationError",
    "cache_from_env",
    "cache_key",
    "canonical_json",
    "decode",
    "decode_experiment_result",
    "default_salt",
    "dumps_payload",
    "encode",
    "encode_experiment_result",
    "loads_payload",
    "resolve_cache",
    "sweep",
]
