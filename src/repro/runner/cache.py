"""Content-addressed on-disk cache for experiment and sweep results.

A :class:`ResultCache` maps a *scenario specification* — any value the
canonical codec accepts (see :mod:`repro.runner.serialize`) — to a
stored payload. The address is ``SHA-256(canonical_json(spec) + salt)``:

* the canonical encoding makes the key invariant to dict insertion
  order and sensitive to any value change;
* the salt carries a cache schema tag plus the package version, so a
  release that changes the physics silently invalidates every entry
  rather than replaying stale results.

Entries are sharded two-level (``ab/ab12....json``) and written
atomically (temp file + ``os.replace``), so a crashed writer can never
leave a half-entry that a later reader trusts. A corrupt or undecodable
entry is treated as a miss and counted, never raised.

Concurrency contract: any number of processes may read and write one
cache directory at the same time. Every write lands under a fresh
``mkstemp`` name and is published with a single atomic ``os.replace``,
so readers observe either the previous complete entry or the new
complete entry — never a torn mix — and racing writers of the same key
resolve last-writer-wins (both wrote the same content-addressed value,
so which rename lands last is immaterial). Within one process,
:meth:`ResultCache.get_or_compute` additionally single-flights
concurrent misses of the same key so a thundering herd computes the
payload once.

The cache is **off by default**: nothing in the library writes to disk
unless the user passes ``--cache`` on a CLI, sets ``REPRO_CACHE_DIR``,
or constructs a :class:`ResultCache` directly. Hit/miss/store counters
are reported through :mod:`repro.obs` under ``runner.cache.*`` when
collection is enabled.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs import get_registry
from repro.runner.serialize import (
    SerializationError,
    canonical_json,
    dumps_payload,
    loads_payload,
)

#: Environment variable naming the cache directory (enables the cache).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Schema tag folded into every key; bump to invalidate all entries.
CACHE_SCHEMA = "repro.runner.cache/1"

#: Sentinel distinguishing "miss" from a legitimately-cached ``None``.
MISS = object()


def default_salt() -> str:
    """The key salt: cache schema + code version.

    The version import is deferred: :mod:`repro.runner` is imported by
    layers that ``repro/__init__`` itself imports, so a module-level
    ``from repro import __version__`` would run against the partially
    initialized package.
    """
    from repro import __version__

    return f"{CACHE_SCHEMA}+repro-{__version__}"


def cache_key(spec: Any, salt: str | None = None) -> str:
    """SHA-256 hex address of a scenario specification."""
    text = canonical_json(spec)
    digest = hashlib.sha256()
    digest.update((salt if salt is not None else default_salt()).encode())
    digest.update(b"\x00")
    digest.update(text.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Content-addressed result store rooted at one directory."""

    def __init__(self, directory: str | Path, salt: str | None = None) -> None:
        self.directory = Path(directory)
        self.salt = salt if salt is not None else default_salt()
        # In-process single-flight state for get_or_compute: key -> the
        # event its first computer will set once the entry is published.
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()

    def key(self, spec: Any) -> str:
        """Address of ``spec`` under this cache's salt."""
        return cache_key(spec, self.salt)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, spec: Any) -> Any:
        """Stored payload for ``spec``, or :data:`MISS`.

        Returns :data:`MISS` (never raises) for absent, unreadable, or
        corrupt entries, so callers can always fall back to computing.
        """
        obs = get_registry()
        path = self._path(self.key(spec))
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            obs.count("runner.cache.miss")
            return MISS
        try:
            payload = loads_payload(text)
        except (ValueError, KeyError, TypeError, SerializationError):
            obs.count("runner.cache.corrupt")
            obs.count("runner.cache.miss")
            return MISS
        obs.count("runner.cache.hit")
        return payload

    def put(self, spec: Any, payload: Any) -> Path:
        """Store ``payload`` under ``spec``'s address (atomic)."""
        path = self._path(self.key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        text = dumps_payload(payload)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        get_registry().count("runner.cache.store")
        return path

    def get_or_compute(
        self, spec: Any, compute: Callable[[], Any]
    ) -> Any:
        """Payload for ``spec``, computing and storing it on a miss.

        Concurrent callers within one process are single-flighted: the
        first miss runs ``compute()`` while the rest block until the
        entry is published, then read it from disk. If the computing
        caller fails, one waiter is promoted to compute in its place.
        Across processes the cache stays coordination-free: concurrent
        writers both compute and the last ``os.replace`` wins, which is
        harmless because the key addresses the content.
        """
        key = self.key(spec)
        obs = get_registry()
        while True:
            payload = self.get(spec)
            if payload is not MISS:
                return payload
            with self._inflight_lock:
                event = self._inflight.get(key)
                if event is None:
                    event = self._inflight[key] = threading.Event()
                    owner = True
                else:
                    owner = False
            if not owner:
                obs.count("runner.cache.flight_waits")
                event.wait()
                continue
            try:
                payload = compute()
                self.put(spec, payload)
                return payload
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                event.set()

    def purge_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Delete orphaned ``*.tmp`` files left by crashed writers.

        A writer killed between ``mkstemp`` and ``os.replace`` leaks its
        temp file; entries themselves are never affected. Only files
        older than ``max_age_s`` are removed so a live writer's
        in-progress temp is never yanked out from under it. Returns the
        number of files removed.
        """
        if not self.directory.exists():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for tmp in self.directory.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def __contains__(self, spec: Any) -> bool:
        return self._path(self.key(spec)).exists()

    def entry_count(self) -> int:
        """Number of stored entries (walks the directory)."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


def cache_from_env() -> ResultCache | None:
    """The cache named by ``REPRO_CACHE_DIR``, or ``None`` (default off)."""
    directory = os.environ.get(ENV_CACHE_DIR, "").strip()
    if not directory:
        return None
    return ResultCache(directory)


def resolve_cache(
    cache: ResultCache | str | Path | None | bool,
) -> ResultCache | None:
    """Normalize a cache argument: instance, directory, or ``None``.

    ``None`` falls through to the environment toggle so CLI layers can
    pass their ``--cache`` value straight in; ``False`` disables the
    cache even when ``REPRO_CACHE_DIR`` is set.
    """
    if cache is None:
        return cache_from_env()
    if isinstance(cache, bool):
        return cache_from_env() if cache else None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
