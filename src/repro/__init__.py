"""Thermal time shifting: PCM-enabled warehouse-scale computer simulation.

A reproduction of Skach et al., "Thermal Time Shifting: Leveraging Phase
Change Materials to Reduce Cooling Costs in Warehouse-Scale Computers"
(ISCA 2015).

Layers, bottom up:

* :mod:`repro.materials` — phase change materials (enthalpy method,
  Table 1 library, selection, cost).
* :mod:`repro.thermal` — the server-level thermal substrate standing in
  for ANSYS Icepak: lumped RC networks, quasi-steady airflow with a
  blockage model, transient and steady-state solvers.
* :mod:`repro.server` — the three evaluated platforms (1U RD330-class,
  2U X4470-class, Open Compute blade), wax containers, and the
  characterization that condenses a chassis into the lumped per-server
  model the cluster simulator consumes.
* :mod:`repro.workload` — the synthetic two-day Google trace and job
  arrival generation.
* :mod:`repro.dcsim` — the event-based datacenter simulator (round-robin
  load balancing, DVFS, room thermal model, throttling policies).
* :mod:`repro.cooling` / :mod:`repro.tco` — cooling plant provisioning
  and the Table 2 / Equation 1 cost model.
* :mod:`repro.core` — the paper's two headline studies (Sections 5.1 and
  5.2) and the melting-point optimizer.
* :mod:`repro.validation` — the Figure 4 validation harness.
* :mod:`repro.experiments` — one runnable experiment per table/figure.

Quickstart::

    from repro import (
        CoolingLoadStudy, one_u_commodity, synthesize_google_trace,
    )

    trace = synthesize_google_trace().total
    outcome = CoolingLoadStudy(one_u_commodity(), trace).run()
    print(f"peak cooling load reduced {outcome.peak_reduction_fraction:.1%}")
"""

from repro.core import (
    CoolingLoadOutcome,
    CoolingLoadStudy,
    MeltingPointSearch,
    ThroughputOutcome,
    ThroughputStudy,
    optimize_melting_point,
)
from repro.materials import (
    COMMERCIAL_PARAFFIN,
    EICOSANE,
    PCMMaterial,
    PCMSample,
    PhaseState,
    commercial_paraffin_with_melting_point,
    select_material,
)
from repro.server import (
    PlatformSpec,
    characterize_platform,
    open_compute_blade,
    one_u_commodity,
    platform_by_name,
    two_u_commodity,
)
from repro.workload import LoadTrace, synthesize_google_trace
from repro.dcsim import (
    ClusterTopology,
    DatacenterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.experiments import run_experiment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # materials
    "PCMMaterial",
    "PCMSample",
    "PhaseState",
    "EICOSANE",
    "COMMERCIAL_PARAFFIN",
    "commercial_paraffin_with_melting_point",
    "select_material",
    # server platforms
    "PlatformSpec",
    "one_u_commodity",
    "two_u_commodity",
    "open_compute_blade",
    "platform_by_name",
    "characterize_platform",
    # workload
    "LoadTrace",
    "synthesize_google_trace",
    # simulator
    "ClusterTopology",
    "DatacenterSimulator",
    "SimulationConfig",
    "SimulationResult",
    # core studies
    "CoolingLoadStudy",
    "CoolingLoadOutcome",
    "ThroughputStudy",
    "ThroughputOutcome",
    "MeltingPointSearch",
    "optimize_melting_point",
    # experiments
    "run_experiment",
]
