"""Load traces: time series of normalized datacenter utilization.

A :class:`LoadTrace` maps time (seconds) to offered load as a fraction of
cluster capacity, in [0, 1]. Traces support the normalization the paper
applies to the Google data ("normalized for a 50% average load and 95%
peak load"), resampling, tiling to longer horizons, and interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class LoadTrace:
    """A piecewise-linear utilization trace.

    ``times_s`` must be strictly increasing and start at 0; ``values`` are
    offered load fractions, non-negative (values above 1 represent demand
    exceeding capacity and are legal — the simulator decides what happens
    to the excess).
    """

    times_s: np.ndarray
    values: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "values", values)
        if times.ndim != 1 or values.ndim != 1:
            raise WorkloadError("trace arrays must be one-dimensional")
        if len(times) != len(values):
            raise WorkloadError(
                f"times ({len(times)}) and values ({len(values)}) differ in length"
            )
        if len(times) < 2:
            raise WorkloadError("a trace needs at least two samples")
        if not np.all(np.diff(times) > 0):
            raise WorkloadError("trace times must be strictly increasing")
        if abs(times[0]) > 1e-9:
            raise WorkloadError(f"trace must start at t=0, got {times[0]}")
        if np.any(values < 0):
            raise WorkloadError("trace values must be non-negative")
        if not np.all(np.isfinite(values)):
            raise WorkloadError("trace values must be finite")

    # -- queries ----------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Trace horizon in seconds."""
        return float(self.times_s[-1])

    @property
    def peak(self) -> float:
        """Maximum load."""
        return float(np.max(self.values))

    @property
    def average(self) -> float:
        """Time-weighted average load (trapezoidal)."""
        return float(
            np.trapezoid(self.values, self.times_s) / self.duration_s
        )

    def value_at(self, time_s: float | np.ndarray) -> float | np.ndarray:
        """Load at a time (linear interpolation, clamped at the ends)."""
        return np.interp(time_s, self.times_s, self.values)

    def as_schedule(self):
        """Callable time -> load, clipped to [0, 1] for direct use as a
        server utilization schedule."""

        def schedule(time_s: float) -> float:
            return float(np.clip(self.value_at(time_s), 0.0, 1.0))

        return schedule

    # -- transforms -----------------------------------------------------------

    def normalized(self, average: float = 0.5, peak: float = 0.95) -> "LoadTrace":
        """Affinely rescale so the trace has the given average and peak.

        This is the paper's normalization of the Google trace. The affine
        map ``a * x + b`` preserves the shape; it exists whenever the trace
        is not constant. Raises if the result would leave [0, ∞).
        """
        if not 0.0 < average < peak:
            raise WorkloadError(
                f"need 0 < average < peak, got average={average}, peak={peak}"
            )
        current_peak = self.peak
        current_average = self.average
        if current_peak - current_average < 1e-12:
            raise WorkloadError("cannot normalize a constant trace")
        scale = (peak - average) / (current_peak - current_average)
        offset = average - scale * current_average
        values = scale * self.values + offset
        if np.any(values < 0):
            raise WorkloadError(
                "normalization drives the trace negative; requested "
                "average/peak are incompatible with its shape"
            )
        return LoadTrace(self.times_s.copy(), values, name=self.name)

    def scaled(self, factor: float) -> "LoadTrace":
        """Multiply the trace by a constant factor."""
        if factor < 0:
            raise WorkloadError(f"scale factor must be non-negative, got {factor}")
        return LoadTrace(self.times_s.copy(), self.values * factor, name=self.name)

    def resampled(self, interval_s: float) -> "LoadTrace":
        """Resample onto a regular grid of the given interval."""
        if interval_s <= 0:
            raise WorkloadError(f"interval must be positive, got {interval_s}")
        n = int(np.floor(self.duration_s / interval_s)) + 1
        times = np.arange(n) * interval_s
        return LoadTrace(times, self.value_at(times), name=self.name)

    def tiled(self, repetitions: int) -> "LoadTrace":
        """Repeat the trace end-to-end (diurnal cycles over many days).

        The first sample of each repetition is dropped to keep times
        strictly increasing; the trace should be periodic for this to make
        physical sense.
        """
        if repetitions <= 0:
            raise WorkloadError(f"repetitions must be positive, got {repetitions}")
        if repetitions == 1:
            return self
        times = [self.times_s]
        values = [self.values]
        for i in range(1, repetitions):
            times.append(self.times_s[1:] + i * self.duration_s)
            values.append(self.values[1:])
        return LoadTrace(
            np.concatenate(times), np.concatenate(values), name=self.name
        )

    def shifted(self, offset_s: float) -> "LoadTrace":
        """Rotate the trace in time (periodic shift), preserving both the
        t=0 origin and the full period so the duration is unchanged."""
        period = self.duration_s
        times = np.asarray(self.times_s)
        shifted_times = np.mod(times - offset_s, period)
        order = np.argsort(shifted_times, kind="stable")
        new_times = shifted_times[order]
        new_values = np.asarray(self.values)[order]
        # Re-anchor at zero.
        if new_times[0] > 1e-9:
            new_times = np.concatenate([[0.0], new_times])
            new_values = np.concatenate([[new_values[-1]], new_values])
        # Deduplicate any coincident points introduced by the wrap.
        keep = np.concatenate([[True], np.diff(new_times) > 1e-9])
        new_times = new_times[keep]
        new_values = new_values[keep]
        # Close the period so the shifted trace spans the same horizon.
        if new_times[-1] < period - 1e-9:
            new_times = np.concatenate([new_times, [period]])
            new_values = np.concatenate([new_values, [new_values[0]]])
        return LoadTrace(new_times, new_values, name=self.name)

    def __add__(self, other: "LoadTrace") -> "LoadTrace":
        """Pointwise sum on the union grid of both traces."""
        if not isinstance(other, LoadTrace):
            return NotImplemented
        times = np.union1d(self.times_s, other.times_s)
        values = self.value_at(times) + other.value_at(times)
        return LoadTrace(times, values, name=f"{self.name}+{other.name}")
