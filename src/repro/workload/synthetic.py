"""Parametric workload scenario generators beyond the Google trace.

The paper notes "the best melting temperature is determined on the shape
and length of the load trace" (Section 5.1). These generators produce the
shape families needed to study that sensitivity:

* :func:`diurnal_trace` — a single smooth daily hump with tunable peak
  sharpness and trough depth;
* :func:`double_peak_trace` — morning and evening peaks with a midday dip
  (office-hours interactive traffic);
* :func:`weekday_weekend_trace` — a work-week cycle where weekend days
  run at a fraction of weekday load;
* :func:`flat_trace` — a constant load (the degenerate case where no
  amount of PCM helps: nothing to shift);
* :func:`bursty_trace` — a diurnal base with deterministic load spikes
  (flash crowds), exercising short-horizon absorption.

All generators are deterministic and return normalized
:class:`~repro.workload.trace.LoadTrace` objects unless normalization is
impossible (the flat trace).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, days
from repro.workload.trace import LoadTrace

DEFAULT_INTERVAL_S = 300.0


def _grid(duration_s: float, interval_s: float) -> tuple[np.ndarray, np.ndarray]:
    if duration_s <= 0 or interval_s <= 0:
        raise WorkloadError("duration and interval must be positive")
    n = int(np.floor(duration_s / interval_s)) + 1
    times = np.arange(n) * interval_s
    hours = (times / SECONDS_PER_HOUR) % 24.0
    return times, hours


def _bump(hours: np.ndarray, peak_hour: float, sharpness: float) -> np.ndarray:
    phase = 2.0 * np.pi * (hours - peak_hour) / 24.0
    return np.exp(sharpness * (np.cos(phase) - 1.0))


def diurnal_trace(
    duration_s: float = days(2.0),
    interval_s: float = DEFAULT_INTERVAL_S,
    peak_hour: float = 13.5,
    sharpness: float = 3.0,
    trough: float = 0.3,
    average: float = 0.5,
    peak: float = 0.95,
) -> LoadTrace:
    """A single daily hump; higher ``sharpness`` narrows the peak."""
    if sharpness <= 0:
        raise WorkloadError("sharpness must be positive")
    if not 0.0 <= trough < 1.0:
        raise WorkloadError("trough must be in [0, 1)")
    times, hours = _grid(duration_s, interval_s)
    shape = trough + (1.0 - trough) * _bump(hours, peak_hour, sharpness)
    return LoadTrace(times, shape, name="diurnal").normalized(average, peak)


def double_peak_trace(
    duration_s: float = days(2.0),
    interval_s: float = DEFAULT_INTERVAL_S,
    morning_hour: float = 10.0,
    evening_hour: float = 20.0,
    sharpness: float = 5.0,
    trough: float = 0.3,
    average: float = 0.5,
    peak: float = 0.95,
) -> LoadTrace:
    """Two daily peaks with a midday dip between them."""
    if not morning_hour < evening_hour:
        raise WorkloadError("morning peak must precede the evening peak")
    times, hours = _grid(duration_s, interval_s)
    shape = trough + (1.0 - trough) * 0.5 * (
        _bump(hours, morning_hour, sharpness)
        + _bump(hours, evening_hour, sharpness)
    )
    return LoadTrace(times, shape, name="double-peak").normalized(average, peak)


def weekday_weekend_trace(
    weeks: int = 1,
    interval_s: float = DEFAULT_INTERVAL_S,
    weekend_fraction: float = 0.5,
    sharpness: float = 3.0,
    average: float = 0.5,
    peak: float = 0.95,
) -> LoadTrace:
    """A 7-day cycle: five weekday diurnals, two damped weekend days."""
    if weeks <= 0:
        raise WorkloadError("weeks must be positive")
    if not 0.0 < weekend_fraction <= 1.0:
        raise WorkloadError("weekend fraction must be in (0, 1]")
    duration = weeks * 7 * SECONDS_PER_DAY
    times, hours = _grid(duration, interval_s)
    day_index = (times // SECONDS_PER_DAY).astype(int) % 7
    weekday = day_index < 5
    shape = 0.3 + 0.7 * _bump(hours, 13.5, sharpness)
    shape = np.where(weekday, shape, weekend_fraction * shape)
    return LoadTrace(times, shape, name="weekly").normalized(average, peak)


def flat_trace(
    level: float = 0.5,
    duration_s: float = days(2.0),
    interval_s: float = DEFAULT_INTERVAL_S,
) -> LoadTrace:
    """A constant load: the control case where time shifting buys nothing."""
    if not 0.0 <= level <= 1.0:
        raise WorkloadError("level must be in [0, 1]")
    times, _ = _grid(duration_s, interval_s)
    return LoadTrace(times, np.full(len(times), level), name="flat")


def bursty_trace(
    duration_s: float = days(2.0),
    interval_s: float = DEFAULT_INTERVAL_S,
    burst_hours: tuple[float, ...] = (11.0, 15.0, 21.0),
    burst_magnitude: float = 0.5,
    burst_width_hours: float = 0.5,
    average: float = 0.5,
    peak: float = 0.95,
) -> LoadTrace:
    """A diurnal base plus short deterministic flash-crowd spikes."""
    if burst_magnitude < 0:
        raise WorkloadError("burst magnitude must be non-negative")
    if burst_width_hours <= 0:
        raise WorkloadError("burst width must be positive")
    times, hours = _grid(duration_s, interval_s)
    shape = 0.3 + 0.55 * _bump(hours, 13.5, 2.5)
    for burst_hour in burst_hours:
        distance = np.minimum(
            np.abs(hours - burst_hour), 24.0 - np.abs(hours - burst_hour)
        )
        shape = shape + burst_magnitude * np.exp(
            -0.5 * (distance / burst_width_hours) ** 2
        )
    return LoadTrace(times, shape, name="bursty").normalized(average, peak)


#: Scenario registry used by the trace-shape sensitivity study.
SCENARIOS = {
    "diurnal": diurnal_trace,
    "double_peak": double_peak_trace,
    "bursty": bursty_trace,
}
