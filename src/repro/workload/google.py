"""Synthetic two-day Google-like workload trace (paper Figure 10).

The paper uses traffic for three job types — Web Search, Social Networking
(Orkut), and MapReduce ("FBmr" in Figure 10's legend) — from the Google
transparency report for November 17-18, 2010, normalized to 50% average /
95% peak for a 1008-server cluster. Google changed the report format after
2011 and the original series is no longer published, so this module
synthesizes a deterministic trace with the same published structure:

* **Web Search** — a strong diurnal wave peaking in the early afternoon
  and bottoming out around 3-4 AM, with a secondary evening shoulder.
* **Orkut** — a social-networking diurnal peaking in the evening.
* **MapReduce** — batch work: a flatter base with overnight batch windows
  (operators schedule batch jobs off-peak).

Each component carries small deterministic high-frequency structure
(seeded) so the trace is not suspiciously smooth; the aggregate is then
normalized exactly as the paper normalizes its trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, days
from repro.workload.trace import LoadTrace

#: Default sampling interval of the synthetic trace (5 minutes).
DEFAULT_INTERVAL_S = 300.0

#: Relative magnitudes of the three job classes in the aggregate. Search
#: dominates, consistent with Figure 10.
DEFAULT_CLASS_WEIGHTS = {"search": 0.5, "orkut": 0.3, "mapreduce": 0.2}


@dataclass(frozen=True)
class GoogleTraceComponents:
    """The synthesized workload: per-class traces plus the normalized total."""

    search: LoadTrace
    orkut: LoadTrace
    mapreduce: LoadTrace
    total: LoadTrace

    def components(self) -> dict[str, LoadTrace]:
        """Per-class traces keyed by class name."""
        return {
            "search": self.search,
            "orkut": self.orkut,
            "mapreduce": self.mapreduce,
        }

    def class_fraction_at(self, name: str, time_s: float) -> float:
        """Fraction of total load contributed by one class at a time."""
        component = self.components()[name]
        total = self.total.value_at(time_s)
        if total <= 0:
            return 0.0
        return float(component.value_at(time_s) / total)


def _diurnal(
    hours_of_day: np.ndarray,
    peak_hour: float,
    sharpness: float,
    base: float,
) -> np.ndarray:
    """A smooth 24-hour-periodic bump peaking at ``peak_hour``.

    Uses a von-Mises-style exponential-cosine shape: ``sharpness`` controls
    how concentrated the peak is, ``base`` the off-peak floor.
    """
    phase = 2.0 * np.pi * (hours_of_day - peak_hour) / 24.0
    bump = np.exp(sharpness * (np.cos(phase) - 1.0))
    return base + (1.0 - base) * bump


def _texture(rng: np.random.Generator, n: int, amplitude: float) -> np.ndarray:
    """Smooth deterministic high-frequency structure (random walk, zero-mean)."""
    steps = rng.normal(0.0, 1.0, n)
    walk = np.cumsum(steps)
    walk -= np.linspace(walk[0], walk[-1], n)  # remove drift so days repeat
    scale = np.max(np.abs(walk)) or 1.0
    return amplitude * walk / scale


def synthesize_google_trace(
    duration_s: float = days(2.0),
    interval_s: float = DEFAULT_INTERVAL_S,
    average: float = 0.5,
    peak: float = 0.95,
    class_weights: dict[str, float] | None = None,
    seed: int = 20101117,
) -> GoogleTraceComponents:
    """Build the two-day, three-class synthetic Google trace.

    Parameters
    ----------
    duration_s / interval_s:
        Horizon and sampling interval.
    average / peak:
        Normalization targets of the aggregate (the paper's 50%/95%).
    class_weights:
        Relative magnitude of search/orkut/mapreduce in the aggregate.
    seed:
        Seed of the deterministic texture generator (default encodes the
        original trace's start date).
    """
    if duration_s < SECONDS_PER_DAY:
        raise WorkloadError("trace must cover at least one day")
    weights = dict(DEFAULT_CLASS_WEIGHTS)
    if class_weights:
        unknown = set(class_weights) - set(weights)
        if unknown:
            raise WorkloadError(f"unknown workload classes: {sorted(unknown)}")
        weights.update(class_weights)
    if any(w < 0 for w in weights.values()) or sum(weights.values()) <= 0:
        raise WorkloadError(f"invalid class weights: {weights}")

    n = int(np.floor(duration_s / interval_s)) + 1
    times = np.arange(n) * interval_s
    hours_of_day = (times / SECONDS_PER_HOUR) % 24.0
    rng = np.random.default_rng(seed)

    # Web search: early-afternoon peak plus a smaller evening shoulder,
    # deep overnight trough.
    search_shape = 0.85 * _diurnal(hours_of_day, peak_hour=13.5, sharpness=4.5, base=0.30)
    search_shape += 0.15 * _diurnal(hours_of_day, peak_hour=17.0, sharpness=4.0, base=0.0)
    search_shape += _texture(rng, n, 0.035)

    # Orkut: social traffic peaks in the late afternoon / early evening;
    # together with search's shoulder the aggregate forms the single broad
    # daily hump of Figure 10.
    orkut_shape = _diurnal(hours_of_day, peak_hour=16.5, sharpness=2.0, base=0.35)
    orkut_shape += _texture(rng, n, 0.045)

    # MapReduce: flatter, with overnight batch windows.
    mapreduce_shape = 0.55 + 0.45 * _diurnal(
        hours_of_day, peak_hour=2.0, sharpness=2.5, base=0.0
    )
    mapreduce_shape += _texture(rng, n, 0.06)

    shapes = {
        "search": np.clip(search_shape, 0.02, None),
        "orkut": np.clip(orkut_shape, 0.02, None),
        "mapreduce": np.clip(mapreduce_shape, 0.02, None),
    }

    # Weight each class (normalizing each shape to unit mean first so the
    # weights control the aggregate composition directly).
    components = {}
    for name, shape in shapes.items():
        components[name] = weights[name] * shape / np.mean(shape)

    raw_total = sum(components.values())
    raw_trace = LoadTrace(times, raw_total, name="google-total")
    total = raw_trace.normalized(average=average, peak=peak)

    # Split the normalized total back into classes by each class's
    # instantaneous share of the raw aggregate; the components then sum to
    # the total exactly and stay non-negative.
    normalized_components = {}
    for name, values in components.items():
        share = values / raw_total
        normalized_components[name] = LoadTrace(
            times, total.values * share, name=f"google-{name}"
        )

    return GoogleTraceComponents(
        search=normalized_components["search"],
        orkut=normalized_components["orkut"],
        mapreduce=normalized_components["mapreduce"],
        total=total,
    )
