"""Datacenter workload traces.

The paper drives its scale-out study with a two-day Google trace (November
17-18, 2010) containing Web Search, Orkut (social networking), and
MapReduce traffic, normalized to a 50% average and 95% peak load for a
1008-server cluster (Section 4.2, Figure 10). Google stopped publishing
that data after 2011, so :mod:`repro.workload.google` synthesizes a
deterministic trace with the published shape and normalization; the rest of
the pipeline consumes any :class:`~repro.workload.trace.LoadTrace`.
"""

from repro.workload.trace import LoadTrace
from repro.workload.google import (
    GoogleTraceComponents,
    synthesize_google_trace,
)
from repro.workload.io import load_trace, save_trace
from repro.workload.jobs import JobClass, generate_arrivals
from repro.workload.synthetic import (
    bursty_trace,
    diurnal_trace,
    double_peak_trace,
    flat_trace,
    weekday_weekend_trace,
)

__all__ = [
    "load_trace",
    "save_trace",
    "diurnal_trace",
    "double_peak_trace",
    "weekday_weekend_trace",
    "flat_trace",
    "bursty_trace",
    "LoadTrace",
    "GoogleTraceComponents",
    "synthesize_google_trace",
    "JobClass",
    "generate_arrivals",
]
