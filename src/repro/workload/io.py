"""Load-trace persistence: CSV read/write.

Operators bring their own load traces; this module reads and writes the
obvious interchange format — two columns, time in seconds and load
fraction — so measured traces drop into every study that takes a
:class:`~repro.workload.trace.LoadTrace`.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.workload.trace import LoadTrace

#: Canonical column headers.
TIME_COLUMN = "time_s"
LOAD_COLUMN = "load"


def save_trace(trace: LoadTrace, path: str | Path) -> Path:
    """Write a trace to CSV; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([TIME_COLUMN, LOAD_COLUMN])
        for time_s, value in zip(trace.times_s, trace.values):
            writer.writerow([repr(float(time_s)), repr(float(value))])
    return target


def load_trace(path: str | Path, name: str | None = None) -> LoadTrace:
    """Read a trace from CSV.

    Accepts the canonical header, a headerless two-column file, or any
    two-column file whose first row is non-numeric (treated as a header).
    Times must be strictly increasing and start at zero — the same
    contract every generated trace satisfies.
    """
    source = Path(path)
    if not source.exists():
        raise WorkloadError(f"trace file not found: {source}")
    times: list[float] = []
    values: list[float] = []
    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        for row_index, row in enumerate(reader):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 2:
                raise WorkloadError(
                    f"{source}: row {row_index + 1} has fewer than two columns"
                )
            try:
                time_s = float(row[0])
                value = float(row[1])
            except ValueError:
                if row_index == 0:
                    continue  # header row
                raise WorkloadError(
                    f"{source}: row {row_index + 1} is not numeric: {row[:2]}"
                ) from None
            times.append(time_s)
            values.append(value)
    if len(times) < 2:
        raise WorkloadError(f"{source}: needs at least two samples")
    return LoadTrace(
        np.asarray(times), np.asarray(values), name=name or source.stem
    )
