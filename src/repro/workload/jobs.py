"""Job classes and arrival generation for the event-driven simulator.

DCSim "models job arrival, load balancing, and work completion for the
input job distribution traces" (paper Section 4.2). This module converts a
:class:`~repro.workload.trace.LoadTrace` of offered load into a concrete
stream of job arrivals: a non-homogeneous Poisson process whose rate tracks
the trace, thinned per job class by the class mix.

Offered load ``u`` on a cluster of ``n`` servers, each able to run
``slots`` jobs with mean service time ``s``, corresponds to an arrival
rate ``lambda(t) = u(t) * n * slots / s``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.obs import get_registry
from repro.workload.trace import LoadTrace


@dataclass(frozen=True)
class JobClass:
    """A class of work with its service demand.

    ``service_time_s`` is the mean service time of one job on one slot at
    nominal frequency; ``weight`` is the class's share of arrivals.
    """

    name: str
    service_time_s: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise WorkloadError(
                f"job class {self.name!r}: service time must be positive"
            )
        if self.weight < 0:
            raise WorkloadError(
                f"job class {self.name!r}: weight must be non-negative"
            )


#: Job classes mirroring the paper's three workloads. Interactive search
#: requests are short; social-network page loads a bit longer; MapReduce
#: tasks are minutes-long batch units.
DEFAULT_JOB_CLASSES = (
    JobClass(name="search", service_time_s=120.0, weight=0.5),
    JobClass(name="orkut", service_time_s=240.0, weight=0.3),
    JobClass(name="mapreduce", service_time_s=600.0, weight=0.2),
)


@dataclass(frozen=True)
class Arrival:
    """One job arrival: when it lands and how much work it carries."""

    time_s: float
    job_class: JobClass
    service_time_s: float


def generate_arrivals(
    trace: LoadTrace,
    server_count: int,
    slots_per_server: int = 1,
    job_classes: tuple[JobClass, ...] = DEFAULT_JOB_CLASSES,
    seed: int = 7,
    deterministic_service: bool = False,
) -> list[Arrival]:
    """Generate a job arrival stream realizing a load trace.

    Uses Ogata thinning for the non-homogeneous Poisson process: candidate
    arrivals at the trace's peak rate, accepted with probability
    ``lambda(t) / lambda_max``. Class membership is sampled by weight, and
    service times are exponential around the class mean (or exactly the
    mean when ``deterministic_service`` is set, useful for tests).

    The effective per-slot service rate uses the *mix-averaged* service
    time so that offered load matches the trace regardless of the mix.
    """
    if server_count <= 0:
        raise WorkloadError(f"server count must be positive, got {server_count}")
    if slots_per_server <= 0:
        raise WorkloadError(
            f"slots per server must be positive, got {slots_per_server}"
        )
    if not job_classes:
        raise WorkloadError("need at least one job class")
    weights = np.array([jc.weight for jc in job_classes], dtype=float)
    if weights.sum() <= 0:
        raise WorkloadError("job class weights sum to zero")
    probabilities = weights / weights.sum()
    mean_service = float(
        np.sum(probabilities * [jc.service_time_s for jc in job_classes])
    )

    capacity = server_count * slots_per_server
    peak_rate = trace.peak * capacity / mean_service
    if peak_rate <= 0:
        raise WorkloadError("trace peak is zero; no arrivals to generate")

    rng = np.random.default_rng(seed)
    arrivals: list[Arrival] = []
    time_now = 0.0
    horizon = trace.duration_s
    while True:
        time_now += rng.exponential(1.0 / peak_rate)
        if time_now >= horizon:
            break
        rate = float(trace.value_at(time_now)) * capacity / mean_service
        if rng.uniform() * peak_rate > rate:
            continue
        job_class = job_classes[rng.choice(len(job_classes), p=probabilities)]
        if deterministic_service:
            service = job_class.service_time_s
        else:
            service = float(rng.exponential(job_class.service_time_s))
        arrivals.append(
            Arrival(time_s=float(time_now), job_class=job_class, service_time_s=service)
        )
    return arrivals


# ---------------------------------------------------------------------------
# Cached arrival streams
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalStream:
    """A job arrival stream as typed column arrays.

    The array form of ``list[Arrival]`` consumed by the event engine:
    parallel float64/int64 columns of arrival time, service work, and job
    class index into ``job_classes``.
    """

    times_s: np.ndarray
    service_s: np.ndarray
    class_index: np.ndarray
    job_classes: tuple[JobClass, ...]

    def __len__(self) -> int:
        return len(self.times_s)

    def to_arrivals(self) -> list[Arrival]:
        """Materialize the stream back into :class:`Arrival` objects."""
        return [
            Arrival(
                time_s=float(t),
                job_class=self.job_classes[int(c)],
                service_time_s=float(s),
            )
            for t, s, c in zip(self.times_s, self.service_s, self.class_index)
        ]


def coerce_arrival_stream(arrivals) -> ArrivalStream:
    """Column-array view of an arrival list (no-op for streams)."""
    if isinstance(arrivals, ArrivalStream):
        return arrivals
    classes: list[JobClass] = []
    class_to_index: dict[JobClass, int] = {}
    indices = np.empty(len(arrivals), dtype=np.int64)
    times = np.empty(len(arrivals), dtype=np.float64)
    services = np.empty(len(arrivals), dtype=np.float64)
    for i, arrival in enumerate(arrivals):
        index = class_to_index.get(arrival.job_class)
        if index is None:
            index = len(classes)
            class_to_index[arrival.job_class] = index
            classes.append(arrival.job_class)
        indices[i] = index
        times[i] = arrival.time_s
        services[i] = arrival.service_time_s
    return ArrivalStream(
        times_s=times,
        service_s=services,
        class_index=indices,
        job_classes=tuple(classes),
    )


def trace_fingerprint(trace: LoadTrace) -> str:
    """SHA-256 over the trace's sample arrays (name-independent)."""
    digest = hashlib.sha256()
    for array in (trace.times_s, trace.values):
        data = np.ascontiguousarray(array, dtype=np.float64)
        digest.update(str(len(data)).encode())
        digest.update(b"|")
        digest.update(data.tobytes())
    return digest.hexdigest()


def arrival_stream_spec(
    trace: LoadTrace,
    server_count: int,
    slots_per_server: int,
    job_classes: tuple[JobClass, ...],
    seed: int,
    deterministic_service: bool,
) -> dict:
    """Content-addressable cache key of one arrival stream."""
    return {
        "schema": "repro.dcsim.arrivals/1",
        "trace": trace_fingerprint(trace),
        "server_count": int(server_count),
        "slots_per_server": int(slots_per_server),
        "job_classes": [
            [jc.name, jc.service_time_s, jc.weight] for jc in job_classes
        ],
        "seed": int(seed),
        "deterministic_service": bool(deterministic_service),
    }


#: In-process memo of recently generated streams (a 263k-job day is ~6 MB,
#: so the memo is kept small and LRU-evicted).
_STREAM_MEMO: OrderedDict[str, ArrivalStream] = OrderedDict()
_STREAM_MEMO_LIMIT = 8


def clear_arrival_memo() -> None:
    """Drop the in-process arrival-stream memo (tests, memory pressure)."""
    _STREAM_MEMO.clear()


def cached_arrival_stream(
    trace: LoadTrace,
    server_count: int,
    slots_per_server: int = 1,
    job_classes: tuple[JobClass, ...] = DEFAULT_JOB_CLASSES,
    seed: int = 7,
    deterministic_service: bool = False,
    cache=None,
) -> ArrivalStream:
    """Memoized :func:`generate_arrivals` as an :class:`ArrivalStream`.

    Generation is deterministic in the key (trace fingerprint, cluster
    shape, seed, job-class mix), so repeated sweep arms reuse the stream
    instead of re-running Ogata thinning. Lookup order: in-process LRU
    memo, then an optional :class:`repro.runner.ResultCache` (``cache``
    accepts anything :func:`repro.runner.resolve_cache` does — by default
    the ``REPRO_CACHE_DIR`` environment toggle). Hits and misses are
    counted under ``dcsim.arrival_cache.*``.
    """
    from repro.runner.cache import MISS, resolve_cache

    obs = get_registry()
    spec = arrival_stream_spec(
        trace, server_count, slots_per_server, job_classes, seed,
        deterministic_service,
    )
    memo_key = repr(sorted(spec.items()))
    memo_hit = _STREAM_MEMO.get(memo_key)
    if memo_hit is not None:
        _STREAM_MEMO.move_to_end(memo_key)
        obs.count("dcsim.arrival_cache.hit")
        obs.count("dcsim.arrival_cache.memo_hit")
        return memo_hit

    disk = resolve_cache(cache)
    if disk is not None:
        payload = disk.get(spec)
        if payload is not MISS:
            stream = ArrivalStream(
                times_s=np.asarray(payload["times_s"], dtype=np.float64),
                service_s=np.asarray(payload["service_s"], dtype=np.float64),
                class_index=np.asarray(payload["class_index"], dtype=np.int64),
                job_classes=tuple(job_classes),
            )
            obs.count("dcsim.arrival_cache.hit")
            _memoize(memo_key, stream)
            return stream

    obs.count("dcsim.arrival_cache.miss")
    arrivals = generate_arrivals(
        trace,
        server_count=server_count,
        slots_per_server=slots_per_server,
        job_classes=job_classes,
        seed=seed,
        deterministic_service=deterministic_service,
    )
    class_to_index = {jc: i for i, jc in enumerate(job_classes)}
    stream = ArrivalStream(
        times_s=np.array([a.time_s for a in arrivals], dtype=np.float64),
        service_s=np.array([a.service_time_s for a in arrivals], dtype=np.float64),
        class_index=np.array(
            [class_to_index[a.job_class] for a in arrivals], dtype=np.int64
        ),
        job_classes=tuple(job_classes),
    )
    if disk is not None:
        disk.put(
            spec,
            {
                "times_s": stream.times_s,
                "service_s": stream.service_s,
                "class_index": stream.class_index,
            },
        )
        obs.count("dcsim.arrival_cache.store")
    _memoize(memo_key, stream)
    return stream


def _memoize(key: str, stream: ArrivalStream) -> None:
    _STREAM_MEMO[key] = stream
    _STREAM_MEMO.move_to_end(key)
    while len(_STREAM_MEMO) > _STREAM_MEMO_LIMIT:
        _STREAM_MEMO.popitem(last=False)
