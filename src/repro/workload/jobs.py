"""Job classes and arrival generation for the event-driven simulator.

DCSim "models job arrival, load balancing, and work completion for the
input job distribution traces" (paper Section 4.2). This module converts a
:class:`~repro.workload.trace.LoadTrace` of offered load into a concrete
stream of job arrivals: a non-homogeneous Poisson process whose rate tracks
the trace, thinned per job class by the class mix.

Offered load ``u`` on a cluster of ``n`` servers, each able to run
``slots`` jobs with mean service time ``s``, corresponds to an arrival
rate ``lambda(t) = u(t) * n * slots / s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.trace import LoadTrace


@dataclass(frozen=True)
class JobClass:
    """A class of work with its service demand.

    ``service_time_s`` is the mean service time of one job on one slot at
    nominal frequency; ``weight`` is the class's share of arrivals.
    """

    name: str
    service_time_s: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise WorkloadError(
                f"job class {self.name!r}: service time must be positive"
            )
        if self.weight < 0:
            raise WorkloadError(
                f"job class {self.name!r}: weight must be non-negative"
            )


#: Job classes mirroring the paper's three workloads. Interactive search
#: requests are short; social-network page loads a bit longer; MapReduce
#: tasks are minutes-long batch units.
DEFAULT_JOB_CLASSES = (
    JobClass(name="search", service_time_s=120.0, weight=0.5),
    JobClass(name="orkut", service_time_s=240.0, weight=0.3),
    JobClass(name="mapreduce", service_time_s=600.0, weight=0.2),
)


@dataclass(frozen=True)
class Arrival:
    """One job arrival: when it lands and how much work it carries."""

    time_s: float
    job_class: JobClass
    service_time_s: float


def generate_arrivals(
    trace: LoadTrace,
    server_count: int,
    slots_per_server: int = 1,
    job_classes: tuple[JobClass, ...] = DEFAULT_JOB_CLASSES,
    seed: int = 7,
    deterministic_service: bool = False,
) -> list[Arrival]:
    """Generate a job arrival stream realizing a load trace.

    Uses Ogata thinning for the non-homogeneous Poisson process: candidate
    arrivals at the trace's peak rate, accepted with probability
    ``lambda(t) / lambda_max``. Class membership is sampled by weight, and
    service times are exponential around the class mean (or exactly the
    mean when ``deterministic_service`` is set, useful for tests).

    The effective per-slot service rate uses the *mix-averaged* service
    time so that offered load matches the trace regardless of the mix.
    """
    if server_count <= 0:
        raise WorkloadError(f"server count must be positive, got {server_count}")
    if slots_per_server <= 0:
        raise WorkloadError(
            f"slots per server must be positive, got {slots_per_server}"
        )
    if not job_classes:
        raise WorkloadError("need at least one job class")
    weights = np.array([jc.weight for jc in job_classes], dtype=float)
    if weights.sum() <= 0:
        raise WorkloadError("job class weights sum to zero")
    probabilities = weights / weights.sum()
    mean_service = float(
        np.sum(probabilities * [jc.service_time_s for jc in job_classes])
    )

    capacity = server_count * slots_per_server
    peak_rate = trace.peak * capacity / mean_service
    if peak_rate <= 0:
        raise WorkloadError("trace peak is zero; no arrivals to generate")

    rng = np.random.default_rng(seed)
    arrivals: list[Arrival] = []
    time_now = 0.0
    horizon = trace.duration_s
    while True:
        time_now += rng.exponential(1.0 / peak_rate)
        if time_now >= horizon:
            break
        rate = float(trace.value_at(time_now)) * capacity / mean_service
        if rng.uniform() * peak_rate > rate:
            continue
        job_class = job_classes[rng.choice(len(job_classes), p=probabilities)]
        if deterministic_service:
            service = job_class.service_time_s
        else:
            service = float(rng.exponential(job_class.service_time_s))
        arrivals.append(
            Arrival(time_s=float(time_now), job_class=job_class, service_time_s=service)
        )
    return arrivals
