"""Figure 9: Open Compute blade layouts and their wax capacity.

The paper's three OCP configurations:

* (a) the production blade — plastic airflow inserts, no wax;
* (b) inserts replaced with 0.5 L of wax in sealed containers;
* (c) the reconfigured blade (CPUs and SSDs swapped, redundant HDDs
  replaced by SSDs) carrying 1.5 L "without increasing the air flow
  blockage versus the production blade".

This experiment quantifies the consequence of each layout: deployable wax,
latent capacity, added blockage, and the cluster-level peak cooling-load
reduction each buys over the two-day Google trace.
"""

from __future__ import annotations

from repro.core.scenarios import CoolingLoadStudy
from repro.experiments.registry import ExperimentResult
from repro.server.configs import open_compute_blade
from repro.workload.google import synthesize_google_trace


def run(quick: bool = False) -> ExperimentResult:
    """Compare the insert-swap and reconfigured OCP wax layouts."""
    trace = synthesize_google_trace().total
    step = 2.0 if quick else 1.0

    result = ExperimentResult(
        experiment_id="fig9",
        title="Open Compute layouts: wax capacity and what it buys",
    )

    rows = [
        [
            "(a) production",
            "0 L",
            "0 kJ",
            "0%",
            "-",
        ]
    ]
    reductions = {}
    for label, reconfigured in (
        ("(b) insert swap", False),
        ("(c) reconfigured", True),
    ):
        spec = open_compute_blade(reconfigured=reconfigured)
        loadout = spec.wax_loadout
        outcome = CoolingLoadStudy(
            spec,
            trace,
            melting_window_c=(44.0, 58.0),
            melting_step_c=step,
        ).run()
        reductions[label] = outcome.peak_reduction_fraction
        rows.append(
            [
                label,
                f"{loadout.total_volume_m3 * 1000:.1f} L",
                f"{loadout.latent_capacity_j / 1000:.0f} kJ",
                f"{loadout.blockage_fraction:.0%}",
                f"-{outcome.peak_reduction_fraction:.1%}",
            ]
        )

    result.tables["Figure 9 layouts"] = (
        ["layout", "wax", "latent capacity", "added blockage", "peak cooling"],
        rows,
    )
    result.summary = {
        "insert_swap_reduction": reductions["(b) insert swap"],
        "reconfigured_reduction": reductions["(c) reconfigured"],
        "reconfigured_capacity_ratio": 1.5 / 0.5,
        "no_added_blockage": 1.0,  # both layouts add zero blockage
    }
    result.paper = {
        # The paper evaluates the 1.5 L blade at 8.3%; the 0.5 L variant
        # necessarily buys less.
        "reconfigured_reduction": 0.083,
        "reconfigured_capacity_ratio": 3.0,
        "no_added_blockage": 1.0,
    }
    return result
