"""Extension studies the paper motivates but does not evaluate.

1. **Energy-cost shifting** (Figure 1's "off-peak time: power is
   cheaper" / "nighttime ... more natural cooling"): price the cooling
   electricity of the Section 5.1 arms under the paper's $0.13/$0.08
   tariff and an ambient-dependent chiller COP.
2. **Chilled water vs PCM** (the Section 6 comparison against TE-Shave):
   shave the same cluster cooling-load trace with a chilled-water tank of
   equal thermal capacity, and account for its pumping power, standing
   losses, floor space, and capital.
3. **Cycling stability and lifetime** (Section 2.1's Table 1 stability
   column as a lifetime model): which material classes survive a 4-year
   server deployment of daily melt/freeze cycles?
4. **Trace-shape sensitivity** ("the best melting temperature is
   determined on the shape and length of the load trace"): re-run the
   melting-point optimization against diurnal, double-peak, and bursty
   workloads.
"""

from __future__ import annotations

import numpy as np

from repro.cooling.chilled_water import shave_with_tank, tank_matching_pcm_capacity
from repro.core.melting_point import optimize_melting_point
from repro.core.scenarios import CoolingLoadStudy, cached_characterization
from repro.dcsim.cluster import ClusterTopology
from repro.experiments.registry import ExperimentResult
from repro.materials.degradation import assess_lifetime
from repro.materials.library import (
    MATERIAL_CLASSES,
    commercial_paraffin_with_melting_point,
)
from repro.server.configs import one_u_commodity
from repro.tco.energy import compare_energy_shift
from repro.workload.google import synthesize_google_trace
from repro.workload.synthetic import SCENARIOS


def run(quick: bool = False) -> ExperimentResult:
    """Run all four extension studies on the 1U platform."""
    spec = one_u_commodity()
    characterization = cached_characterization(spec)
    trace = synthesize_google_trace().total
    topology = ClusterTopology(server_count=1008)

    result = ExperimentResult(
        experiment_id="extensions",
        title="Extension studies: energy arbitrage, chilled-water baseline, "
        "lifetime, trace shapes",
    )

    # ------------------------------------------------------------------
    # 1. Energy-cost shifting.
    # ------------------------------------------------------------------
    study = CoolingLoadStudy(
        spec,
        trace,
        topology=topology,
        melting_step_c=2.0 if quick else 1.0,
    )
    outcome = study.run()
    energy = compare_energy_shift(outcome.baseline, outcome.with_pcm)
    result.tables["cooling electricity under the paper's tariff"] = (
        ["arm", "energy (kWh)", "off-peak share", "cost"],
        [
            [
                "no PCM",
                f"{energy.baseline.cooling_energy_kwh:.0f}",
                f"{energy.baseline.offpeak_share:.1%}",
                f"${energy.baseline.total_usd:.2f}",
            ],
            [
                "with PCM",
                f"{energy.with_pcm.cooling_energy_kwh:.0f}",
                f"{energy.with_pcm.offpeak_share:.1%}",
                f"${energy.with_pcm.total_usd:.2f}",
            ],
        ],
    )
    result.summary["energy_cost_savings_fraction"] = (
        energy.cost_savings_fraction
    )
    result.summary["offpeak_share_shift"] = energy.offpeak_shift

    # ------------------------------------------------------------------
    # 2. Chilled water tank vs PCM on the same trace.
    # ------------------------------------------------------------------
    loadout = spec.wax_loadout
    tank = tank_matching_pcm_capacity(
        loadout.latent_capacity_j,
        topology.server_count,
        discharge_ua_w_per_k=4_000.0,
        pump_power_w=1_500.0,
        floor_area_m2=12.0,
    )
    pcm_peak = outcome.with_pcm.peak_cooling_load_w
    shave = shave_with_tank(
        outcome.baseline.times_s,
        outcome.baseline.cooling_load_w,
        tank,
        plant_capacity_w=pcm_peak,
    )
    wax_capital = (
        loadout.total_mass_kg
        * (loadout.material.cost_usd_per_tonne or 0.0)
        / 1000.0
        + 2.0 * loadout.total_volume_m3 * 1000.0
    ) * topology.server_count
    result.tables["chilled-water tank vs in-server PCM (same joules)"] = (
        ["technology", "peak reduction", "capital", "pump energy", "standing loss", "floor space"],
        [
            [
                "in-server PCM",
                f"{outcome.peak_reduction_fraction:.1%}",
                f"${wax_capital / 1e3:.1f}k",
                "0 kWh (passive)",
                "0 (sealed, indoors)",
                "0 m^2",
            ],
            [
                "chilled water tank",
                f"{shave.peak_reduction_fraction:.1%}",
                f"${tank.capital_cost_usd / 1e3:.1f}k",
                f"{shave.pump_energy_j / 3.6e6:.0f} kWh",
                f"{shave.standing_loss_j / 3.6e6:.0f} kWh(th)",
                f"{tank.floor_area_m2:.0f} m^2",
            ],
        ],
    )
    result.summary["tank_peak_reduction"] = shave.peak_reduction_fraction
    result.summary["pcm_peak_reduction"] = outcome.peak_reduction_fraction
    result.summary["tank_capital_over_pcm"] = (
        tank.capital_cost_usd / wax_capital
    )
    result.summary["tank_standing_loss_kwh_per_two_days"] = (
        shave.standing_loss_j / 3.6e6
    )

    # ------------------------------------------------------------------
    # 3. Cycling stability -> deployment lifetime.
    # ------------------------------------------------------------------
    lifetime_rows = []
    survivors = 0
    for cls in MATERIAL_CLASSES:
        assessment = assess_lifetime(cls.stability)
        survivors += int(assessment.survives_server_lifetime)
        lifetime_rows.append(
            [
                cls.name,
                cls.stability.name.title(),
                f"{assessment.remaining_capacity_fraction:.0%}",
                "yes" if assessment.survives_server_lifetime else "NO",
            ]
        )
    result.tables["capacity left after a 4-year daily-cycle deployment"] = (
        ["class", "stability", "capacity remaining", "survives?"],
        lifetime_rows,
    )
    result.summary["classes_surviving_4_years"] = float(survivors)
    paraffin = assess_lifetime(MATERIAL_CLASSES[-1].stability)  # commercial
    result.summary["commercial_paraffin_capacity_after_4y"] = (
        paraffin.remaining_capacity_fraction
    )

    # ------------------------------------------------------------------
    # 4. Trace-shape sensitivity of the melting-point choice.
    # ------------------------------------------------------------------
    shape_rows = []
    best_by_shape = {}
    step = 2.0 if quick else 1.0
    for name, generator in SCENARIOS.items():
        scenario_trace = generator()
        search = optimize_melting_point(
            characterization,
            spec.power_model,
            scenario_trace,
            topology=topology,
            window_c=(40.0, 50.0),
            step_c=step,
        )
        best_by_shape[name] = search.best_melting_point_c
        shape_rows.append(
            [
                name,
                f"{search.best_melting_point_c:.0f} C",
                f"{search.best_reduction_fraction:.1%}",
            ]
        )
    result.tables["best melting point per workload shape"] = (
        ["workload shape", "best melt", "peak reduction"],
        shape_rows,
    )
    result.summary["melting_point_spread_across_shapes_c"] = float(
        max(best_by_shape.values()) - min(best_by_shape.values())
    )

    # ------------------------------------------------------------------
    # 5. Computational sprinting: the other end of the PCM time scale.
    # ------------------------------------------------------------------
    from repro.sprinting import SprintChip, run_sprint, run_sprint_batch

    chip = SprintChip()
    bare = run_sprint(chip, sprint_power_w=16.0, horizon_s=1800.0)
    # The PCM power sweep shares one package structure, so all three
    # sprint levels advance as one batched RK4 integration.
    sprint_powers = [12.0, 16.0, 20.0]
    sprint_sweep = run_sprint_batch(
        chip, sprint_powers, pcm_grams=10.0, horizon_s=1800.0
    )
    sprint_pcm = sprint_sweep[sprint_powers.index(16.0)]
    result.tables["sprint duration vs power (10 g eicosane)"] = (
        ["sprint power", "duration", "hit junction limit", "final melt"],
        [
            [
                f"{outcome.sprint_power_w:.0f} W",
                f"{outcome.duration_s:.0f} s",
                "yes" if outcome.hit_limit else "no",
                f"{outcome.final_melt_fraction:.0%}",
            ]
            for outcome in sprint_sweep
        ],
    )
    datacenter_shift_s = 6.0 * 3600.0  # hours-scale melt window (Fig 11)
    result.tables["PCM time scales: sprinting vs thermal time shifting"] = (
        ["regime", "PCM quantity", "buffer duration", "what is reshaped"],
        [
            [
                "computational sprinting (chip)",
                "10 g eicosane",
                f"{sprint_pcm.duration_s:.0f} s sprint "
                f"(vs {bare.duration_s:.0f} s bare)",
                "the load, not the thermals",
            ],
            [
                "thermal time shifting (server)",
                "1.2-4 L commercial paraffin",
                f"~{datacenter_shift_s / 3600:.0f} h melt window",
                "the thermals, not the load",
            ],
        ],
    )
    result.summary["sprint_extension_ratio"] = (
        sprint_pcm.duration_s / bare.duration_s
    )
    result.summary["timescale_separation"] = (
        datacenter_shift_s / sprint_pcm.duration_s
    )

    # ------------------------------------------------------------------
    # 6. Geographic relocation (the paper's other thermal escape valve).
    # ------------------------------------------------------------------
    from repro.dcsim.geo import GeoPair, GeoSite
    from repro.dcsim.room import RoomModel
    from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig

    geo_topology = ClusterTopology(server_count=128 if quick else 256)
    geo_material = commercial_paraffin_with_melting_point(45.0)
    ideal = DatacenterSimulator(
        characterization,
        spec.power_model,
        geo_material,
        trace,
        topology=geo_topology,
        config=SimulationConfig(wax_enabled=False),
    ).run()
    geo_capacity = 0.836 * ideal.peak_cooling_load_w

    def geo_site(name: str, shift_s: float, wax: bool) -> GeoSite:
        return GeoSite(
            name=name,
            characterization=characterization,
            power_model=spec.power_model,
            material=geo_material,
            trace=trace.shifted(shift_s),
            room=RoomModel.sized_for_cluster(
                geo_capacity, geo_topology.server_count
            ),
            topology=geo_topology,
            wax_enabled=wax,
        )

    geo_rows = []
    geo_served = {}
    for label, shift_s, wax in (
        ("single site (no PCM)", 0.0, False),
        ("8h-offset pair, relocation only", 8 * 3600.0, False),
        ("8h-offset pair, relocation + PCM", 8 * 3600.0, True),
    ):
        if label.startswith("single"):
            from repro.dcsim.throttling import RoomTemperaturePolicy

            room = RoomModel.sized_for_cluster(
                geo_capacity, geo_topology.server_count
            )
            solo = DatacenterSimulator(
                characterization,
                spec.power_model,
                geo_material,
                trace,
                topology=geo_topology,
                room=room,
                policy=RoomTemperaturePolicy(room),
                config=SimulationConfig(wax_enabled=False),
            ).run()
            served = float(np.sum(solo.throughput) / np.sum(solo.demand))
            relocated = 0.0
        else:
            outcome_geo = GeoPair(
                geo_site("west", 0.0, wax), geo_site("east", shift_s, wax)
            ).run()
            served = outcome_geo.served_fraction
            relocated = outcome_geo.relocated_fraction
        geo_served[label] = served
        geo_rows.append([label, f"{served:.1%}", f"{relocated:.1%}"])
    result.tables["thermally constrained sites: relocation and PCM"] = (
        ["configuration", "demand served", "work relocated"],
        geo_rows,
    )
    result.summary["solo_served_fraction"] = geo_served[
        "single site (no PCM)"
    ]
    result.summary["geo_served_fraction"] = geo_served[
        "8h-offset pair, relocation only"
    ]
    result.summary["geo_pcm_served_fraction"] = geo_served[
        "8h-offset pair, relocation + PCM"
    ]

    # ------------------------------------------------------------------
    # 7. Rolling retrofit: mixed wax / legacy fleets.
    # ------------------------------------------------------------------
    from repro.dcsim.mixed import rollout_curve

    fractions = (0.0, 0.5, 1.0) if quick else (0.0, 0.25, 0.5, 0.75, 1.0)
    curve = rollout_curve(
        characterization,
        spec.power_model,
        commercial_paraffin_with_melting_point(43.0),
        trace,
        total_servers=topology.server_count,
        fractions=fractions,
    )
    result.tables["rolling retrofit: peak reduction vs wax rollout"] = (
        ["fleet equipped", "peak cooling reduction"],
        [[f"{f:.0%}", f"{r:.1%}"] for f, r in curve.items()],
    )
    result.summary["rollout_half_fleet_reduction"] = curve[0.5]
    result.summary["rollout_full_fleet_reduction"] = curve[1.0]

    result.paper = {
        # Qualitative expectations from the paper's text.
        "classes_surviving_4_years": 2.0,  # the two paraffin rows
        "pcm_peak_reduction": 0.089,
    }
    return result
