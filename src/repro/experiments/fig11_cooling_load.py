"""Figure 11 and Section 5.1: PCM to reduce cooling load.

For each platform: run the fully-subscribed cluster over the two-day
Google trace without and with (melting-point-optimized) PCM, and reduce
the traces to the paper's headline numbers —

* peak cooling-load reduction: 8.9% (1U), 12% (2U), 8.3% (OCP);
* wax repayment tail "lasting between six and nine hours", completing
  within the 24 h cycle;
* additional servers under the same plant: +9.8% / +14.6% / +8.9%;
* annual cooling-system savings: $187k / $254k / $174k;
* retrofit savings: $3.0M / $3.2M / $3.1M per year.
"""

from __future__ import annotations

from repro.core.scenarios import CoolingLoadStudy
from repro.experiments.registry import ExperimentResult
from repro.server.configs import PLATFORM_BUILDERS
from repro.tco.params import platform_tco_parameters
from repro.tco.scenarios import retrofit_savings, smaller_cooling_savings
from repro.workload.google import synthesize_google_trace

#: Paper headline values per platform.
PAPER_PEAK_REDUCTION = {"1u": 0.089, "2u": 0.12, "ocp": 0.083}
PAPER_FLEET_GROWTH = {"1u": 0.098, "2u": 0.146, "ocp": 0.089}
PAPER_COOLING_SAVINGS_USD = {"1u": 187_000.0, "2u": 254_000.0, "ocp": 174_000.0}
PAPER_RETROFIT_USD = {"1u": 3.0e6, "2u": 3.2e6, "ocp": 3.1e6}


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Run the Section 5.1 study for every platform.

    ``jobs`` fans out each study's melting-point grid (dozens of
    independent two-day simulations) and its baseline/PCM arm pair;
    platforms stay sequential so one pool is busy at a time.
    """
    trace = synthesize_google_trace().total
    window = (38.0, 56.0) if quick else (36.0, 60.0)
    step = 2.0 if quick else 0.5

    result = ExperimentResult(
        experiment_id="fig11",
        title="Cooling load per cluster with and without PCM",
    )
    rows = []
    for platform, build in PLATFORM_BUILDERS.items():
        spec = build()
        outcome = CoolingLoadStudy(
            spec,
            trace,
            melting_window_c=window,
            melting_step_c=step,
            jobs=jobs,
        ).run()

        reduction = outcome.peak_reduction_fraction
        growth = outcome.provisioning.fleet_growth_fraction
        cooling = smaller_cooling_savings(reduction)
        params = platform_tco_parameters(platform)
        retrofit = retrofit_savings(
            growth,
            server_count=spec.datacenter_servers,
            wax_capex_usd_per_server_month=params.wax_capex_usd_per_server,
        )

        result.series[f"{platform}_hours"] = outcome.baseline.times_hours
        result.series[f"{platform}_cooling_load_w"] = (
            outcome.baseline.cooling_load_w
        )
        result.series[f"{platform}_load_with_pcm_w"] = (
            outcome.with_pcm.cooling_load_w
        )

        rows.append(
            [
                spec.name,
                f"{outcome.material.melting_point_c:.1f}",
                f"{reduction:.1%}",
                f"{PAPER_PEAK_REDUCTION[platform]:.1%}",
                f"{outcome.comparison.repayment_hours:.1f}h",
                f"+{outcome.provisioning.additional_servers * (spec.datacenter_servers // 1008)}",
                f"${cooling.annual_savings_usd/1e3:.0f}k",
                f"${retrofit.annual_savings_usd/1e6:.2f}M",
            ]
        )
        result.summary[f"{platform}_peak_reduction"] = reduction
        result.summary[f"{platform}_fleet_growth"] = growth
        result.summary[f"{platform}_repayment_hours"] = (
            outcome.comparison.repayment_hours
        )
        result.summary[f"{platform}_cooling_savings_usd"] = (
            cooling.annual_savings_usd
        )
        result.summary[f"{platform}_retrofit_savings_usd"] = (
            retrofit.annual_savings_usd
        )
        result.paper[f"{platform}_peak_reduction"] = PAPER_PEAK_REDUCTION[platform]
        result.paper[f"{platform}_fleet_growth"] = PAPER_FLEET_GROWTH[platform]
        result.paper[f"{platform}_cooling_savings_usd"] = (
            PAPER_COOLING_SAVINGS_USD[platform]
        )
        result.paper[f"{platform}_retrofit_savings_usd"] = PAPER_RETROFIT_USD[
            platform
        ]

    result.tables["Fig 11 / Section 5.1 headline results"] = (
        [
            "platform",
            "best melt (C)",
            "peak reduction",
            "paper",
            "repayment",
            "extra servers (10MW)",
            "cooling savings/yr",
            "retrofit savings/yr",
        ],
        rows,
    )
    return result
