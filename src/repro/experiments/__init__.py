"""Experiment registry: one module per table and figure of the paper.

Every experiment exposes ``run(quick=False) -> ExperimentResult`` with the
rows/series the paper reports; ``repro-experiments <id>`` runs one from
the command line and prints its tables.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiment_ids,
    main,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "all_experiment_ids",
    "run_experiment",
    "main",
]
