"""Figure 10: the two-day Google workload trace.

Synthesizes the trace (Web Search, Orkut, MapReduce over November 17-18,
2010) and verifies the paper's normalization: 50% average and 95% peak
load for a 1008-server cluster.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.runner.pool import sweep
from repro.workload.google import synthesize_google_trace


def _class_mean(name: str) -> float:
    """Mean load of one workload class (sweep worker).

    Re-synthesizes the trace in the worker: synthesis is deterministic
    and cheap, so shipping the name beats shipping the arrays.
    """
    components = synthesize_google_trace()
    return float(np.mean(components.components()[name].values))


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Synthesize Figure 10 and report its normalization statistics."""
    components = synthesize_google_trace()
    total = components.total

    result = ExperimentResult(
        experiment_id="fig10",
        title="Two-day Google workload trace, normalized to peak",
    )
    result.series = {
        "hours": total.times_s / 3600.0,
        "search": components.search.values,
        "orkut": components.orkut.values,
        "mapreduce": components.mapreduce.values,
        "total": total.values,
    }
    class_names = list(components.components())
    per_class = dict(
        zip(
            class_names,
            sweep(
                _class_mean,
                class_names,
                jobs=jobs,
                label="runner.fig10_classes",
            ),
        )
    )
    rows = [
        [name, f"{mean:.3f}", f"{mean / total.average:.1%}"]
        for name, mean in per_class.items()
    ]
    result.tables["class composition (mean load share)"] = (
        ["class", "mean load", "share of total"],
        rows,
    )
    result.summary = {
        "average_load": total.average,
        "peak_load": total.peak,
        "min_load": float(np.min(total.values)),
        "duration_hours": total.duration_s / 3600.0,
        "components_sum_to_total": float(
            np.allclose(
                components.search.values
                + components.orkut.values
                + components.mapreduce.values,
                total.values,
            )
        ),
    }
    result.paper = {
        "average_load": 0.50,
        "peak_load": 0.95,
        "duration_hours": 48.0,
        "components_sum_to_total": 1.0,
    }
    return result
