"""Export experiment results to plottable files.

Writes each experiment's figure series to CSV (one file per experiment,
columns aligned on the longest series), its summary/paper comparison to
JSON, and its rendered tables to a text file — everything an external
plotting pipeline needs to redraw the paper's figures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.registry import ExperimentResult


def _scalar(value: object, *, experiment_id: str, section: str, key: str) -> float:
    """Coerce one summary/paper entry to a plain float, or refuse loudly.

    Accepts Python and NumPy reals (``bool`` included, as ``int`` is);
    anything else — strings, complex numbers, arrays, ``None`` — used to
    slide through ``float(v)`` with a context-free ``TypeError`` or, worse,
    a silent lossy parse. Name the experiment and key instead.
    """
    if isinstance(value, (bool, np.bool_)):
        return float(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    raise ExperimentError(
        f"experiment {experiment_id!r}: {section}[{key!r}] is "
        f"{type(value).__name__}, not a real scalar; export refuses to "
        "coerce it"
    )


def export_result(result: ExperimentResult, output_dir: str | Path) -> list[Path]:
    """Write one experiment's artifacts; returns the files written."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    if result.series:
        csv_path = directory / f"{result.experiment_id}_series.csv"
        names = list(result.series)
        length = max(len(np.atleast_1d(result.series[n])) for n in names)
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for row_index in range(length):
                row = []
                for name in names:
                    values = np.atleast_1d(result.series[name])
                    row.append(
                        float(values[row_index])
                        if row_index < len(values)
                        else ""
                    )
                writer.writerow(row)
        written.append(csv_path)

    summary_path = directory / f"{result.experiment_id}_summary.json"
    payload: dict[str, object] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "summary": {
            k: _scalar(
                v,
                experiment_id=result.experiment_id,
                section="summary",
                key=k,
            )
            for k, v in result.summary.items()
        },
        "paper": {
            k: _scalar(
                v,
                experiment_id=result.experiment_id,
                section="paper",
                key=k,
            )
            for k, v in result.paper.items()
        },
    }
    # Only present when observability collection was on for the run, so
    # default exports are unchanged byte for byte.
    if result.perf:
        payload["perf"] = result.perf
    with open(summary_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    written.append(summary_path)

    if result.tables:
        tables_path = directory / f"{result.experiment_id}_tables.txt"
        tables_path.write_text(result.render() + "\n")
        written.append(tables_path)

    if not written:
        raise ExperimentError(
            f"experiment {result.experiment_id!r} produced nothing to export"
        )
    return written
