"""Figure 4: model validation against the (reference) real server.

Runs the four-arm protocol of Section 3 — {real, model} x {wax, placebo}
over 1 h idle + 12 h load + 12 h idle — and reports the transient traces
(Fig 4a/4b), the steady-state sensor comparison (Fig 4c; the paper's mean
difference is 0.22 degC), and the durations of the wax's visible melt /
refreeze effect (the paper observes roughly two hours of each).
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.validation.harness import run_validation


def run(quick: bool = False) -> ExperimentResult:
    """Run the Figure 4 validation and collect its traces and stats."""
    interval = 300.0 if quick else 120.0
    report = run_validation(output_interval_s=interval)

    result = ExperimentResult(
        experiment_id="fig4",
        title="Model validation: transient traces and steady state",
    )
    times_h = report.arm("real", True).result.times_hours
    result.series["hours"] = times_h
    for source in ("real", "model"):
        for wax in (True, False):
            arm = report.arm(source, wax)
            label = f"{source}_{'wax' if wax else 'placebo'}"
            result.series[f"near_box_{label}"] = arm.sensor_traces["near_box"]
            result.series[f"outlet_{label}"] = arm.sensor_traces["outlet"]

    rows = [
        [
            name,
            f"{report.steady_state_real_c[name]:.2f}",
            f"{report.steady_state_model_c[name]:.2f}",
            f"{report.steady_state_model_c[name] - report.steady_state_real_c[name]:+.2f}",
        ]
        for name in report.steady_state_real_c
    ]
    result.tables["Fig 4c: steady state, real vs model (degC)"] = (
        ["sensor", "real", "model", "difference"],
        rows,
    )
    result.summary = {
        "steady_mean_abs_difference_c": report.steady_mean_abs_difference_c,
        "heating_correlation": report.heating_comparison.correlation,
        "cooling_correlation": report.cooling_comparison.correlation,
        "wax_melt_effect_hours": report.wax_melt_effect_hours,
        "wax_freeze_effect_hours": report.wax_freeze_effect_hours,
    }
    result.paper = {
        "steady_mean_abs_difference_c": 0.22,
        "wax_melt_effect_hours": 2.0,
        "wax_freeze_effect_hours": 2.0,
    }
    return result
