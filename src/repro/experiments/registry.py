"""Experiment result type, registry, and command-line entry point.

Execution plumbing lives on :mod:`repro.runner`:

* ``--jobs N`` / the ``jobs`` keyword fan work over worker processes —
  across experiments in :func:`run_all`, and inside any experiment
  whose ``run()`` accepts a ``jobs`` argument (the blockage sweep, the
  cluster studies, the ablations).
* ``--cache DIR`` / the ``cache`` keyword (or ``REPRO_CACHE_DIR``)
  turn on the content-addressed result cache: a re-run of an already
  computed ``(experiment, quick)`` point is a disk read. Off by
  default, so outputs stay byte-identical with no cache directory.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.obs import get_registry
from repro.runner.cache import ResultCache, resolve_cache
from repro.runner.pool import sweep
from repro.runner.serialize import (
    decode_experiment_result,
    encode_experiment_result,
)


@dataclass
class ExperimentResult:
    """The output of one experiment.

    ``tables`` maps a caption to (headers, rows); ``series`` maps a series
    name to an array (figure data); ``summary`` maps a short metric name
    to its measured value, with ``paper`` recording the value the paper
    reports for the same metric where one exists.

    ``perf`` holds the observability layer's measurements of the run —
    wall-time breakdown, solver step counts, simulator event counts (see
    :mod:`repro.obs`). It is empty unless collection is enabled
    (``REPRO_OBS=1`` or :func:`repro.obs.enable`), so default outputs are
    unchanged.
    """

    experiment_id: str
    title: str
    tables: dict[str, tuple[list[str], list[list[object]]]] = field(
        default_factory=dict
    )
    series: dict[str, np.ndarray] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    perf: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report of the experiment."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for caption, (headers, rows) in self.tables.items():
            parts.append(format_table(headers, rows, title=caption))
        if self.summary:
            rows = []
            for name, value in self.summary.items():
                paper_value = self.paper.get(name)
                rows.append(
                    [
                        name,
                        f"{value:.4g}",
                        "-" if paper_value is None else f"{paper_value:.4g}",
                    ]
                )
            parts.append(
                format_table(
                    ["metric", "measured", "paper"], rows, title="Summary"
                )
            )
        return "\n\n".join(parts)


#: Experiment id -> implementing module (each has run(quick=False)).
_REGISTRY: dict[str, str] = {
    "table1": "repro.experiments.table1_pcm_properties",
    "table2": "repro.experiments.table2_tco_params",
    "fig1": "repro.experiments.fig1_concept",
    "fig4": "repro.experiments.fig4_validation",
    "fig7": "repro.experiments.fig7_blockage",
    "fig9": "repro.experiments.fig9_ocp_layouts",
    "fig10": "repro.experiments.fig10_workload",
    "fig11": "repro.experiments.fig11_cooling_load",
    "fig11_faults": "repro.experiments.fig11_faults",
    "fig12": "repro.experiments.fig12_throughput",
    "ablations": "repro.experiments.ablations",
    "extensions": "repro.experiments.extensions",
    "control_tournament": "repro.experiments.control_tournament",
}


def all_experiment_ids() -> list[str]:
    """All registered experiment ids, in paper order."""
    return list(_REGISTRY)


def experiment_cache_spec(
    experiment_id: str, quick: bool
) -> dict[str, object]:
    """Cache address of one ``(experiment, quick)`` point.

    Shared by every invocation surface — :func:`run_experiment`,
    :func:`run_all`, and the service control plane
    (:mod:`repro.service`) — so a point computed through any of them
    answers for all of them. ``jobs`` is deliberately absent:
    parallelism must not change the result, so a point computed with
    any worker count answers for all.
    """
    return {
        "kind": "experiment",
        "id": experiment_id,
        "quick": bool(quick),
    }


def _call_run(module, quick: bool, jobs: int) -> ExperimentResult:
    """Invoke ``module.run``, passing ``jobs`` only where supported."""
    parameters = inspect.signature(module.run).parameters
    if "jobs" in parameters:
        return module.run(quick=quick, jobs=jobs)
    return module.run(quick=quick)


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    jobs:
        Worker processes for the experiment's internal sweeps (ignored
        by experiments with nothing to fan out).
    cache:
        A :class:`~repro.runner.cache.ResultCache`, a cache directory,
        or ``None`` to fall through to ``REPRO_CACHE_DIR`` (and run
        uncached when that is unset). On a hit the stored result is
        returned without running anything; ``perf`` is left empty, as
        the stored run's measurements would misdescribe the lookup.
    """
    try:
        module_name = _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{all_experiment_ids()}"
        ) from None
    module = importlib.import_module(module_name)
    store = resolve_cache(cache)
    spec = experiment_cache_spec(experiment_id, quick)
    if store is not None:
        from repro.runner.cache import MISS

        payload = store.get(spec)
        if payload is not MISS:
            return decode_experiment_result(payload)

    registry = get_registry()
    if not registry.enabled:
        result = _call_run(module, quick, jobs)
    else:
        with registry.collect() as collection:
            with registry.timer(f"experiment.{experiment_id}"):
                result = _call_run(module, quick, jobs)
        result.perf = collection.report.perf_section()
    if store is not None:
        store.put(spec, encode_experiment_result(result))
    return result


def _run_encoded(task: tuple) -> dict[str, object]:
    """Sweep worker for :func:`run_all`: run one experiment, return it
    in the codec's value space (cheap to pickle, ready to cache)."""
    experiment_id, quick = task
    return encode_experiment_result(
        run_experiment(experiment_id, quick=quick, jobs=1, cache=False)
    )


def run_all(
    experiment_ids: Sequence[str] | None = None,
    quick: bool = False,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
) -> list[ExperimentResult]:
    """Run several experiments, optionally fanned across processes.

    Results come back in request order. Cache hits are resolved in the
    parent process under the same addresses :func:`run_experiment`
    uses, so serial and parallel runs share one cache population.
    """
    ids = list(experiment_ids) if experiment_ids else all_experiment_ids()
    unknown = [eid for eid in ids if eid not in _REGISTRY]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown}; choose from "
            f"{all_experiment_ids()}"
        )
    store = resolve_cache(cache)

    results: list[ExperimentResult | None] = [None] * len(ids)
    pending: list[int] = []
    if store is not None:
        from repro.runner.cache import MISS

        for index, eid in enumerate(ids):
            payload = store.get(experiment_cache_spec(eid, quick))
            if payload is MISS:
                pending.append(index)
            else:
                results[index] = decode_experiment_result(payload)
    else:
        pending = list(range(len(ids)))

    if len(pending) > 1 and jobs > 1:
        encoded = sweep(
            _run_encoded,
            [(ids[index], quick) for index in pending],
            jobs=jobs,
            label="runner.experiments",
        )
        for index, payload in zip(pending, encoded):
            results[index] = decode_experiment_result(payload)
            if store is not None:
                store.put(experiment_cache_spec(ids[index], quick), payload)
    else:
        for index in pending:
            # The pre-check above already established these are misses;
            # run uncached and store parent-side (like the parallel
            # path) so each miss is counted and fetched exactly once.
            result = run_experiment(
                ids[index], quick=quick, jobs=jobs, cache=False
            )
            results[index] = result
            if store is not None:
                store.put(
                    experiment_cache_spec(ids[index], quick),
                    encode_experiment_result(result),
                )
    return [result for result in results if result is not None]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run and print experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps for a fast smoke run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes: across experiments when several are "
        "requested, inside the experiment otherwise (default 1 = serial)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (default off; "
        "bare --cache uses %(const)s, REPRO_CACHE_DIR also enables it)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also export series CSVs, summary JSONs, and rendered tables",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    ids = args.experiments or all_experiment_ids()
    results = run_all(ids, quick=args.quick, jobs=args.jobs, cache=args.cache)
    for result in results:
        print(result.render())
        if result.perf:
            wall = result.perf.get("wall_time_s", 0.0)
            counters = result.perf.get("counters", {})
            interesting = {
                name: value
                for name, value in counters.items()
                if name.startswith(("solver.", "dcsim.", "runner."))
            }
            print(f"\n[perf] wall {wall:.3f}s  " + "  ".join(
                f"{name}={value}" for name, value in sorted(interesting.items())
            ))
        print()
        if args.output_dir:
            from repro.experiments.export import export_result

            for path in export_result(result, args.output_dir):
                print(f"wrote {path}")
    registry = get_registry()
    if registry.enabled:
        counters = registry.snapshot().counters
        cache_lines = "  ".join(
            f"{name}={value}"
            for name, value in sorted(counters.items())
            if name.startswith("runner.cache.")
        )
        if cache_lines:
            print(f"[cache] {cache_lines}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
