"""Experiment result type, registry, and command-line entry point."""

from __future__ import annotations

import argparse
import importlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.obs import get_registry


@dataclass
class ExperimentResult:
    """The output of one experiment.

    ``tables`` maps a caption to (headers, rows); ``series`` maps a series
    name to an array (figure data); ``summary`` maps a short metric name
    to its measured value, with ``paper`` recording the value the paper
    reports for the same metric where one exists.

    ``perf`` holds the observability layer's measurements of the run —
    wall-time breakdown, solver step counts, simulator event counts (see
    :mod:`repro.obs`). It is empty unless collection is enabled
    (``REPRO_OBS=1`` or :func:`repro.obs.enable`), so default outputs are
    unchanged.
    """

    experiment_id: str
    title: str
    tables: dict[str, tuple[list[str], list[list[object]]]] = field(
        default_factory=dict
    )
    series: dict[str, np.ndarray] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    perf: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report of the experiment."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for caption, (headers, rows) in self.tables.items():
            parts.append(format_table(headers, rows, title=caption))
        if self.summary:
            rows = []
            for name, value in self.summary.items():
                paper_value = self.paper.get(name)
                rows.append(
                    [
                        name,
                        f"{value:.4g}",
                        "-" if paper_value is None else f"{paper_value:.4g}",
                    ]
                )
            parts.append(
                format_table(
                    ["metric", "measured", "paper"], rows, title="Summary"
                )
            )
        return "\n\n".join(parts)


#: Experiment id -> implementing module (each has run(quick=False)).
_REGISTRY: dict[str, str] = {
    "table1": "repro.experiments.table1_pcm_properties",
    "table2": "repro.experiments.table2_tco_params",
    "fig1": "repro.experiments.fig1_concept",
    "fig4": "repro.experiments.fig4_validation",
    "fig7": "repro.experiments.fig7_blockage",
    "fig9": "repro.experiments.fig9_ocp_layouts",
    "fig10": "repro.experiments.fig10_workload",
    "fig11": "repro.experiments.fig11_cooling_load",
    "fig12": "repro.experiments.fig12_throughput",
    "ablations": "repro.experiments.ablations",
    "extensions": "repro.experiments.extensions",
}


def all_experiment_ids() -> list[str]:
    """All registered experiment ids, in paper order."""
    return list(_REGISTRY)


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        module_name = _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{all_experiment_ids()}"
        ) from None
    module = importlib.import_module(module_name)
    registry = get_registry()
    if not registry.enabled:
        return module.run(quick=quick)
    with registry.collect() as collection:
        with registry.timer(f"experiment.{experiment_id}"):
            result = module.run(quick=quick)
    result.perf = collection.report.perf_section()
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run and print experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps for a fast smoke run",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also export series CSVs, summary JSONs, and rendered tables",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or all_experiment_ids()
    for experiment_id in ids:
        result = run_experiment(experiment_id, quick=args.quick)
        print(result.render())
        if result.perf:
            wall = result.perf.get("wall_time_s", 0.0)
            counters = result.perf.get("counters", {})
            interesting = {
                name: value
                for name, value in counters.items()
                if name.startswith(("solver.", "dcsim."))
            }
            print(f"\n[perf] wall {wall:.3f}s  " + "  ".join(
                f"{name}={value}" for name, value in sorted(interesting.items())
            ))
        print()
        if args.output_dir:
            from repro.experiments.export import export_result

            for path in export_result(result, args.output_dir):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
