"""Figure 1: the thermal time shifting concept.

A single PCM-equipped server under an idealized diurnal load: the figure's
story is that the thermal output peak is flattened during the day (the wax
melts) and the stored heat is released at night (the wax refreezes), when
ambient is cooler and electricity cheaper.
"""

from __future__ import annotations

import numpy as np

from repro.core.scenarios import cached_characterization
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
from repro.experiments.registry import ExperimentResult
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.server.configs import one_u_commodity
from repro.units import days, hours
from repro.workload.trace import LoadTrace


def concept_trace() -> LoadTrace:
    """The idealized Figure 1 diurnal: peak 7 AM - 7 PM, trough at night."""
    times = np.arange(0, days(1.0) + 1, 300.0)
    hour = (times / hours(1.0)) % 24.0
    values = 0.35 + 0.60 * np.exp(3.0 * (np.cos(2 * np.pi * (hour - 13.0) / 24.0) - 1))
    return LoadTrace(times, values, name="fig1-diurnal")


def run(quick: bool = False) -> ExperimentResult:
    """Simulate one day of a PCM server against the concept diurnal."""
    spec = one_u_commodity()
    characterization = cached_characterization(spec)
    material = commercial_paraffin_with_melting_point(43.0)
    trace = concept_trace()
    topology = ClusterTopology(server_count=1)

    def simulate(wax: bool):
        return DatacenterSimulator(
            characterization,
            spec.power_model,
            material,
            trace,
            topology=topology,
            config=SimulationConfig(mode="fluid", wax_enabled=wax),
        ).run()

    baseline = simulate(False)
    with_pcm = simulate(True)

    peak_flattening = 1.0 - with_pcm.peak_cooling_load_w / baseline.peak_cooling_load_w
    # Heat released at night (10 PM - 6 AM): PCM output above baseline.
    night = (with_pcm.times_hours >= 22.0) | (with_pcm.times_hours <= 6.0)
    night_release = float(
        np.sum(
            np.clip(with_pcm.cooling_load_w[night] - baseline.cooling_load_w[night], 0, None)
        )
    )

    result = ExperimentResult(
        experiment_id="fig1",
        title="Thermal time shifting using PCM (concept)",
    )
    result.series = {
        "hours": with_pcm.times_hours,
        "load": with_pcm.demand,
        "thermal_output_w": baseline.cooling_load_w,
        "thermal_output_with_pcm_w": with_pcm.cooling_load_w,
        "melt_fraction": with_pcm.melt_fraction,
    }
    result.summary = {
        "peak_flattening_fraction": peak_flattening,
        "night_release_present": float(night_release > 0.0),
        "wax_completes_daily_cycle": float(with_pcm.melt_fraction[-1] < 0.05),
    }
    result.paper = {
        "night_release_present": 1.0,
        "wax_completes_daily_cycle": 1.0,
    }
    return result
