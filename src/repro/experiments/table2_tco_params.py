"""Table 2: TCO model parameters and the Equation 1 evaluation.

Regenerates the per-platform parameter table and evaluates Equation 1 for
each platform's 10 MW datacenter, confirming the paper's structural claim
that WaxCapEx "represent[s] less than 0.1% of the ServerCapEx".
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.server.configs import platform_by_name
from repro.tco.model import monthly_tco
from repro.tco.params import platform_tco_parameters

PLATFORMS = ("1u", "2u", "ocp")


def run(quick: bool = False) -> ExperimentResult:
    """Render Table 2 and the Eq. 1 totals for each 10 MW datacenter."""
    param_rows = []
    tco_rows = []
    wax_ratio = {}
    for name in PLATFORMS:
        params = platform_tco_parameters(name)
        spec = platform_by_name(name)
        param_rows.append(
            [
                name,
                f"{params.power_infra_capex_usd_per_kw:.1f}",
                f"{params.cooling_infra_capex_usd_per_kw:.1f}",
                f"{params.server_capex_usd_per_server:.1f}",
                f"{params.wax_capex_usd_per_server:.2f}",
                f"{params.server_interest_usd_per_server:.2f}",
                f"{params.server_energy_opex_usd_per_kw:.1f}",
                f"{params.cooling_energy_opex_usd_per_kw:.1f}",
            ]
        )
        breakdown = monthly_tco(
            params,
            critical_power_kw=10_000.0,
            server_count=spec.datacenter_servers,
            with_wax=True,
        )
        tco_rows.append(
            [
                name,
                spec.datacenter_servers,
                f"${breakdown.total_usd_per_month/1e6:.2f}M",
                f"${breakdown.cooling_usd_per_month/1e3:.0f}k",
                f"${breakdown.wax_capex/1e3:.2f}k",
            ]
        )
        wax_ratio[name] = breakdown.wax_capex / breakdown.server_capex

    result = ExperimentResult(
        experiment_id="table2",
        title="Parameters used to model TCO (Table 2) and Eq. 1 totals",
    )
    result.tables["Table 2 (per-platform instantiation, $/month)"] = (
        [
            "platform",
            "PowerInfra/kW",
            "CoolingInfra/kW",
            "ServerCapEx/srv",
            "WaxCapEx/srv",
            "ServerInterest/srv",
            "ServerEnergy/kW",
            "CoolingEnergy/kW",
        ],
        param_rows,
    )
    result.tables["Equation 1 monthly TCO of each 10 MW datacenter"] = (
        ["platform", "servers", "TCO/month", "cooling/month", "wax/month"],
        tco_rows,
    )
    result.summary = {
        f"wax_share_of_server_capex_{name}": wax_ratio[name]
        for name in PLATFORMS
    }
    result.paper = {
        # "less than 0.1% of the ServerCapEx"
        f"wax_share_of_server_capex_{name}": 0.001
        for name in PLATFORMS
    }
    return result
