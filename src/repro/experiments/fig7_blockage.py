"""Figure 7: server temperatures as airflow is progressively blocked.

For each platform, a uniform grille blocks 0-90% of the airflow at
constant full load (the paper maintains "constant frequency and power
consumption to maintain parity across configurations"); the steady outlet
and CPU temperatures are recorded.

Paper shape anchors:

* 1U — CPU temperatures rise less than 2 degC below 50% blockage, and the
  outlet rises ~14 degC at 90%; no unsafe temperatures at any blockage.
* 2U — stable below ~50-60%, rising steeply above 70%.
* Open Compute — already hot at zero blockage; temperatures climb
  steeply as soon as almost any airflow is obstructed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.runner.pool import sweep
from repro.server.chassis import constant_utilization
from repro.server.configs import PLATFORM_BUILDERS
from repro.thermal.steady_state import solve_steady_state_batch


def _solve_platform(
    task: tuple[str, tuple[float, ...]],
) -> tuple[np.ndarray, np.ndarray]:
    """Steady (outlet, hottest CPU) curves for one platform's grille sweep.

    Sweep worker: each platform's fraction grid is one batched
    steady-state solve (bit-identical to point-by-point solves), and the
    three platforms fan out across the pool.
    """
    platform, fractions = task
    spec = PLATFORM_BUILDERS[platform]()
    networks = [
        spec.chassis.with_grille_blockage(float(fraction)).build_network(
            constant_utilization(1.0)
        )
        for fraction in fractions
    ]
    outlet: list[float] = []
    cpu: list[float] = []
    for steady in solve_steady_state_batch(networks):
        outlet.append(steady.outlet_temperature_c())
        cpu.append(
            max(
                value
                for name, value in steady.temperatures_c.items()
                if name.startswith("cpu")
            )
        )
    return np.array(outlet), np.array(cpu)


def blockage_sweep(
    platform: str, fractions: np.ndarray, jobs: int = 1, backend: str = "auto"
) -> dict[str, np.ndarray]:
    """Steady outlet and (hottest) CPU temperatures across a grille sweep.

    ``backend`` is forwarded to
    :func:`~repro.thermal.steady_state.solve_steady_state_batch`; chassis
    networks are far below the sparse thresholds, so ``"auto"`` keeps the
    bit-identical dict sweep.
    """
    del jobs  # one batched solve; kept for call-site compatibility
    spec = PLATFORM_BUILDERS[platform]()
    networks = [
        spec.chassis.with_grille_blockage(float(fraction)).build_network(
            constant_utilization(1.0)
        )
        for fraction in fractions
    ]
    outlet: list[float] = []
    cpu: list[float] = []
    for steady in solve_steady_state_batch(networks, backend=backend):
        outlet.append(steady.outlet_temperature_c())
        cpu.append(
            max(
                value
                for name, value in steady.temperatures_c.items()
                if name.startswith("cpu")
            )
        )
    return {
        "blockage": fractions,
        "outlet_c": np.array(outlet),
        "cpu_c": np.array(cpu),
    }


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Sweep grille blockage for all three platforms.

    Each platform's whole fraction grid is solved as one batch; with
    ``jobs > 1`` the three platform batches fan out over the pool.
    """
    step = 0.15 if quick else 0.05
    fractions = np.arange(0.0, 0.90 + 1e-9, step)
    platforms = ("1u", "2u", "ocp")

    result = ExperimentResult(
        experiment_id="fig7",
        title="Server temperatures vs airflow blockage",
    )
    grid = [
        (platform, tuple(float(fraction) for fraction in fractions))
        for platform in platforms
    ]
    points = sweep(
        _solve_platform, grid, jobs=jobs, label="runner.fig7_blockage"
    )

    sweeps = {}
    for index, platform in enumerate(platforms):
        outlet_curve, cpu_curve = points[index]
        curve = {
            "blockage": fractions,
            "outlet_c": outlet_curve,
            "cpu_c": cpu_curve,
        }
        sweeps[platform] = curve
        result.series[f"{platform}_blockage"] = curve["blockage"]
        result.series[f"{platform}_outlet_c"] = curve["outlet_c"]
        result.series[f"{platform}_cpu_c"] = curve["cpu_c"]
        rows = [
            [f"{b:.0%}", f"{o:.1f}", f"{c:.1f}"]
            for b, o, c in zip(
                curve["blockage"], curve["outlet_c"], curve["cpu_c"]
            )
        ]
        result.tables[f"Fig 7 ({platform}): temperatures vs blockage"] = (
            ["blocked", "outlet degC", "hottest CPU degC"],
            rows,
        )

    def rise(curve: dict[str, np.ndarray], key: str, fraction: float) -> float:
        index = int(np.argmin(np.abs(curve["blockage"] - fraction)))
        return float(curve[key][index] - curve[key][0])

    result.summary = {
        "1u_outlet_rise_at_90pct_c": rise(sweeps["1u"], "outlet_c", 0.90),
        "1u_cpu_rise_at_50pct_c": rise(sweeps["1u"], "cpu_c", 0.50),
        "2u_outlet_rise_at_50pct_c": rise(sweeps["2u"], "outlet_c", 0.50),
        "2u_outlet_rise_at_69pct_c": rise(sweeps["2u"], "outlet_c", 0.69),
        "2u_outlet_rise_at_90pct_c": rise(sweeps["2u"], "outlet_c", 0.90),
        "ocp_outlet_rise_at_30pct_c": rise(sweeps["ocp"], "outlet_c", 0.30),
        "ocp_outlet_at_0pct_c": float(sweeps["ocp"]["outlet_c"][0]),
    }
    result.paper = {
        "1u_outlet_rise_at_90pct_c": 14.0,
        "1u_cpu_rise_at_50pct_c": 2.0,
        "2u_outlet_rise_at_69pct_c": 6.0,
        "ocp_outlet_rise_at_30pct_c": 30.0,
    }
    return result
