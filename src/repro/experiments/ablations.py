"""Ablations over the design choices DESIGN.md calls out.

* **Wax volume** — peak cooling-load reduction as deployed liters scale
  from 0.25x to 2x of the paper's configuration (the paper: "peak load
  reduction and savings correlate to the quantity of wax").
* **Melting point sensitivity** — peak reduction across the commercial
  window (the core of the paper's melting-threshold selection).
* **Heat of fusion** — commercial paraffin (200 J/g) vs eicosane-grade
  (247 J/g): what the 50x price premium would buy.
* **Load balancing policy** — round-robin (paper) vs least-loaded in
  event mode: homogeneous clusters make the thermal outcome insensitive.
* **DVFS power exponent** — how the constrained-datacenter gain depends
  on how power scales with the downclock.

Every ablation point is an independent simulation, so each section's
grid fans out over :func:`repro.runner.pool.sweep` when ``jobs > 1``.
The workers rebuild their inputs (platform spec, trace, topology) from
the point's parameters — synthesis is deterministic and cheaper than
pickling shared arrays into every task.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.melting_point import batched_fluid_peaks, optimize_melting_point
from repro.core.scenarios import ThroughputStudy, cached_characterization
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.loadbalancer import LeastLoaded, RoundRobin
from repro.dcsim.rack_thermals import RackInletProfile
from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
from repro.experiments.registry import ExperimentResult
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.runner.pool import sweep
from repro.server.configs import one_u_commodity
from repro.workload.google import synthesize_google_trace

#: The fixed frame every ablation varies around.
_TOPOLOGY_SERVERS = 1008
_BASE_MELT_C = 43.0


def _base_inputs():
    """(spec, characterization, trace, topology, material) for the 1U
    frame; deterministic, so workers rebuild it instead of unpickling."""
    spec = one_u_commodity()
    characterization = cached_characterization(spec)
    trace = synthesize_google_trace().total
    topology = ClusterTopology(server_count=_TOPOLOGY_SERVERS)
    material = commercial_paraffin_with_melting_point(_BASE_MELT_C)
    return spec, characterization, trace, topology, material


def _volume_point(scale: float) -> tuple[float, float]:
    """(best melting point, peak reduction) at one wax-volume scale.

    The melting point is re-optimized per volume, as the paper does: a
    bigger reservoir wants a later (higher) melting threshold so its
    repayment lands overnight instead of on the evening shoulder.
    Exchange area grows with volume^(2/3): the chassis footprint is
    fixed, so more wax means thicker boxes, not proportionally more
    surface.
    """
    spec, characterization, trace, topology, _ = _base_inputs()
    ua_scale = scale ** (2.0 / 3.0)
    scaled = dataclasses.replace(
        characterization,
        wax_mass_kg=characterization.wax_mass_kg * scale,
        wax_volume_m3=characterization.wax_volume_m3 * scale,
        wax_ua_w_per_k=tuple(
            ua * ua_scale for ua in characterization.wax_ua_w_per_k
        ),
    )
    search = optimize_melting_point(
        scaled,
        spec.power_model,
        trace,
        topology=topology,
        window_c=(40.0, 50.0),
        step_c=1.0,
    )
    return search.best_melting_point_c, search.best_reduction_fraction


def _lb_point(task: tuple[str, int]) -> tuple[float, float]:
    """(peak cooling W, mean utilization) for one balancing policy in
    event mode on a small cluster."""
    label, event_servers = task
    spec, characterization, trace, _, material = _base_inputs()
    balancer = {"round-robin": RoundRobin, "least-loaded": LeastLoaded}[label]()
    run_result = DatacenterSimulator(
        characterization,
        spec.power_model,
        material,
        trace,
        topology=ClusterTopology(server_count=event_servers),
        load_balancer=balancer,
        config=SimulationConfig(mode="event", wax_enabled=True),
    ).run()
    return run_result.peak_cooling_load_w, float(
        np.mean(run_result.utilization)
    )


def _dvfs_point(alpha: float) -> tuple[float, float, float]:
    """(peak gain, elevated hours, throttled ceiling) at one DVFS power
    exponent in the constrained scenario."""
    spec, _, trace, _, _ = _base_inputs()
    power_model = dataclasses.replace(spec.power_model, dvfs_exponent=alpha)
    study = ThroughputStudy(
        dataclasses.replace(
            spec,
            chassis=dataclasses.replace(spec.chassis, power_model=power_model),
        ),
        trace,
        oversubscription=0.836,
        material=commercial_paraffin_with_melting_point(45.0),
    )
    outcome = study.run()
    throttled = outcome.no_wax.result.throttled_mask()
    plateau = (
        float(np.max(outcome.no_wax.normalized_throughput[throttled]))
        if np.any(throttled)
        else float("nan")
    )
    return outcome.peak_throughput_gain, outcome.elevated_hours, plateau


def _hetero_point(spread: float) -> float:
    """Peak reduction under one rack inlet-temperature spread
    (stratification + recirculation + jitter)."""
    spec, characterization, trace, topology, material = _base_inputs()
    profile = RackInletProfile(
        vertical_spread_c=spread,
        recirculation_c=spread / 2.0,
        jitter_c=spread / 10.0 if spread > 0 else 0.0,
    )
    offsets = profile.offsets_c(topology)

    def run_arm(wax: bool) -> float:
        return (
            DatacenterSimulator(
                characterization,
                spec.power_model,
                material,
                trace,
                topology=topology,
                inlet_offsets_c=offsets,
                config=SimulationConfig(mode="fluid", wax_enabled=wax),
            )
            .run()
            .peak_cooling_load_w
        )

    return 1.0 - run_arm(True) / run_arm(False)


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Run all ablations on the 1U platform."""
    spec, characterization, trace, topology, _ = _base_inputs()

    result = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations (1U platform)",
    )

    # -- wax volume --------------------------------------------------------
    scales = (0.5, 1.0, 2.0) if quick else (0.25, 0.5, 1.0, 1.5, 2.0)
    volume_points = sweep(
        _volume_point, scales, jobs=jobs, label="runner.ablation_volume"
    )
    reductions = [reduction for _, reduction in volume_points]
    volume_rows = [
        [
            f"{scale:.2f}x ({scale * 1.2:.1f} L)",
            f"{best_melt:.0f}",
            f"{reduction:.1%}",
        ]
        for scale, (best_melt, reduction) in zip(scales, volume_points)
    ]
    result.tables["wax volume vs peak reduction"] = (
        ["deployed wax", "best melt (C)", "peak cooling reduction"],
        volume_rows,
    )
    # The paper observes savings grow with wax quantity; our sweep agrees
    # up to the deployed volume, then finds a knee: beyond it, the
    # refreeze repayment lands on the evening shoulder and erodes the
    # clipped peak — the deployed 1.2 L sits near the optimum.
    deployed_index = scales.index(1.0)
    up_to_deployed = reductions[: deployed_index + 1]
    result.summary["reduction_monotonic_up_to_deployed"] = float(
        all(b >= a - 1e-6 for a, b in zip(up_to_deployed, up_to_deployed[1:]))
    )
    result.summary["deployed_volume_near_knee"] = float(
        reductions[deployed_index] >= max(reductions) - 1e-6
    )
    result.paper["reduction_monotonic_up_to_deployed"] = 1.0

    # -- melting point sensitivity -----------------------------------------
    step = 2.0 if quick else 1.0
    search = optimize_melting_point(
        characterization,
        spec.power_model,
        trace,
        topology=topology,
        window_c=(38.0, 56.0),
        step_c=step,
        jobs=jobs,
    )
    melt_rows = [
        [f"{temp:.1f}", f"{1.0 - peak / search.baseline_peak_w:.1%}"]
        for temp, peak in zip(search.candidates_c, search.peak_cooling_w)
    ]
    result.tables["melting point vs peak reduction"] = (
        ["melting point (C)", "peak cooling reduction"],
        melt_rows,
    )
    result.summary["best_melting_point_c"] = search.best_melting_point_c
    result.summary["best_reduction"] = search.best_reduction_fraction

    # -- heat of fusion ----------------------------------------------------
    # One batched fluid run: the shared wax-off baseline plus both blends.
    commercial = commercial_paraffin_with_melting_point(_BASE_MELT_C)
    premium = dataclasses.replace(
        commercial,
        name="eicosane-grade blend",
        heat_of_fusion_j_per_kg=247_000.0,
    )
    fusion_peaks = batched_fluid_peaks(
        characterization,
        spec.power_model,
        [commercial, commercial, premium],
        np.array([False, True, True]),
        trace,
        topology,
        SimulationConfig(mode="fluid"),
    )
    commercial_reduction = 1.0 - fusion_peaks[1] / fusion_peaks[0]
    premium_reduction = 1.0 - fusion_peaks[2] / fusion_peaks[0]
    result.tables["heat of fusion"] = (
        ["material", "heat of fusion", "peak reduction"],
        [
            ["commercial paraffin", "200 J/g", f"{commercial_reduction:.1%}"],
            ["eicosane-grade", "247 J/g", f"{premium_reduction:.1%}"],
        ],
    )
    result.summary["premium_wax_extra_reduction"] = (
        premium_reduction - commercial_reduction
    )

    # -- load balancing policy (event mode, small cluster) -------------------
    event_servers = 32 if quick else 96
    lb_labels = ("round-robin", "least-loaded")
    lb_points = sweep(
        _lb_point,
        [(label, event_servers) for label in lb_labels],
        jobs=jobs,
        label="runner.ablation_lb",
    )
    lb_peaks = {
        label: peak for label, (peak, _) in zip(lb_labels, lb_points)
    }
    lb_rows = [
        [label, f"{peak / event_servers:.1f}", f"{mean_util:.3f}"]
        for label, (peak, mean_util) in zip(lb_labels, lb_points)
    ]
    result.tables["load balancing policy (event mode)"] = (
        ["policy", "peak cooling W/server", "mean utilization"],
        lb_rows,
    )
    result.summary["lb_policy_peak_difference"] = abs(
        lb_peaks["round-robin"] - lb_peaks["least-loaded"]
    ) / lb_peaks["round-robin"]

    # -- DVFS power exponent -------------------------------------------------
    exponents = (1.0, 2.2) if quick else (1.0, 1.5, 2.2, 3.0)
    dvfs_points = sweep(
        _dvfs_point, exponents, jobs=jobs, label="runner.ablation_dvfs"
    )
    dvfs_rows = [
        [
            f"{alpha:.1f}",
            f"+{gain:.0%}",
            f"{elevated:.1f}h",
            f"{plateau:.2f}",
        ]
        for alpha, (gain, elevated, plateau) in zip(exponents, dvfs_points)
    ]
    result.tables["DVFS power exponent (constrained scenario)"] = (
        ["exponent", "peak gain", "elevated hours", "throttled ceiling"],
        dvfs_rows,
    )

    # -- inlet heterogeneity (rack stratification / recirculation) ----------
    spreads = (0.0, 4.0) if quick else (0.0, 2.0, 4.0, 6.0)
    hetero_reductions = sweep(
        _hetero_point, spreads, jobs=jobs, label="runner.ablation_hetero"
    )
    hetero_rows = [
        [f"{spread:.0f} degC", f"{reduction:.1%}"]
        for spread, reduction in zip(spreads, hetero_reductions)
    ]
    result.tables["inlet heterogeneity vs peak reduction"] = (
        ["rack inlet spread", "peak cooling reduction"],
        hetero_rows,
    )
    # Hot servers lose refreeze margin; cold servers melt late: spread
    # erodes the benefit relative to the isothermal room.
    result.summary["heterogeneity_erosion"] = (
        hetero_reductions[0] - hetero_reductions[-1]
    )

    return result
