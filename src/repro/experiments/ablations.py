"""Ablations over the design choices DESIGN.md calls out.

* **Wax volume** — peak cooling-load reduction as deployed liters scale
  from 0.25x to 2x of the paper's configuration (the paper: "peak load
  reduction and savings correlate to the quantity of wax").
* **Melting point sensitivity** — peak reduction across the commercial
  window (the core of the paper's melting-threshold selection).
* **Heat of fusion** — commercial paraffin (200 J/g) vs eicosane-grade
  (247 J/g): what the 50x price premium would buy.
* **Load balancing policy** — round-robin (paper) vs least-loaded in
  event mode: homogeneous clusters make the thermal outcome insensitive.
* **DVFS power exponent** — how the constrained-datacenter gain depends
  on how power scales with the downclock.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.melting_point import optimize_melting_point
from repro.core.scenarios import ThroughputStudy, cached_characterization
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.loadbalancer import LeastLoaded, RoundRobin
from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
from repro.experiments.registry import ExperimentResult
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.server.configs import one_u_commodity
from repro.workload.google import synthesize_google_trace


def _peak_reduction(characterization, power_model, material, trace, topology) -> float:
    def simulate(wax: bool) -> float:
        return (
            DatacenterSimulator(
                characterization,
                power_model,
                material,
                trace,
                topology=topology,
                config=SimulationConfig(mode="fluid", wax_enabled=wax),
            )
            .run()
            .peak_cooling_load_w
        )

    return 1.0 - simulate(True) / simulate(False)


def run(quick: bool = False) -> ExperimentResult:
    """Run all ablations on the 1U platform."""
    spec = one_u_commodity()
    characterization = cached_characterization(spec)
    trace = synthesize_google_trace().total
    topology = ClusterTopology(server_count=1008)
    material = commercial_paraffin_with_melting_point(43.0)

    result = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations (1U platform)",
    )

    # -- wax volume --------------------------------------------------------
    # The melting point is re-optimized per volume, as the paper does: a
    # bigger reservoir wants a later (higher) melting threshold so its
    # repayment lands overnight instead of on the evening shoulder.
    scales = (0.5, 1.0, 2.0) if quick else (0.25, 0.5, 1.0, 1.5, 2.0)
    volume_rows = []
    reductions = []
    for scale in scales:
        # Exchange area grows with volume^(2/3): the chassis footprint is
        # fixed, so more wax means thicker boxes, not proportionally more
        # surface.
        ua_scale = scale ** (2.0 / 3.0)
        scaled = dataclasses.replace(
            characterization,
            wax_mass_kg=characterization.wax_mass_kg * scale,
            wax_volume_m3=characterization.wax_volume_m3 * scale,
            wax_ua_w_per_k=tuple(
                ua * ua_scale for ua in characterization.wax_ua_w_per_k
            ),
        )
        search = optimize_melting_point(
            scaled,
            spec.power_model,
            trace,
            topology=topology,
            window_c=(40.0, 50.0),
            step_c=1.0,
        )
        reduction = search.best_reduction_fraction
        reductions.append(reduction)
        volume_rows.append(
            [
                f"{scale:.2f}x ({scale * 1.2:.1f} L)",
                f"{search.best_melting_point_c:.0f}",
                f"{reduction:.1%}",
            ]
        )
    result.tables["wax volume vs peak reduction"] = (
        ["deployed wax", "best melt (C)", "peak cooling reduction"],
        volume_rows,
    )
    # The paper observes savings grow with wax quantity; our sweep agrees
    # up to the deployed volume, then finds a knee: beyond it, the
    # refreeze repayment lands on the evening shoulder and erodes the
    # clipped peak — the deployed 1.2 L sits near the optimum.
    deployed_index = scales.index(1.0)
    up_to_deployed = reductions[: deployed_index + 1]
    result.summary["reduction_monotonic_up_to_deployed"] = float(
        all(b >= a - 1e-6 for a, b in zip(up_to_deployed, up_to_deployed[1:]))
    )
    result.summary["deployed_volume_near_knee"] = float(
        reductions[deployed_index] >= max(reductions) - 1e-6
    )
    result.paper["reduction_monotonic_up_to_deployed"] = 1.0

    # -- melting point sensitivity -----------------------------------------
    step = 2.0 if quick else 1.0
    search = optimize_melting_point(
        characterization,
        spec.power_model,
        trace,
        topology=topology,
        window_c=(38.0, 56.0),
        step_c=step,
    )
    melt_rows = [
        [f"{temp:.1f}", f"{1.0 - peak / search.baseline_peak_w:.1%}"]
        for temp, peak in zip(search.candidates_c, search.peak_cooling_w)
    ]
    result.tables["melting point vs peak reduction"] = (
        ["melting point (C)", "peak cooling reduction"],
        melt_rows,
    )
    result.summary["best_melting_point_c"] = search.best_melting_point_c
    result.summary["best_reduction"] = search.best_reduction_fraction

    # -- heat of fusion ----------------------------------------------------
    premium = dataclasses.replace(
        material, name="eicosane-grade blend", heat_of_fusion_j_per_kg=247_000.0
    )
    commercial_reduction = _peak_reduction(
        characterization, spec.power_model, material, trace, topology
    )
    premium_reduction = _peak_reduction(
        characterization, spec.power_model, premium, trace, topology
    )
    result.tables["heat of fusion"] = (
        ["material", "heat of fusion", "peak reduction"],
        [
            ["commercial paraffin", "200 J/g", f"{commercial_reduction:.1%}"],
            ["eicosane-grade", "247 J/g", f"{premium_reduction:.1%}"],
        ],
    )
    result.summary["premium_wax_extra_reduction"] = (
        premium_reduction - commercial_reduction
    )

    # -- load balancing policy (event mode, small cluster) -------------------
    event_servers = 32 if quick else 96
    event_topology = ClusterTopology(server_count=event_servers)
    lb_rows = []
    lb_peaks = {}
    for label, balancer in (("round-robin", RoundRobin()), ("least-loaded", LeastLoaded())):
        sim = DatacenterSimulator(
            characterization,
            spec.power_model,
            material,
            trace,
            topology=event_topology,
            load_balancer=balancer,
            config=SimulationConfig(mode="event", wax_enabled=True),
        )
        run_result = sim.run()
        lb_peaks[label] = run_result.peak_cooling_load_w
        lb_rows.append(
            [
                label,
                f"{run_result.peak_cooling_load_w / event_servers:.1f}",
                f"{float(np.mean(run_result.utilization)):.3f}",
            ]
        )
    result.tables["load balancing policy (event mode)"] = (
        ["policy", "peak cooling W/server", "mean utilization"],
        lb_rows,
    )
    result.summary["lb_policy_peak_difference"] = abs(
        lb_peaks["round-robin"] - lb_peaks["least-loaded"]
    ) / lb_peaks["round-robin"]

    # -- DVFS power exponent -------------------------------------------------
    exponents = (1.0, 2.2) if quick else (1.0, 1.5, 2.2, 3.0)
    dvfs_rows = []
    for alpha in exponents:
        power_model = dataclasses.replace(spec.power_model, dvfs_exponent=alpha)
        study = ThroughputStudy(
            dataclasses.replace(spec, chassis=spec.chassis),
            trace,
            oversubscription=0.836,
            material=commercial_paraffin_with_melting_point(45.0),
        )
        # Swap the power model by running the arms manually through the
        # study's machinery: rebuild with a modified spec power model.
        study.spec = dataclasses.replace(
            spec,
            chassis=dataclasses.replace(spec.chassis, power_model=power_model),
        )
        outcome = study.run()
        throttled = outcome.no_wax.result.throttled_mask()
        plateau = (
            float(np.max(outcome.no_wax.normalized_throughput[throttled]))
            if np.any(throttled)
            else float("nan")
        )
        dvfs_rows.append(
            [
                f"{alpha:.1f}",
                f"+{outcome.peak_throughput_gain:.0%}",
                f"{outcome.elevated_hours:.1f}h",
                f"{plateau:.2f}",
            ]
        )
    result.tables["DVFS power exponent (constrained scenario)"] = (
        ["exponent", "peak gain", "elevated hours", "throttled ceiling"],
        dvfs_rows,
    )

    # -- inlet heterogeneity (rack stratification / recirculation) ----------
    from repro.dcsim.rack_thermals import RackInletProfile

    spreads = (0.0, 4.0) if quick else (0.0, 2.0, 4.0, 6.0)
    hetero_rows = []
    hetero_reductions = []
    for spread in spreads:
        profile = RackInletProfile(
            vertical_spread_c=spread,
            recirculation_c=spread / 2.0,
            jitter_c=spread / 10.0 if spread > 0 else 0.0,
        )
        offsets = profile.offsets_c(topology)

        def run_arm(wax: bool) -> float:
            return (
                DatacenterSimulator(
                    characterization,
                    spec.power_model,
                    material,
                    trace,
                    topology=topology,
                    inlet_offsets_c=offsets,
                    config=SimulationConfig(mode="fluid", wax_enabled=wax),
                )
                .run()
                .peak_cooling_load_w
            )

        reduction = 1.0 - run_arm(True) / run_arm(False)
        hetero_reductions.append(reduction)
        hetero_rows.append([f"{spread:.0f} degC", f"{reduction:.1%}"])
    result.tables["inlet heterogeneity vs peak reduction"] = (
        ["rack inlet spread", "peak cooling reduction"],
        hetero_rows,
    )
    # Hot servers lose refreeze margin; cold servers melt late: spread
    # erodes the benefit relative to the isothermal room.
    result.summary["heterogeneity_erosion"] = (
        hetero_reductions[0] - hetero_reductions[-1]
    )

    return result
