"""Figure 11 fault variant: cooling load and room temperature under faults.

Not a figure from the paper — a robustness extension of the Section 5
studies. Each named scenario injects one fault class into the
oversubscribed cluster (plant sized at 95% of the unfaulted no-wax peak,
the chaos harness's scenario) and runs a baseline (no PCM) arm and a PCM
arm under the *identical* schedule, with the graceful-degradation
:class:`~repro.dcsim.throttling.FaultResponsePolicy` wrapped around the
paper's room-temperature throttle in both arms.

The questions the table answers: does PCM still clip the thermal peak
when the plant itself is degraded, and how much less does the cluster
have to throttle or shed with wax in the loop while a fault is active?
"""

from __future__ import annotations

import numpy as np

from repro.dcsim.simulator import SimulationResult
from repro.experiments.registry import ExperimentResult
from repro.faults.chaos import ChaosConfig, build_simulator
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    COOLING_LOSS,
    FAN_DERATE,
    POWER_CAP,
    SENSOR_DROPOUT,
    SERVER_OUTAGE,
    SUPPLY_EXCURSION,
    Fault,
    FaultSchedule,
    pcm_degradation_after,
)
from repro.materials.library import Stability
from repro.runner.pool import sweep
from repro.units import hours


def scenario_schedules(duration_s: float) -> dict[str, FaultSchedule]:
    """The named single-fault scenarios, all clearing before hour 24.

    Windows straddle the early afternoon demand peak (hour 13) so every
    fault bites while the system is already working hardest; magnitudes
    are severe-but-survivable picks from each kind's chaos range.
    """
    schedules = {
        "nominal": FaultSchedule.empty("nominal"),
        "fan_derate": FaultSchedule(
            (Fault(FAN_DERATE, hours(10.0), hours(16.0), 0.6),),
            name="fan_derate",
        ),
        "cooling_loss": FaultSchedule(
            (Fault(COOLING_LOSS, hours(11.0), hours(15.0), 0.4),),
            name="cooling_loss",
        ),
        "supply_excursion": FaultSchedule(
            (Fault(SUPPLY_EXCURSION, hours(10.0), hours(14.0), 6.0),),
            name="supply_excursion",
        ),
        "sensor_dropout": FaultSchedule(
            (Fault(SENSOR_DROPOUT, hours(11.0), hours(15.0)),),
            name="sensor_dropout",
        ),
        "power_cap": FaultSchedule(
            (Fault(POWER_CAP, hours(12.0), hours(16.0), 0.5),),
            name="power_cap",
        ),
        "server_outage": FaultSchedule(
            (Fault(SERVER_OUTAGE, hours(10.0), hours(14.0), 0.25),),
            name="server_outage",
        ),
        # Six years of diurnal cycling on a GOOD-stability paraffin,
        # active over the whole run (degradation does not clear).
        "pcm_degradation": FaultSchedule(
            (
                pcm_degradation_after(
                    Stability.GOOD, 6.0, 0.0, duration_s
                ),
            ),
            name="pcm_degradation",
        ),
    }
    return schedules


def _simulate_faulted_arm(task: tuple) -> SimulationResult:
    """One (schedule, arm) simulation (sweep worker)."""
    config, schedule, wax_enabled = task
    return build_simulator(
        config, FaultInjector(schedule), wax_enabled=wax_enabled
    ).run()


def _throttle_hours(result: SimulationResult, tick_interval_s: float) -> float:
    return float(np.sum(result.throttled_mask())) * tick_interval_s / 3600.0


def _shed_fraction(result: SimulationResult) -> float:
    offered = float(np.sum(result.demand)) * result.server_count
    if offered <= 0.0:
        return 0.0
    return float(np.sum(result.shed_work)) / offered


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Run every fault scenario's baseline/PCM arm pair."""
    config = ChaosConfig(server_count=24 if quick else 56)
    schedules = scenario_schedules(config.duration_s)

    tasks = [
        (config, schedule, wax_enabled)
        for schedule in schedules.values()
        for wax_enabled in (False, True)
    ]
    outcomes = sweep(
        _simulate_faulted_arm,
        tasks,
        jobs=jobs,
        label="runner.fig11_faults_arms",
    )

    result = ExperimentResult(
        experiment_id="fig11_faults",
        title="Cooling load and room temperature under injected faults",
    )
    rows = []
    for index, name in enumerate(schedules):
        baseline = outcomes[2 * index]
        with_pcm = outcomes[2 * index + 1]
        dt = config.tick_interval_s

        base_room = float(np.max(baseline.room_temperature_c))
        pcm_room = float(np.max(with_pcm.room_temperature_c))
        base_throttle = _throttle_hours(baseline, dt)
        pcm_throttle = _throttle_hours(with_pcm, dt)
        pcm_shed = _shed_fraction(with_pcm)

        if name == "nominal":
            result.series["hours"] = with_pcm.times_hours
        result.series[f"{name}_room_baseline"] = baseline.room_temperature_c
        result.series[f"{name}_room_pcm"] = with_pcm.room_temperature_c
        result.series[f"{name}_load_pcm"] = with_pcm.cooling_load_w

        result.summary[f"{name}_baseline_peak_room_c"] = base_room
        result.summary[f"{name}_pcm_peak_room_c"] = pcm_room
        result.summary[f"{name}_baseline_throttle_hours"] = base_throttle
        result.summary[f"{name}_pcm_throttle_hours"] = pcm_throttle
        result.summary[f"{name}_pcm_shed_fraction"] = pcm_shed

        rows.append(
            [
                name,
                f"{base_room:.2f}",
                f"{pcm_room:.2f}",
                f"{base_throttle:.1f}h",
                f"{pcm_throttle:.1f}h",
                f"{pcm_shed:.2%}",
                f"{float(np.max(with_pcm.melt_fraction)):.2f}",
            ]
        )

    result.tables["Fault scenarios: baseline vs PCM under one schedule"] = (
        [
            "scenario",
            "base peak room (C)",
            "PCM peak room (C)",
            "base throttled",
            "PCM throttled",
            "PCM shed",
            "PCM peak melt",
        ],
        rows,
    )
    return result
