"""Table 1: properties of common solid-liquid PCMs, plus the selection.

Regenerates the paper's material-comparison table and runs the Section
2.1 screening, confirming commercial-grade paraffin as the surviving
candidate and quantifying the eicosane-vs-commercial cost trade ("50x
cheaper for 20% lower energy per gram").
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.materials.cost import WaxCostModel
from repro.materials.library import COMMERCIAL_PARAFFIN, EICOSANE, MATERIAL_CLASSES
from repro.materials.selection import select_material
from repro.units import liters


def run(quick: bool = False) -> ExperimentResult:
    """Render Table 1 and the screening outcome."""
    rows = []
    for cls in MATERIAL_CLASSES:
        rows.append(
            [
                cls.name,
                f"{cls.melting_temp_range_c[0]:.0f}-{cls.melting_temp_range_c[1]:.0f}",
                f"{cls.heat_of_fusion_range_j_per_g[0]:.0f}-"
                f"{cls.heat_of_fusion_range_j_per_g[1]:.0f}",
                f"{cls.density_range_g_per_ml[0]:.1f}-"
                f"{cls.density_range_g_per_ml[1]:.1f}",
                cls.stability.name.replace("_", " ").title(),
                cls.electrical_conductivity.name.replace("_", " ").title(),
                "Yes" if cls.corrosive else "No",
            ]
        )

    report = select_material()
    screen_rows = [
        [
            result.name,
            "pass" if result.passed else "FAIL",
            "; ".join(result.failures) or "-",
        ]
        for result in report.results
    ]

    cost_model = WaxCostModel()
    deployment_volume = liters(1.2)
    servers = 55_440  # the paper's 10 MW datacenter of 1U servers
    eicosane_bill = cost_model.datacenter_wax_cost_usd(
        EICOSANE, deployment_volume, servers
    )
    commercial_bill = cost_model.datacenter_wax_cost_usd(
        COMMERCIAL_PARAFFIN, deployment_volume, servers
    )

    result = ExperimentResult(
        experiment_id="table1",
        title="Properties of common solid-liquid PCMs",
    )
    result.tables["Table 1"] = (
        [
            "PCM",
            "Melting Temp (C)",
            "Heat of Fusion (J/g)",
            "Density (g/ml)",
            "Stability",
            "E. Conductivity",
            "Corrosive?",
        ],
        rows,
    )
    result.tables["Section 2.1 screening"] = (
        ["class", "verdict", "failures"],
        screen_rows,
    )
    result.summary = {
        "selected_is_commercial_paraffin": float(
            report.selected is not None
            and report.selected.name == "Commercial Paraffins"
        ),
        "eicosane_cost_ratio": (
            EICOSANE.cost_usd_per_tonne / COMMERCIAL_PARAFFIN.cost_usd_per_tonne
        ),
        "energy_per_gram_penalty_fraction": 1.0
        - (
            COMMERCIAL_PARAFFIN.heat_of_fusion_j_per_kg
            / EICOSANE.heat_of_fusion_j_per_kg
        ),
        "eicosane_datacenter_wax_usd": eicosane_bill,
        "commercial_datacenter_wax_usd": commercial_bill,
    }
    result.paper = {
        "selected_is_commercial_paraffin": 1.0,
        "eicosane_cost_ratio": 50.0,
        "energy_per_gram_penalty_fraction": 0.20,
        # "over a million dollars in wax costs alone"
        "eicosane_datacenter_wax_usd": 1_000_000.0,
    }
    return result
