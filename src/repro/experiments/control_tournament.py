"""Control-policy tournament: closed-loop planners racing on one plant.

Not a paper figure — the control-subsystem extension study. Every
registered planner (greedy hysteresis throttle, receding-horizon MPC,
time-of-day schedule) drives the chaos harness's oversubscribed plant
through the shared scenario suite, and the scoreboard compares cooling
energy, SLO violations (throttled or shed ticks), and post-fault
recovery time.

The headline cells reproduce the control claim: on the pinned
cooling-loss scenario (45% of plant capacity lost for the four hours
into the demand peak) the MPC planner spends less cooling energy than
the open-loop schedule *and* recovers faster than the greedy
hysteresis latch, which stays throttled long after the fault clears
because the nominal release does not fit the just-restored plant at
peak load.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.control.tournament import (
    ControlScenario,
    build_scenario_simulator,
    default_scenarios,
    pinned_cooling_loss,
    quick_chaos_config,
    run_tournament,
)
from repro.faults.chaos import ChaosConfig

#: The scenario the acceptance orderings are asserted on.
PINNED_SCENARIO = "pinned_cooling_loss"


def _pinned_scenario(quick: bool) -> ControlScenario:
    config = quick_chaos_config() if quick else ChaosConfig()
    return ControlScenario(
        name=PINNED_SCENARIO, chaos=config, pinned=pinned_cooling_loss(config)
    )


def run(quick: bool = False) -> ExperimentResult:
    """Run the tournament and the pinned-scenario trace comparison."""
    board = run_tournament(quick=quick, chaos_seeds=1)

    headers = [
        "scenario",
        "planner",
        "cooling kWh",
        "throttle ticks",
        "shed ticks",
        "SLO violations",
        "recovery (s)",
    ]
    rows = [
        [
            score.scenario,
            score.planner,
            f"{score.energy_kwh:.4f}",
            score.throttle_ticks,
            score.shed_ticks,
            score.slo_violations,
            f"{score.recovery_time_s:.0f}",
        ]
        for score in sorted(
            board.scores, key=lambda s: (s.scenario, s.planner)
        )
    ]

    # Room-temperature traces on the acceptance scenario, one per
    # planner (deterministic re-runs of the scored cells).
    scenario = _pinned_scenario(quick)
    series: dict[str, np.ndarray] = {}
    for name in ("greedy", "mpc", "scheduled"):
        result = build_scenario_simulator(scenario, name).run()
        series[f"pinned_room_{name}_c"] = result.room_temperature_c
        if "times_h" not in series:
            series["times_h"] = result.times_s / 3600.0

    mpc = board.cell("mpc", PINNED_SCENARIO)
    greedy = board.cell("greedy", PINNED_SCENARIO)
    scheduled = board.cell("scheduled", PINNED_SCENARIO)
    summary = {
        "mpc_energy_kwh": mpc.energy_kwh,
        "scheduled_energy_kwh": scheduled.energy_kwh,
        "energy_advantage_kwh": scheduled.energy_kwh - mpc.energy_kwh,
        "mpc_recovery_s": mpc.recovery_time_s,
        "greedy_recovery_s": greedy.recovery_time_s,
        "recovery_advantage_s": greedy.recovery_time_s - mpc.recovery_time_s,
        "mpc_slo_violations": float(mpc.slo_violations),
        "greedy_slo_violations": float(greedy.slo_violations),
    }

    return ExperimentResult(
        experiment_id="control_tournament",
        title="Closed-loop control policy tournament",
        tables={"Tournament scoreboard": (headers, rows)},
        series=series,
        summary=summary,
    )
