"""Figure 12 and Section 5.2: PCM to increase throughput.

Runs the thermally constrained (oversubscribed) datacenter for each
platform: the ideal, no-wax, and with-wax arms, normalized to the peak
throughput while downclocked.

Scenario calibration (per platform): the cooling plant's oversubscription
level sets how deeply constrained the datacenter is — the paper does not
state it, so it is chosen here such that the baseline cluster hits its
thermal limit at the demand levels implied by the paper's reported gains;
the wax blend for this scenario melts just above each platform's
setpoint-inlet peak zone temperature so the warming room drives it at the
surplus rate.

Paper headline values: +33% peak throughput over 5.1 h (1U), +69% over
3.1 h (2U), +34% over 3.1 h (OCP); TCO efficiency improvements of 23%,
39%, and 24%.
"""

from __future__ import annotations

from repro.core.scenarios import ThroughputOutcome, ThroughputStudy
from repro.experiments.registry import ExperimentResult
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.runner.pool import sweep
from repro.server.configs import PLATFORM_BUILDERS
from repro.tco.params import platform_tco_parameters
from repro.tco.scenarios import tco_efficiency
from repro.workload.google import synthesize_google_trace

#: Calibrated (oversubscription, scenario wax melting point) per platform.
SCENARIO_CALIBRATION = {
    "1u": (0.836, 45.0),
    "2u": (0.695, 49.0),
    "ocp": (0.800, 56.0),
}

PAPER_GAIN = {"1u": 0.33, "2u": 0.69, "ocp": 0.34}
PAPER_ELEVATED_HOURS = {"1u": 5.1, "2u": 3.1, "ocp": 3.1}
PAPER_TCO_EFFICIENCY = {"1u": 0.23, "2u": 0.39, "ocp": 0.24}


def _platform_outcome(platform: str) -> ThroughputOutcome:
    """Run one platform's three-arm study (sweep worker).

    The trace is re-synthesized in the worker — deterministic and far
    cheaper to recreate than to pickle alongside three result arms.
    """
    spec = PLATFORM_BUILDERS[platform]()
    oversubscription, melt = SCENARIO_CALIBRATION[platform]
    return ThroughputStudy(
        spec,
        synthesize_google_trace().total,
        oversubscription=oversubscription,
        material=commercial_paraffin_with_melting_point(melt),
    ).run()


def run(quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Run the Section 5.2 study for every platform.

    ``jobs`` fans the three platform studies across worker processes;
    inside a worker each study runs its arms serially (no nested
    pools).
    """
    result = ExperimentResult(
        experiment_id="fig12",
        title="Cluster throughput in a thermally constrained datacenter",
    )
    platforms = list(PLATFORM_BUILDERS)
    outcomes = sweep(
        _platform_outcome,
        platforms,
        jobs=jobs,
        label="runner.fig12_platforms",
    )
    rows = []
    for platform, outcome in zip(platforms, outcomes):
        spec = PLATFORM_BUILDERS[platform]()
        oversubscription, melt = SCENARIO_CALIBRATION[platform]

        gain = outcome.peak_throughput_gain
        elevated = outcome.elevated_hours
        efficiency = tco_efficiency(
            platform_tco_parameters(platform),
            gain,
            server_count=spec.datacenter_servers,
        )

        result.series[f"{platform}_hours"] = outcome.ideal.result.times_hours
        for arm in (outcome.ideal, outcome.no_wax, outcome.with_wax):
            key = arm.label.lower().replace(" ", "_")
            result.series[f"{platform}_{key}"] = arm.normalized_throughput

        rows.append(
            [
                spec.name,
                f"{oversubscription:.3f}",
                f"{melt:.0f}",
                f"+{gain:.0%}",
                f"+{PAPER_GAIN[platform]:.0%}",
                f"{elevated:.1f}h",
                f"{PAPER_ELEVATED_HOURS[platform]:.1f}h",
                f"{efficiency.improvement_fraction:.0%}",
            ]
        )
        result.summary[f"{platform}_peak_throughput_gain"] = gain
        result.summary[f"{platform}_elevated_hours"] = elevated
        result.summary[f"{platform}_tco_efficiency_improvement"] = (
            efficiency.improvement_fraction
        )
        result.paper[f"{platform}_peak_throughput_gain"] = PAPER_GAIN[platform]
        result.paper[f"{platform}_elevated_hours"] = PAPER_ELEVATED_HOURS[
            platform
        ]
        result.paper[f"{platform}_tco_efficiency_improvement"] = (
            PAPER_TCO_EFFICIENCY[platform]
        )

    result.tables["Fig 12 / Section 5.2 headline results"] = (
        [
            "platform",
            "oversub",
            "melt (C)",
            "gain",
            "paper",
            "elevated",
            "paper",
            "TCO eff.",
        ],
        rows,
    )
    return result
