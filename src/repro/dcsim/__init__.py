"""DCSim: an event-based datacenter traffic + thermal simulator.

Reimplementation of the simulator the paper uses for its scale-out study
(Section 4.2): "an event-based simulator that models job arrival, load
balancing, and work completion for the input job distribution traces at
the server, rack, and cluster levels, then extrapolates the cluster model
out for the whole datacenter. We use a round robin load balancing scheme,
and extend DCSim to model thermal time shifting with PCM using wax melting
characteristics derived from extensive Icepak simulations of each server."

Two fidelity modes share one thermal core:

* **event** — discrete job arrivals, round-robin dispatch across the
  cluster, slot occupancy, completions (with exact DVFS time dilation via
  a global work clock);
* **fluid** — per-tick utilization taken directly from the load trace,
  for fast parameter sweeps.
"""

from repro.dcsim.events import Event, EventQueue
from repro.dcsim.geo import GeoPair, GeoResult, GeoSite
from repro.dcsim.mixed import MixedFleet, rollout_curve
from repro.dcsim.loadbalancer import LeastLoaded, LoadBalancer, RoundRobin
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.rack_thermals import RackInletProfile
from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.dcsim.throttling import (
    NoThermalLimit,
    ThermalLimitPolicy,
    ThrottleDecision,
)
from repro.dcsim.simulator import (
    DatacenterSimulator,
    SimulationConfig,
    SimulationResult,
)

__all__ = [
    "Event",
    "EventQueue",
    "LoadBalancer",
    "RoundRobin",
    "LeastLoaded",
    "ClusterTopology",
    "ClusterThermalState",
    "RackInletProfile",
    "RoomModel",
    "GeoPair",
    "GeoSite",
    "GeoResult",
    "MixedFleet",
    "rollout_curve",
    "NoThermalLimit",
    "ThermalLimitPolicy",
    "ThrottleDecision",
    "DatacenterSimulator",
    "SimulationConfig",
    "SimulationResult",
]
