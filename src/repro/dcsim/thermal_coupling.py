"""Vectorized per-server thermal + wax state for a whole cluster.

This is the cluster-scale form of
:class:`repro.server.characterization.LumpedServerModel`: the same
equations, evaluated with NumPy across every server at once, so a
1008-server cluster ticking every simulated minute over two days costs a
few thousand small array operations.

Per tick and per server:

1. wall power from the (utilization, frequency) operating point;
2. the wax-zone air temperature relaxes toward the characterized steady
   value at the effective utilization;
3. the wax exchanges ``UA * (T_zone - T_wax)`` with the zone air, its
   enthalpy integrating the flow (melting/refreezing by the enthalpy
   method);
4. heat release to the room = power - wax absorption rate.

Servers without wax use the same object with ``wax_enabled=False`` (the
exchange term is forced to zero), so with/without-PCM comparisons share
every other code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel


def temperature_at_enthalpy_array(
    material: PCMMaterial, specific_enthalpy_j_per_kg: np.ndarray
) -> np.ndarray:
    """Vectorized enthalpy -> temperature map (see ``PCMMaterial``)."""
    h = np.asarray(specific_enthalpy_j_per_kg, dtype=float)
    fusion = material.heat_of_fusion_j_per_kg
    solid = material.solidus_c + h / material.specific_heat_solid_j_per_kg_k
    mushy = material.solidus_c + (h / fusion) * material.melting_range_c
    liquid = material.liquidus_c + (h - fusion) / (
        material.specific_heat_liquid_j_per_kg_k
    )
    return np.where(h <= 0, solid, np.where(h >= fusion, liquid, mushy))


def melt_fraction_array(
    material: PCMMaterial, specific_enthalpy_j_per_kg: np.ndarray
) -> np.ndarray:
    """Vectorized melt fraction in [0, 1]."""
    h = np.asarray(specific_enthalpy_j_per_kg, dtype=float)
    return np.clip(h / material.heat_of_fusion_j_per_kg, 0.0, 1.0)


def enthalpy_at_temperature_array(
    material: PCMMaterial, temperature_c: np.ndarray
) -> np.ndarray:
    """Vectorized temperature -> enthalpy map (see ``PCMMaterial``)."""
    t = np.asarray(temperature_c, dtype=float)
    fusion = material.heat_of_fusion_j_per_kg
    solid = (t - material.solidus_c) * material.specific_heat_solid_j_per_kg_k
    mushy = (t - material.solidus_c) / material.melting_range_c * fusion
    liquid = fusion + (t - material.liquidus_c) * (
        material.specific_heat_liquid_j_per_kg_k
    )
    return np.where(
        t <= material.solidus_c,
        solid,
        np.where(t >= material.liquidus_c, liquid, mushy),
    )


class ClusterThermalState:
    """Mutable thermal state of every server in one cluster."""

    def __init__(
        self,
        characterization: PlatformCharacterization,
        power_model: ServerPowerModel,
        material: PCMMaterial,
        server_count: int,
        inlet_temperature_c: float = 25.0,
        initial_utilization: float = 0.0,
        wax_enabled: bool = True,
        inlet_offset_c: np.ndarray | None = None,
    ) -> None:
        if server_count <= 0:
            raise ConfigurationError(
                f"server count must be positive, got {server_count}"
            )
        self.characterization = characterization
        self.power_model = power_model
        self.material = material
        self.server_count = server_count
        self.inlet_temperature_c = inlet_temperature_c
        self.wax_enabled = wax_enabled
        self.wax_mass_kg = characterization.wax_mass_kg

        if inlet_offset_c is None:
            self.inlet_offset_c = np.zeros(server_count)
        else:
            offsets = np.asarray(inlet_offset_c, dtype=float)
            if offsets.shape != (server_count,):
                raise ConfigurationError(
                    f"expected inlet offsets shape ({server_count},), got "
                    f"{offsets.shape}"
                )
            self.inlet_offset_c = offsets

        initial_delta = float(characterization.zone_delta_at(initial_utilization))
        self.zone_temperature_c = (
            inlet_temperature_c + self.inlet_offset_c + initial_delta
        )
        self.specific_enthalpy_j_per_kg = enthalpy_at_temperature_array(
            material, self.zone_temperature_c
        )

    # -- queries -----------------------------------------------------------

    @property
    def wax_temperature_c(self) -> np.ndarray:
        """Per-server wax temperature."""
        return temperature_at_enthalpy_array(
            self.material, self.specific_enthalpy_j_per_kg
        )

    @property
    def melt_fraction(self) -> np.ndarray:
        """Per-server wax melt fraction."""
        return melt_fraction_array(self.material, self.specific_enthalpy_j_per_kg)

    @property
    def stored_latent_heat_j(self) -> float:
        """Cluster-total latent heat currently banked in the wax."""
        return float(
            np.sum(self.melt_fraction)
            * self.wax_mass_kg
            * self.material.heat_of_fusion_j_per_kg
        )

    def effective_utilization(
        self, utilization: np.ndarray, frequency_ghz: float
    ) -> np.ndarray:
        """Power-equivalent utilization (folds in DVFS)."""
        factor = self.power_model.frequency_factor(frequency_ghz)
        return np.asarray(utilization) * factor

    def power_w(self, utilization: np.ndarray, frequency_ghz: float) -> np.ndarray:
        """Per-server wall power at an operating point."""
        u_eff = self.effective_utilization(utilization, frequency_ghz)
        return self.power_model.idle_power_w + (
            self.power_model.dynamic_range_w * u_eff
        )

    def wax_exchange_w(
        self, utilization: np.ndarray, frequency_ghz: float
    ) -> np.ndarray:
        """Instantaneous air-to-wax heat flow at the *current* state,
        without advancing it (used by throttling policies to preview what
        the wax could absorb this tick)."""
        if not self.wax_enabled:
            return np.zeros(self.server_count)
        u_eff = self.effective_utilization(utilization, frequency_ghz)
        ua = self.characterization.ua_at(u_eff)
        return ua * (self.zone_temperature_c - self.wax_temperature_c)

    # -- dynamics ------------------------------------------------------------

    def step(
        self,
        dt_s: float,
        utilization: np.ndarray,
        frequency_ghz: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one tick; returns (power_w, heat_release_w, wax_heat_w).

        ``utilization`` is per-server busy fraction in [0, 1];
        ``frequency_ghz`` is the cluster-wide DVFS state this tick.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"tick must be positive, got {dt_s}")
        utilization = np.asarray(utilization, dtype=float)
        if utilization.shape != (self.server_count,):
            raise ConfigurationError(
                f"expected utilization shape ({self.server_count},), got "
                f"{utilization.shape}"
            )
        if np.any(utilization < -1e-9) or np.any(utilization > 1.0 + 1e-9):
            raise ConfigurationError("utilization must lie in [0, 1]")

        u_eff = self.effective_utilization(utilization, frequency_ghz)
        power = self.power_model.idle_power_w + (
            self.power_model.dynamic_range_w * u_eff
        )

        target = (
            self.inlet_temperature_c
            + self.inlet_offset_c
            + self.characterization.zone_delta_at(u_eff)
        )
        blend = 1.0 - np.exp(-dt_s / self.characterization.zone_time_constant_s)
        self.zone_temperature_c += blend * (target - self.zone_temperature_c)

        if self.wax_enabled:
            ua = self.characterization.ua_at(u_eff)
            wax_heat = ua * (self.zone_temperature_c - self.wax_temperature_c)
            self.specific_enthalpy_j_per_kg += wax_heat * dt_s / self.wax_mass_kg
        else:
            wax_heat = np.zeros(self.server_count)

        return power, power - wax_heat, wax_heat
