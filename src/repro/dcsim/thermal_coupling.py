"""Vectorized per-server thermal + wax state for a whole cluster.

This is the cluster-scale form of
:class:`repro.server.characterization.LumpedServerModel`: the same
equations, evaluated with NumPy across every server at once, so a
1008-server cluster ticking every simulated minute over two days costs a
few thousand small array operations.

Per tick and per server:

1. wall power from the (utilization, frequency) operating point;
2. the wax-zone air temperature relaxes toward the characterized steady
   value at the effective utilization;
3. the wax exchanges ``UA * (T_zone - T_wax)`` with the zone air, its
   enthalpy integrating the flow (melting/refreezing by the enthalpy
   method);
4. heat release to the room = power - wax absorption rate.

Servers without wax use the same object with ``wax_enabled=False`` (the
exchange term is forced to zero), so with/without-PCM comparisons share
every other code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.obs import get_registry
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.thermal.backends import (
    NumbaBackend,
    jit_compile,
    validate_backend_choice,
)


def _wax_step_loop(
    zone,
    enthalpy,
    target,
    blend,
    ua,
    enabled,
    dt_s,
    eff_mass,
    solidus,
    liquidus,
    fusion,
    c_solid,
    c_liquid,
    melt_range,
    zone_out,
    heat_out,
    enthalpy_out,
):
    """Elementwise wax-step kernel in loop form for Numba compilation.

    Per-element arithmetic (and branch structure) matches the vectorized
    NumPy path in :meth:`BatchedClusterThermalState.step` operation for
    operation, so the two paths agree bitwise — elementwise ops have no
    summation order to reassociate. Kept as a module-level pure function
    so :func:`repro.thermal.backends.jit_compile` can cache one compiled
    instance process-wide.
    """
    clusters, servers = zone.shape
    for c in range(clusters):
        for s in range(servers):
            z = zone[c, s] + blend * (target[c, s] - zone[c, s])
            h = enthalpy[c, s]
            if h <= 0.0:
                wax_t = solidus[c, 0] + h / c_solid[c, 0]
            elif h >= fusion[c, 0]:
                wax_t = liquidus[c, 0] + (h - fusion[c, 0]) / c_liquid[c, 0]
            else:
                wax_t = solidus[c, 0] + (h / fusion[c, 0]) * melt_range[c, 0]
            if enabled[c, s]:
                heat = ua[c, s] * (z - wax_t)
                h = h + heat * dt_s / eff_mass
            else:
                heat = 0.0
            zone_out[c, s] = z
            heat_out[c, s] = heat
            enthalpy_out[c, s] = h


def temperature_at_enthalpy_array(
    material: PCMMaterial, specific_enthalpy_j_per_kg: np.ndarray
) -> np.ndarray:
    """Vectorized enthalpy -> temperature map (see ``PCMMaterial``)."""
    h = np.asarray(specific_enthalpy_j_per_kg, dtype=float)
    fusion = material.heat_of_fusion_j_per_kg
    solid = material.solidus_c + h / material.specific_heat_solid_j_per_kg_k
    mushy = material.solidus_c + (h / fusion) * material.melting_range_c
    liquid = material.liquidus_c + (h - fusion) / (
        material.specific_heat_liquid_j_per_kg_k
    )
    return np.where(h <= 0, solid, np.where(h >= fusion, liquid, mushy))


def melt_fraction_array(
    material: PCMMaterial, specific_enthalpy_j_per_kg: np.ndarray
) -> np.ndarray:
    """Vectorized melt fraction in [0, 1]."""
    h = np.asarray(specific_enthalpy_j_per_kg, dtype=float)
    return np.clip(h / material.heat_of_fusion_j_per_kg, 0.0, 1.0)


def enthalpy_at_temperature_array(
    material: PCMMaterial, temperature_c: np.ndarray
) -> np.ndarray:
    """Vectorized temperature -> enthalpy map (see ``PCMMaterial``)."""
    t = np.asarray(temperature_c, dtype=float)
    fusion = material.heat_of_fusion_j_per_kg
    solid = (t - material.solidus_c) * material.specific_heat_solid_j_per_kg_k
    mushy = (t - material.solidus_c) / material.melting_range_c * fusion
    liquid = fusion + (t - material.liquidus_c) * (
        material.specific_heat_liquid_j_per_kg_k
    )
    return np.where(
        t <= material.solidus_c,
        solid,
        np.where(t >= material.liquidus_c, liquid, mushy),
    )


class BatchedClusterThermalState:
    """Stacked ``(clusters, servers)`` thermal state for many clusters.

    All clusters share one characterization and power model — the stacked
    form of the fig10/11/12 sweeps, where the same platform runs under
    many scenarios at once. Per-cluster knobs (inlet temperature, wax
    material, wax enablement, initial utilization, DVFS frequency) vary
    along the leading axis; passing a list of materials batches a
    melting-point sweep. Every update is elementwise across that axis in
    the exact operation order of a lone cluster, so each member's
    trajectory is bit-identical to stepping it alone.
    """

    def __init__(
        self,
        characterization: PlatformCharacterization,
        power_model: ServerPowerModel,
        material: PCMMaterial | list[PCMMaterial],
        cluster_count: int,
        server_count: int,
        inlet_temperature_c: float | np.ndarray = 25.0,
        initial_utilization: float | np.ndarray = 0.0,
        wax_enabled: bool | np.ndarray = True,
        inlet_offset_c: np.ndarray | None = None,
        backend: str = "auto",
    ) -> None:
        if cluster_count <= 0:
            raise ConfigurationError(
                f"cluster count must be positive, got {cluster_count}"
            )
        if server_count <= 0:
            raise ConfigurationError(
                f"server count must be positive, got {server_count}"
            )
        self.characterization = characterization
        self.power_model = power_model
        if isinstance(material, PCMMaterial):
            materials = [material] * cluster_count
        else:
            materials = list(material)
            if len(materials) != cluster_count:
                raise ConfigurationError(
                    f"expected {cluster_count} materials, got {len(materials)}"
                )
        self.materials = materials
        self.material = materials[0]
        # Material parameters as (clusters, 1) columns so the enthalpy
        # maps broadcast per cluster across the server axis.
        self._solidus = np.array([[m.solidus_c] for m in materials])
        self._liquidus = np.array([[m.liquidus_c] for m in materials])
        self._fusion = np.array([[m.heat_of_fusion_j_per_kg] for m in materials])
        self._c_solid = np.array(
            [[m.specific_heat_solid_j_per_kg_k] for m in materials]
        )
        self._c_liquid = np.array(
            [[m.specific_heat_liquid_j_per_kg_k] for m in materials]
        )
        self._melt_range = np.array([[m.melting_range_c] for m in materials])
        self.cluster_count = cluster_count
        self.server_count = server_count
        self.wax_mass_kg = characterization.wax_mass_kg
        self.inlet_temperature_c = np.broadcast_to(
            np.asarray(inlet_temperature_c, dtype=float), (cluster_count,)
        ).copy()
        self.wax_enabled = np.broadcast_to(
            np.asarray(wax_enabled, dtype=bool), (cluster_count,)
        ).copy()

        if inlet_offset_c is None:
            self.inlet_offset_c = np.zeros((cluster_count, server_count))
        else:
            offsets = np.asarray(inlet_offset_c, dtype=float)
            if offsets.shape == (server_count,):
                offsets = np.broadcast_to(
                    offsets, (cluster_count, server_count)
                ).copy()
            if offsets.shape != (cluster_count, server_count):
                raise ConfigurationError(
                    f"expected inlet offsets shape "
                    f"({cluster_count}, {server_count}), got {offsets.shape}"
                )
            self.inlet_offset_c = offsets

        initial_delta = characterization.zone_delta_at(
            np.broadcast_to(
                np.asarray(initial_utilization, dtype=float), (cluster_count,)
            )
        )
        self.zone_temperature_c = (
            self.inlet_temperature_c[:, None]
            + self.inlet_offset_c
            + initial_delta[:, None]
        )
        self.specific_enthalpy_j_per_kg = self._enthalpy_at_temperature(
            self.zone_temperature_c
        )
        # Fault-injection scales (see repro.faults). Exactly 1.0 means the
        # scaled quantity is not multiplied at all, keeping faultless runs
        # bit-identical to the un-instrumented dynamics.
        self._ua_scale = 1.0
        self._zone_delta_scale = 1.0
        self._wax_capacity_factor = 1.0

        # The cluster state is elementwise per server — there is no
        # conduction operator to sparsify, so "sparse" is rejected and
        # "auto" is the (bit-identical) vectorized NumPy path. Explicit
        # "numba" swaps the step tail for the JIT-compiled loop kernel.
        validate_backend_choice(backend)
        if backend == "sparse":
            raise ConfigurationError(
                "backend='sparse' does not apply to the cluster thermal "
                "state: its dynamics are elementwise per server with no "
                "conduction operator; use 'auto', 'numpy', or 'numba'"
            )
        self._step_kernel = None
        if backend == "numba":
            if not NumbaBackend.is_available():
                raise ConfigurationError(
                    "solver backend 'numba' is not available on this "
                    "machine (install the compiled extra: pip install "
                    "'repro[compiled]'), or use backend='auto' for the "
                    "NumPy fallback"
                )
            kernel, jitted = jit_compile(_wax_step_loop, "dcsim.wax_step")
            if jitted:
                self._step_kernel = kernel
        self.backend = "numba" if self._step_kernel is not None else "numpy"
        obs = get_registry()
        if obs.enabled:
            obs.count(f"solver.backend.{self.backend}")

    def set_fault_scales(
        self,
        ua_scale: float = 1.0,
        zone_delta_scale: float = 1.0,
        wax_capacity_factor: float = 1.0,
    ) -> None:
        """Set the fault-injection modifiers for subsequent steps.

        ``ua_scale`` scales the air-to-wax conductance (a derated fan
        moves less air over the boxes), ``zone_delta_scale`` scales the
        steady zone temperature rise (less flow removes less heat per
        degree), and ``wax_capacity_factor`` scales the effective wax
        mass (cycling degradation shrinks the latent store). All three
        persist until changed; the injector resets them to 1.0 when the
        fault clears.
        """
        for label, value in (
            ("ua scale", ua_scale),
            ("zone delta scale", zone_delta_scale),
            ("wax capacity factor", wax_capacity_factor),
        ):
            if not value > 0.0:
                raise ConfigurationError(
                    f"{label} must be positive, got {value}"
                )
        if wax_capacity_factor > 1.0:
            raise ConfigurationError(
                f"wax capacity factor cannot exceed 1.0, got "
                f"{wax_capacity_factor}"
            )
        self._ua_scale = float(ua_scale)
        self._zone_delta_scale = float(zone_delta_scale)
        self._wax_capacity_factor = float(wax_capacity_factor)

    # -- per-cluster enthalpy maps (same branches as ``PCMMaterial``) -------

    def _temperature_at_enthalpy(self, h: np.ndarray) -> np.ndarray:
        solid = self._solidus + h / self._c_solid
        mushy = self._solidus + (h / self._fusion) * self._melt_range
        liquid = self._liquidus + (h - self._fusion) / self._c_liquid
        return np.where(h <= 0, solid, np.where(h >= self._fusion, liquid, mushy))

    def _enthalpy_at_temperature(self, t: np.ndarray) -> np.ndarray:
        solid = (t - self._solidus) * self._c_solid
        mushy = (t - self._solidus) / self._melt_range * self._fusion
        liquid = self._fusion + (t - self._liquidus) * self._c_liquid
        return np.where(
            t <= self._solidus,
            solid,
            np.where(t >= self._liquidus, liquid, mushy),
        )

    # -- queries -----------------------------------------------------------

    @property
    def wax_temperature_c(self) -> np.ndarray:
        """Per-server wax temperature, shape ``(clusters, servers)``."""
        return self._temperature_at_enthalpy(self.specific_enthalpy_j_per_kg)

    @property
    def melt_fraction(self) -> np.ndarray:
        """Per-server wax melt fraction, shape ``(clusters, servers)``."""
        return np.clip(self.specific_enthalpy_j_per_kg / self._fusion, 0.0, 1.0)

    @property
    def effective_wax_mass_kg(self) -> float:
        """Wax mass after any active capacity-degradation fault."""
        if self._wax_capacity_factor != 1.0:
            return self.wax_mass_kg * self._wax_capacity_factor
        return self.wax_mass_kg

    @property
    def stored_latent_heat_j(self) -> np.ndarray:
        """Per-cluster total latent heat currently banked in the wax."""
        return (
            np.sum(self.melt_fraction, axis=1)
            * self.effective_wax_mass_kg
            * self._fusion[:, 0]
        )

    def _frequency_factors(self, frequency_ghz: float | np.ndarray) -> np.ndarray:
        """Per-cluster DVFS power factors via the scalar power model."""
        frequencies = np.broadcast_to(
            np.asarray(frequency_ghz, dtype=float), (self.cluster_count,)
        )
        return np.array(
            [
                self.power_model.frequency_factor(float(frequency))
                for frequency in frequencies
            ]
        )

    def effective_utilization(
        self, utilization: np.ndarray, frequency_ghz: float | np.ndarray
    ) -> np.ndarray:
        """Power-equivalent utilization (folds in DVFS)."""
        factors = self._frequency_factors(frequency_ghz)
        return np.asarray(utilization) * factors[:, None]

    def power_w(
        self, utilization: np.ndarray, frequency_ghz: float | np.ndarray
    ) -> np.ndarray:
        """Per-server wall power at an operating point."""
        u_eff = self.effective_utilization(utilization, frequency_ghz)
        return self.power_model.idle_power_w + (
            self.power_model.dynamic_range_w * u_eff
        )

    def wax_exchange_w(
        self, utilization: np.ndarray, frequency_ghz: float | np.ndarray
    ) -> np.ndarray:
        """Instantaneous air-to-wax heat flow at the *current* state,
        without advancing it (used by throttling policies to preview what
        the wax could absorb this tick)."""
        u_eff = self.effective_utilization(utilization, frequency_ghz)
        ua = self.characterization.ua_at(u_eff)
        if self._ua_scale != 1.0:
            ua = ua * self._ua_scale
        exchange = ua * (self.zone_temperature_c - self.wax_temperature_c)
        return np.where(self.wax_enabled[:, None], exchange, 0.0)

    # -- dynamics ------------------------------------------------------------

    def step(
        self,
        dt_s: float,
        utilization: np.ndarray,
        frequency_ghz: float | np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one tick; returns (power_w, heat_release_w, wax_heat_w).

        ``utilization`` is per-server busy fraction in [0, 1] with shape
        ``(clusters, servers)``; ``frequency_ghz`` is each cluster's DVFS
        state this tick (scalar broadcasts to every cluster).
        """
        if dt_s <= 0:
            raise ConfigurationError(f"tick must be positive, got {dt_s}")
        utilization = np.asarray(utilization, dtype=float)
        if utilization.shape != (self.cluster_count, self.server_count):
            raise ConfigurationError(
                f"expected utilization shape "
                f"({self.cluster_count}, {self.server_count}), got "
                f"{utilization.shape}"
            )
        if np.any(utilization < -1e-9) or np.any(utilization > 1.0 + 1e-9):
            raise ConfigurationError("utilization must lie in [0, 1]")

        u_eff = self.effective_utilization(utilization, frequency_ghz)
        power = self.power_model.idle_power_w + (
            self.power_model.dynamic_range_w * u_eff
        )

        zone_delta = self.characterization.zone_delta_at(u_eff)
        if self._zone_delta_scale != 1.0:
            zone_delta = zone_delta * self._zone_delta_scale
        target = (
            self.inlet_temperature_c[:, None] + self.inlet_offset_c + zone_delta
        )
        blend = 1.0 - np.exp(-dt_s / self.characterization.zone_time_constant_s)

        ua = self.characterization.ua_at(u_eff)
        if self._ua_scale != 1.0:
            ua = ua * self._ua_scale

        if self._step_kernel is not None:
            # The kernel applies the zone blend itself (same arithmetic as
            # the += below), then the wax exchange per element.
            shape = self.zone_temperature_c.shape
            zone_out = np.empty(shape)
            heat_out = np.empty(shape)
            enthalpy_out = np.empty(shape)
            self._step_kernel(
                self.zone_temperature_c,
                self.specific_enthalpy_j_per_kg,
                np.ascontiguousarray(np.broadcast_to(target, shape)),
                float(blend),
                np.broadcast_to(ua, shape).astype(float),
                np.ascontiguousarray(
                    np.broadcast_to(self.wax_enabled[:, None], shape)
                ),
                float(dt_s),
                float(self.effective_wax_mass_kg),
                self._solidus,
                self._liquidus,
                self._fusion,
                self._c_solid,
                self._c_liquid,
                self._melt_range,
                zone_out,
                heat_out,
                enthalpy_out,
            )
            # In-place writes keep ClusterThermalState's row views live.
            self.zone_temperature_c[...] = zone_out
            self.specific_enthalpy_j_per_kg[...] = enthalpy_out
            return power, power - heat_out, heat_out

        self.zone_temperature_c += blend * (target - self.zone_temperature_c)
        exchange = ua * (self.zone_temperature_c - self.wax_temperature_c)
        wax_heat = np.where(self.wax_enabled[:, None], exchange, 0.0)
        self.specific_enthalpy_j_per_kg += np.where(
            self.wax_enabled[:, None],
            wax_heat * dt_s / self.effective_wax_mass_kg,
            0.0,
        )

        return power, power - wax_heat, wax_heat

    # -- stretch advance -----------------------------------------------------

    def uniform_advancer(self, dt_s: float) -> "UniformStretchAdvancer | None":
        """A scalar stretch-advance view of this state, or ``None``.

        Eligibility demands that every elementwise operation of
        :meth:`step` would act on *identical* inputs across the whole
        ``(1, servers)`` state: one cluster, no per-server inlet offsets,
        no active fault scales (exactly 1.0 means the scaled quantity is
        never multiplied), and a zone/enthalpy field that is uniform to
        the bit. Under those conditions the returned advancer replays the
        step arithmetic on Python scalars, bit-identically per server —
        the fluid engine's stretch fast path (see
        :mod:`repro.dcsim.fluid_engine`).
        """
        if dt_s <= 0:
            raise ConfigurationError(f"tick must be positive, got {dt_s}")
        if self.cluster_count != 1:
            return None
        if (
            self._ua_scale != 1.0
            or self._zone_delta_scale != 1.0
            or self._wax_capacity_factor != 1.0
        ):
            return None
        if self.inlet_offset_c.any():
            return None
        zone = self.zone_temperature_c[0]
        enthalpy = self.specific_enthalpy_j_per_kg[0]
        if np.ptp(zone) != 0.0 or np.ptp(enthalpy) != 0.0:
            return None
        return UniformStretchAdvancer(self, dt_s)


class UniformStretchAdvancer:
    """Scalar recursion over a uniform single-cluster thermal state.

    Obtained from :meth:`BatchedClusterThermalState.uniform_advancer`
    once the state is provably uniform across servers. Each
    :meth:`tick` performs, on plain Python floats, exactly the
    per-element arithmetic (and branch structure) that
    :meth:`BatchedClusterThermalState.step` performs on every server —
    elementwise IEEE operations on identical inputs yield identical
    outputs, so the trajectory is bit-identical to stepping the arrays.
    :meth:`commit` broadcasts the final scalars back over the array
    state. The advancer is single-use: commit once, then discard.

    The zone/enthalpy recursion is inherently sequential in time, so the
    win is not vectorization across ticks but replacing ~15 small-array
    NumPy operations per tick with a handful of float operations.
    """

    def __init__(self, state: BatchedClusterThermalState, dt_s: float) -> None:
        self._state = state
        self._characterization = state.characterization
        self._dt_s = float(dt_s)
        power_model = state.power_model
        self._idle_w = float(power_model.idle_power_w)
        self._dynamic_range_w = float(power_model.dynamic_range_w)
        # Same expression step() evaluates each tick (dt and the time
        # constant never change mid-run, so neither does the result).
        self._blend = float(
            1.0 - np.exp(-dt_s / state.characterization.zone_time_constant_s)
        )
        self._solidus = float(state._solidus[0, 0])
        self._liquidus = float(state._liquidus[0, 0])
        self._fusion = float(state._fusion[0, 0])
        self._c_solid = float(state._c_solid[0, 0])
        self._c_liquid = float(state._c_liquid[0, 0])
        self._melt_range = float(state._melt_range[0, 0])
        self._wax_mass = float(state.effective_wax_mass_kg)
        self._enabled = bool(state.wax_enabled[0])
        self._zone = float(state.zone_temperature_c[0, 0])
        self._enthalpy = float(state.specific_enthalpy_j_per_kg[0, 0])

    def interp_series(
        self, effective_utilization: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-tick (zone delta, UA) series for a stretch.

        ``np.interp`` evaluates elementwise, so looking a whole stretch
        up at once is bit-identical to the per-tick scalar lookups
        inside :meth:`BatchedClusterThermalState.step` (which, absent
        fault scales — an eligibility condition — applies no further
        arithmetic to either).
        """
        characterization = self._characterization
        return (
            characterization.zone_delta_at(effective_utilization),
            characterization.ua_at(effective_utilization),
        )

    def tick(
        self, inlet_c: float, u_eff: float, zone_delta: float, ua: float
    ) -> tuple[float, float, float, float]:
        """Advance one tick; returns (power, release, wax heat, melt).

        All four returns are *per-server* scalars; every server of the
        uniform state carries the same value this tick.
        """
        power = self._idle_w + (self._dynamic_range_w * u_eff)
        # target = inlet[:, None] + inlet_offset + zone_delta, with the
        # offsets all exactly 0.0 by eligibility.
        target = inlet_c + 0.0 + zone_delta
        zone = self._zone
        zone = zone + self._blend * (target - zone)
        enthalpy = self._enthalpy
        # The chosen branch of the np.where enthalpy->temperature map.
        if enthalpy <= 0.0:
            wax_t = self._solidus + enthalpy / self._c_solid
        elif enthalpy >= self._fusion:
            wax_t = self._liquidus + (enthalpy - self._fusion) / self._c_liquid
        else:
            wax_t = self._solidus + (enthalpy / self._fusion) * self._melt_range
        if self._enabled:
            heat = ua * (zone - wax_t)
            enthalpy = enthalpy + heat * self._dt_s / self._wax_mass
        else:
            heat = 0.0
            enthalpy = enthalpy + 0.0
        self._zone = zone
        self._enthalpy = enthalpy
        melt = enthalpy / self._fusion
        if melt < 0.0:
            melt = 0.0
        elif melt > 1.0:
            melt = 1.0
        return power, power - heat, heat, melt

    def commit(self) -> None:
        """Broadcast the final scalars back over the array state."""
        self._state.zone_temperature_c[:] = self._zone
        self._state.specific_enthalpy_j_per_kg[:] = self._enthalpy


class ClusterThermalState:
    """Mutable thermal state of every server in one cluster.

    A single-cluster view over :class:`BatchedClusterThermalState`: the
    arrays exposed here are row views into the batched ``(1, servers)``
    state, so the dynamics live in exactly one place.
    """

    def __init__(
        self,
        characterization: PlatformCharacterization,
        power_model: ServerPowerModel,
        material: PCMMaterial,
        server_count: int,
        inlet_temperature_c: float = 25.0,
        initial_utilization: float = 0.0,
        wax_enabled: bool = True,
        inlet_offset_c: np.ndarray | None = None,
        backend: str = "auto",
    ) -> None:
        if inlet_offset_c is not None:
            offsets = np.asarray(inlet_offset_c, dtype=float)
            if offsets.shape != (server_count,):
                raise ConfigurationError(
                    f"expected inlet offsets shape ({server_count},), got "
                    f"{offsets.shape}"
                )
        self._batched = BatchedClusterThermalState(
            characterization=characterization,
            power_model=power_model,
            material=material,
            cluster_count=1,
            server_count=server_count,
            inlet_temperature_c=inlet_temperature_c,
            initial_utilization=initial_utilization,
            wax_enabled=wax_enabled,
            inlet_offset_c=inlet_offset_c,
            backend=backend,
        )
        self.characterization = characterization
        self.power_model = power_model
        self.material = material
        self.server_count = server_count
        self.wax_enabled = wax_enabled
        self.wax_mass_kg = characterization.wax_mass_kg
        self.inlet_offset_c = self._batched.inlet_offset_c[0]

    # -- single-cluster views over the batched state -----------------------

    @property
    def backend(self) -> str:
        """Which step-kernel backend actually runs ("numpy" or "numba")."""
        return self._batched.backend

    @property
    def inlet_temperature_c(self) -> float:
        """Cold-aisle inlet temperature shared by this cluster's servers."""
        return float(self._batched.inlet_temperature_c[0])

    @inlet_temperature_c.setter
    def inlet_temperature_c(self, value: float) -> None:
        self._batched.inlet_temperature_c[0] = value

    @property
    def zone_temperature_c(self) -> np.ndarray:
        """Per-server wax-zone air temperature (view, shape ``(servers,)``)."""
        return self._batched.zone_temperature_c[0]

    @property
    def specific_enthalpy_j_per_kg(self) -> np.ndarray:
        """Per-server wax specific enthalpy (view, shape ``(servers,)``)."""
        return self._batched.specific_enthalpy_j_per_kg[0]

    # -- queries -----------------------------------------------------------

    @property
    def wax_temperature_c(self) -> np.ndarray:
        """Per-server wax temperature."""
        return self._batched.wax_temperature_c[0]

    @property
    def melt_fraction(self) -> np.ndarray:
        """Per-server wax melt fraction."""
        return self._batched.melt_fraction[0]

    @property
    def stored_latent_heat_j(self) -> float:
        """Cluster-total latent heat currently banked in the wax."""
        return float(self._batched.stored_latent_heat_j[0])

    def set_fault_scales(
        self,
        ua_scale: float = 1.0,
        zone_delta_scale: float = 1.0,
        wax_capacity_factor: float = 1.0,
    ) -> None:
        """Set fault-injection modifiers (see the batched form)."""
        self._batched.set_fault_scales(
            ua_scale=ua_scale,
            zone_delta_scale=zone_delta_scale,
            wax_capacity_factor=wax_capacity_factor,
        )

    @property
    def effective_wax_mass_kg(self) -> float:
        """Per-server wax mass after any fault-injected capacity fade."""
        return self._batched.effective_wax_mass_kg

    def uniform_advancer(self, dt_s: float) -> "UniformStretchAdvancer | None":
        """Scalar stretch-advance view (see the batched form), or ``None``."""
        return self._batched.uniform_advancer(dt_s)

    def effective_utilization(
        self, utilization: np.ndarray, frequency_ghz: float
    ) -> np.ndarray:
        """Power-equivalent utilization (folds in DVFS)."""
        factor = self.power_model.frequency_factor(frequency_ghz)
        return np.asarray(utilization) * factor

    def power_w(self, utilization: np.ndarray, frequency_ghz: float) -> np.ndarray:
        """Per-server wall power at an operating point."""
        u_eff = self.effective_utilization(utilization, frequency_ghz)
        return self.power_model.idle_power_w + (
            self.power_model.dynamic_range_w * u_eff
        )

    def wax_exchange_w(
        self, utilization: np.ndarray, frequency_ghz: float
    ) -> np.ndarray:
        """Instantaneous air-to-wax heat flow at the *current* state,
        without advancing it (used by throttling policies to preview what
        the wax could absorb this tick)."""
        if not self.wax_enabled:
            return np.zeros(self.server_count)
        return self._batched.wax_exchange_w(
            np.asarray(utilization, dtype=float)[None, :], frequency_ghz
        )[0]

    # -- dynamics ------------------------------------------------------------

    def step(
        self,
        dt_s: float,
        utilization: np.ndarray,
        frequency_ghz: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one tick; returns (power_w, heat_release_w, wax_heat_w).

        ``utilization`` is per-server busy fraction in [0, 1];
        ``frequency_ghz`` is the cluster-wide DVFS state this tick.
        """
        utilization = np.asarray(utilization, dtype=float)
        if utilization.shape != (self.server_count,):
            raise ConfigurationError(
                f"expected utilization shape ({self.server_count},), got "
                f"{utilization.shape}"
            )
        power, release, wax_heat = self._batched.step(
            dt_s, utilization[None, :], frequency_ghz
        )
        return power[0], release[0], wax_heat[0]
