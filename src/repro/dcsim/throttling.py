"""Thermal-limit enforcement policies (paper Section 5.2).

In an oversubscribed datacenter "thermal management techniques such as
downclocking/DVFS or relocating work to other datacenters must be applied
to prevent the datacenter from overheating". The paper's baseline
downclocks 2.4 GHz parts to 1.6 GHz when the cluster would exceed its
thermal limit; with PCM, full clocks are held while the wax still has
latent capacity to absorb the excess.

A policy decides, at each thermal tick, the cluster-wide DVFS frequency
and (if even the lowest frequency cannot satisfy the limit) a busy-
fraction cap representing work relocation.

Policies receive the per-server *offered work rate* in nominal capacity
units; the busy fraction a server would run at follows from the candidate
frequency (downclocking raises the busy fraction needed to serve the same
work): ``busy(f) = min(work / throughput_factor(f), 1)``. Decisions
preview the tick using the current thermal state and do not mutate it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThrottleDecision:
    """The operating point a policy selects for one tick.

    ``utilization_cap`` limits per-server busy fraction (1.0 = no cap);
    the simulator applies it by relocating (shedding) the excess work.
    """

    frequency_ghz: float
    utilization_cap: float = 1.0
    limited: bool = False


def busy_fraction(
    state: ClusterThermalState, work_rate: np.ndarray, frequency_ghz: float
) -> np.ndarray:
    """Per-server busy fraction needed to serve a work rate at a frequency."""
    factor = state.power_model.throughput_factor(frequency_ghz)
    return np.clip(np.asarray(work_rate) / factor, 0.0, 1.0)


def projected_release_w(
    state: ClusterThermalState, work_rate: np.ndarray, frequency_ghz: float
) -> float:
    """Cluster heat release this tick at a candidate operating point.

    Wax absorption counts against the release while it is absorbing; a
    refreezing wax adds heat, which the preview must include.
    """
    busy = busy_fraction(state, work_rate, frequency_ghz)
    power = state.power_w(busy, frequency_ghz)
    wax = state.wax_exchange_w(busy, frequency_ghz)
    return float(np.sum(power - wax))


def _shed_cap(
    state: ClusterThermalState,
    work_rate: np.ndarray,
    frequency_ghz: float,
    capacity_w: float,
) -> float:
    """Busy-fraction cap bringing the min-frequency release under a limit.

    Release is monotonic in a uniform scale on the busy fractions, so the
    cap is found by bisection.
    """
    busy = busy_fraction(state, work_rate, frequency_ghz)

    def release(scale: float) -> float:
        scaled = busy * scale
        power = state.power_w(scaled, frequency_ghz)
        wax = state.wax_exchange_w(scaled, frequency_ghz)
        return float(np.sum(power - wax))

    low, high = 0.0, 1.0
    for _ in range(40):
        mid = 0.5 * (low + high)
        if release(mid) <= capacity_w:
            low = mid
        else:
            high = mid
    return low * float(np.max(busy)) if len(busy) else 0.0


class NoThermalLimit:
    """Unconstrained datacenter: always nominal frequency, no cap."""

    def decide(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> ThrottleDecision:
        """Run at nominal frequency regardless of heat output."""
        return ThrottleDecision(
            frequency_ghz=state.power_model.nominal_frequency_ghz
        )

    def constant_decision(
        self, state: ClusterThermalState
    ) -> ThrottleDecision:
        """Constant-decision certificate for the fluid engine.

        A policy may implement this protocol to promise that, for the
        rest of the run, :meth:`decide` returns a decision with exactly
        these fields no matter what state or observation it is shown —
        licensing the batched fluid engine to advance whole stretches
        without consulting the policy per tick. Stateful or
        state-dependent policies must return ``None`` (or simply not
        implement the method). This policy is memoryless and ignores its
        inputs entirely, so the certificate is unconditional.
        """
        return ThrottleDecision(
            frequency_ghz=state.power_model.nominal_frequency_ghz
        )


class ThermalLimitPolicy:
    """Enforce an instantaneous cluster heat-release limit.

    A memoryless policy: intervene whenever this tick's projected release
    would exceed the plant capacity. Suits studies without a room model;
    the temperature-based :class:`RoomTemperaturePolicy` is the faithful
    Section 5.2 mechanism.
    """

    def __init__(self, capacity_w: float, tolerance: float = 0.002) -> None:
        if capacity_w <= 0:
            raise ConfigurationError(
                f"cooling capacity must be positive, got {capacity_w}"
            )
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.capacity_w = capacity_w
        self.tolerance = tolerance

    def decide(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> ThrottleDecision:
        """Pick the least-intrusive operating point under the limit:
        full clocks, else the minimum DVFS state, else shed work."""
        limit = self.capacity_w * (1.0 + self.tolerance)
        nominal = state.power_model.nominal_frequency_ghz
        minimum = state.power_model.min_frequency_ghz

        if projected_release_w(state, work_rate, nominal) <= limit:
            return ThrottleDecision(frequency_ghz=nominal)
        if projected_release_w(state, work_rate, minimum) <= limit:
            return ThrottleDecision(frequency_ghz=minimum, limited=True)
        cap = _shed_cap(state, work_rate, minimum, limit)
        return ThrottleDecision(
            frequency_ghz=minimum, utilization_cap=cap, limited=True
        )


class FaultResponsePolicy:
    """Graceful-degradation wrapper around any base throttling policy.

    Reads the live effects off a :class:`~repro.faults.injector.
    FaultInjector` (duck-typed via its ``current`` attribute, so this
    module never imports :mod:`repro.faults`) and overrides the base
    policy in two situations a real operations team would:

    * **sensor dropout** — the telemetry feed is dead, so projections
      from the observed work rate cannot be trusted. Fall back to the
      safe setpoint: minimum DVFS frequency until the sensors return.
    * **severe cooling loss** — the plant has lost more than
      ``1 - emergency_capacity_factor`` of its capacity. Do not wait for
      the room to drift over its limit: throttle to minimum frequency
      immediately, shedding work if even that exceeds what is left of
      the plant.

    Everything else (including mild cooling derates, which the base
    policy sees through the already-derated room capacity) delegates to
    the base policy unchanged, so a run with no active fault is
    decision-identical to running the base policy alone.

    .. deprecated::
        New control logic should target the
        :class:`repro.control.Planner` interface instead;
        :class:`repro.control.GreedyThrottlePolicy` is the
        decision-identical replacement for this wrapper around
        :class:`RoomTemperaturePolicy` inside a
        :class:`repro.control.ControlLoop` (which adds actuator
        clamping, divergence fallback, and tournament scoring). This
        class remains for the paper-faithful figures and the fidelity
        suite; see ``docs/CONTROL.md``.
    """

    def __init__(
        self,
        base,
        injector,
        emergency_capacity_factor: float = 0.5,
    ) -> None:
        if not 0.0 <= emergency_capacity_factor <= 1.0:
            raise ConfigurationError(
                f"emergency capacity factor must be in [0, 1], got "
                f"{emergency_capacity_factor}"
            )
        self.base = base
        self.injector = injector
        self.emergency_capacity_factor = emergency_capacity_factor

    def reset(self) -> None:
        """Clear the base policy's state between simulation runs."""
        reset = getattr(self.base, "reset", None)
        if callable(reset):
            reset()

    def _capacity_w(self) -> float | None:
        """The (already fault-derated) plant capacity, if the base has one."""
        room = getattr(self.base, "room", None)
        if room is not None:
            return room.cooling_capacity_w
        return getattr(self.base, "capacity_w", None)

    def decide(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> ThrottleDecision:
        """Override on dropout or severe cooling loss; else delegate."""
        effects = self.injector.current
        if effects is None:
            return self.base.decide(state, work_rate)
        if effects.sensor_dropout:
            return ThrottleDecision(
                frequency_ghz=state.power_model.min_frequency_ghz,
                limited=True,
            )
        if effects.cooling_capacity_factor < self.emergency_capacity_factor:
            minimum = state.power_model.min_frequency_ghz
            capacity = self._capacity_w()
            if (
                capacity is not None
                and projected_release_w(state, work_rate, minimum) > capacity
            ):
                cap = _shed_cap(state, work_rate, minimum, capacity)
                return ThrottleDecision(
                    frequency_ghz=minimum, utilization_cap=cap, limited=True
                )
            return ThrottleDecision(frequency_ghz=minimum, limited=True)
        return self.base.decide(state, work_rate)


class RoomTemperaturePolicy:
    """Throttle on the *room* temperature of an oversubscribed datacenter.

    The paper's constrained scenario intervenes when the datacenter would
    overheat, i.e. on temperature, not instantaneous power: the room's
    thermal mass rides through brief overloads, and the wax holds the room
    down for hours. The room also closes the loop that drives the wax at
    the surplus rate — as it warms, the server inlets (and therefore the
    wax zones) warm with it until wax absorption balances the excess.

    While over-limit, the cluster downclocks to its minimum DVFS state; if
    even that releases more heat than the plant can remove (so the room
    would keep heating), work is shed until the release fits the plant
    capacity. The throttle latches: it releases only once the room has
    cooled by ``deadband_c`` AND full clocks would fit the plant again,
    preventing flapping around the limit.
    """

    def __init__(self, room: RoomModel, deadband_c: float = 1.0) -> None:
        if deadband_c < 0:
            raise ConfigurationError("deadband must be non-negative")
        self.room = room
        self.deadband_c = deadband_c
        self._throttled = False

    def reset(self) -> None:
        """Clear the hysteresis latch between simulation runs."""
        self._throttled = False

    def decide(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> ThrottleDecision:
        """Nominal clocks until the room hits its limit; then downclock
        (and shed if the plant still cannot keep up)."""
        room = self.room
        nominal = state.power_model.nominal_frequency_ghz
        minimum = state.power_model.min_frequency_ghz
        capacity = room.cooling_capacity_w

        if not self._throttled and room.over_limit:
            self._throttled = True
        elif self._throttled and (
            room.temperature_c <= room.max_temperature_c - self.deadband_c
            and projected_release_w(state, work_rate, nominal) <= capacity
        ):
            self._throttled = False

        if not self._throttled:
            return ThrottleDecision(frequency_ghz=nominal)
        if projected_release_w(state, work_rate, minimum) <= capacity:
            return ThrottleDecision(frequency_ghz=minimum, limited=True)
        cap = _shed_cap(state, work_rate, minimum, capacity)
        return ThrottleDecision(
            frequency_ghz=minimum, utilization_cap=cap, limited=True
        )
