"""Geographic load balancing between thermally constrained sites.

The paper's Section 5.2 names two escape valves for an oversubscribed
datacenter: "downclocking/DVFS or relocating work to other datacenters
[18-20]". The main simulator implements the first; this module implements
the second, so the two can be composed with PCM and compared.

A :class:`GeoPair` couples two sites — typically the same platform in
time zones several hours apart, so their diurnal peaks do not coincide —
and runs them in lock-step fluid mode. Each tick:

1. each site's throttling policy picks its operating point for its local
   demand;
2. work a site cannot serve (shed by its policy, or beyond its busy
   ceiling) is *offered* to the other site;
3. the receiving site accepts up to its spare busy capacity, provided its
   own policy is not currently limiting it and the added heat still fits
   under its plant capacity (relocated work must not push the remote room
   over its limit — that would just move the problem);
4. both rooms integrate their heat balance.

Relocated work pays a WAN/latency tax: a configurable fraction of it is
lost (request hedging, egress overheads), so relocation is not free the
way locally-banked wax heat is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.dcsim.throttling import (
    RoomTemperaturePolicy,
    ThrottleDecision,
    projected_release_w,
)
from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.workload.trace import LoadTrace


def route_unserved(
    unserved,
    spare,
    online=None,
    loss_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedily route each site's unserved work onto others' spare capacity.

    Pure and deterministic: senders are visited in index order, and each
    offers its remaining unserved work to receivers in index order
    (skipping itself and offline sites) until its backlog or the pool of
    spare capacity runs out. An offline site still *offers* its demand —
    failover is the point of geo balancing — but receives nothing and
    contributes no spare.

    Returns ``(moved, delivered)``, both shaped ``(n, n)``:
    ``moved[i, j]`` is the work sender ``i`` hands to receiver ``j``,
    ``delivered[i, j]`` the part that survives the relocation loss.
    Invariants (the property suite asserts them): row sums of ``moved``
    never exceed ``unserved``, column sums never exceed ``spare``,
    offline columns and the diagonal are zero, and a single site routes
    nothing.
    """
    unserved = [float(u) for u in unserved]
    remaining_spare = [float(s) for s in spare]
    n = len(unserved)
    if len(remaining_spare) != n:
        raise ConfigurationError(
            "unserved and spare must have one entry per site"
        )
    if online is None:
        online = [True] * n
    online = [bool(o) for o in online]
    if len(online) != n:
        raise ConfigurationError("online must have one entry per site")
    if not 0.0 <= loss_fraction < 1.0:
        raise ConfigurationError(
            "relocation loss must be a fraction in [0, 1)"
        )
    if any(u < 0 for u in unserved) or any(s < 0 for s in remaining_spare):
        raise ConfigurationError("unserved and spare must be non-negative")

    moved = np.zeros((n, n))
    delivered = np.zeros((n, n))
    for i in range(n):
        left = unserved[i]
        if left <= 0.0:
            continue
        for j in range(n):
            if j == i or not online[j]:
                continue
            capacity = remaining_spare[j]
            if capacity <= 0.0:
                continue
            amount = min(left, capacity)
            moved[i, j] = amount
            delivered[i, j] = amount * (1.0 - loss_fraction)
            left -= amount
            remaining_spare[j] = capacity - amount
            if left <= 0.0:
                break
    return moved, delivered


@dataclass
class GeoSite:
    """One datacenter of a geographically balanced pair."""

    name: str
    characterization: PlatformCharacterization
    power_model: ServerPowerModel
    material: PCMMaterial
    trace: LoadTrace
    room: RoomModel
    topology: ClusterTopology
    wax_enabled: bool = True
    inlet_temperature_c: float = 25.0
    #: An offline site serves nothing, offers no spare capacity, and
    #: idles at its minimum DVFS state; its whole demand is offered to
    #: the other site (minus the relocation tax).
    online: bool = True

    def __post_init__(self) -> None:
        self.policy = RoomTemperaturePolicy(self.room)
        self.state = self._make_state()

    def _make_state(self) -> ClusterThermalState:
        initial = float(np.clip(self.trace.value_at(0.0), 0.0, 1.0))
        return ClusterThermalState(
            characterization=self.characterization,
            power_model=self.power_model,
            material=self.material,
            server_count=self.topology.server_count,
            inlet_temperature_c=self.inlet_temperature_c,
            initial_utilization=initial,
            wax_enabled=self.wax_enabled,
        )

    def reset(self) -> None:
        """Fresh thermal state, room, and policy latch."""
        self.room.reset()
        self.policy.reset()
        self.state = self._make_state()


@dataclass
class GeoSiteTraces:
    """Per-tick traces of one site in a geo-balanced run."""

    times_s: np.ndarray
    demand: np.ndarray
    served_local: np.ndarray
    accepted_remote: np.ndarray
    relocated_out: np.ndarray
    lost: np.ndarray
    frequency_ghz: np.ndarray
    room_temperature_c: np.ndarray
    cooling_load_w: np.ndarray

    @property
    def throughput(self) -> np.ndarray:
        """Work completed at this site (local + accepted remote)."""
        return self.served_local + self.accepted_remote


@dataclass
class GeoResult:
    """Outcome of a geo-balanced pair run."""

    site_a: GeoSiteTraces
    site_b: GeoSiteTraces

    @property
    def total_throughput(self) -> np.ndarray:
        """Pair-wide completed work per tick (normalized per-site units)."""
        return self.site_a.throughput + self.site_b.throughput

    @property
    def total_demand(self) -> np.ndarray:
        """Pair-wide offered work per tick."""
        return self.site_a.demand + self.site_b.demand

    @property
    def served_fraction(self) -> float:
        """Fraction of all offered work completed somewhere."""
        demand = float(np.sum(self.total_demand))
        if demand <= 0:
            return 1.0
        return float(np.sum(self.total_throughput)) / demand

    @property
    def relocated_fraction(self) -> float:
        """Fraction of all offered work served at the remote site."""
        demand = float(np.sum(self.total_demand))
        if demand <= 0:
            return 0.0
        accepted = float(
            np.sum(self.site_a.accepted_remote + self.site_b.accepted_remote)
        )
        return accepted / demand


class GeoPair:
    """Two thermally constrained sites balancing work between them."""

    def __init__(
        self,
        site_a: GeoSite,
        site_b: GeoSite,
        tick_interval_s: float = 60.0,
        relocation_loss_fraction: float = 0.05,
    ) -> None:
        if tick_interval_s <= 0:
            raise ConfigurationError("tick interval must be positive")
        if not 0.0 <= relocation_loss_fraction < 1.0:
            raise ConfigurationError(
                "relocation loss must be a fraction in [0, 1)"
            )
        if abs(site_a.trace.duration_s - site_b.trace.duration_s) > 1e-6:
            raise ConfigurationError("site traces must share a horizon")
        self.site_a = site_a
        self.site_b = site_b
        self.tick_interval_s = tick_interval_s
        self.relocation_loss_fraction = relocation_loss_fraction

    def _site_tick(
        self, site: GeoSite, demand: float
    ) -> tuple[float, float, float, object]:
        """One site's local decision: (served, unserved, spare, decision)."""
        if not site.online:
            decision = ThrottleDecision(
                frequency_ghz=site.power_model.min_frequency_ghz,
                utilization_cap=0.0,
                limited=True,
            )
            return 0.0, demand, 0.0, decision
        n = site.topology.server_count
        work = np.full(n, demand)
        decision = site.policy.decide(site.state, work)
        tf = site.power_model.throughput_factor(decision.frequency_ghz)
        busy = min(demand / tf, 1.0, decision.utilization_cap)
        served = busy * tf
        unserved = max(demand - served, 0.0)

        # Spare capacity this site could sell: extra busy fraction up to
        # 1.0 (or its cap) while keeping the projected release under its
        # own plant capacity — only meaningful when unthrottled.
        spare = 0.0
        if not decision.limited:
            busy_ceiling = min(1.0, decision.utilization_cap)
            headroom = max(busy_ceiling - busy, 0.0)
            if headroom > 0:
                # Bisect the largest extra busy fraction whose release fits.
                lo, hi = 0.0, headroom
                for _ in range(20):
                    mid = 0.5 * (lo + hi)
                    work_probe = np.full(n, (busy + mid) * tf)
                    release = projected_release_w(
                        site.state, work_probe, decision.frequency_ghz
                    )
                    if release <= site.room.cooling_capacity_w:
                        lo = mid
                    else:
                        hi = mid
                spare = lo * tf
        return served, unserved, spare, decision

    def run(self) -> GeoResult:
        """Run both sites in lock step over the shared horizon."""
        self.site_a.reset()
        self.site_b.reset()
        dt = self.tick_interval_s
        horizon = self.site_a.trace.duration_s
        n_ticks = int(np.floor(horizon / dt))
        times = (np.arange(n_ticks) + 1) * dt

        def blank() -> GeoSiteTraces:
            zeros = np.zeros(n_ticks)
            return GeoSiteTraces(
                times_s=times,
                demand=zeros.copy(),
                served_local=zeros.copy(),
                accepted_remote=zeros.copy(),
                relocated_out=zeros.copy(),
                lost=zeros.copy(),
                frequency_ghz=zeros.copy(),
                room_temperature_c=zeros.copy(),
                cooling_load_w=zeros.copy(),
            )

        traces = {id(self.site_a): blank(), id(self.site_b): blank()}

        for i, t in enumerate(times):
            sites = (self.site_a, self.site_b)
            demands = {
                id(site): float(np.clip(site.trace.value_at(t - 0.5 * dt), 0, 1))
                for site in sites
            }
            locals_ = {}
            for site in sites:
                # Server inlets track the room (wax engagement depends on
                # this feedback, exactly as in the single-site simulator).
                site.state.inlet_temperature_c = site.room.temperature_c
                locals_[id(site)] = self._site_tick(site, demands[id(site)])

            # Offer each site's unserved work to the other through the
            # shared router (index order = (site_a, site_b), which for a
            # pair of online sites reduces to the symmetric swap).
            moved, delivered = route_unserved(
                [locals_[id(site)][1] for site in sites],
                [locals_[id(site)][2] for site in sites],
                [site.online for site in sites],
                self.relocation_loss_fraction,
            )
            relocated = {
                id(site): float(np.sum(moved[k]))
                for k, site in enumerate(sites)
            }
            accepted = {
                id(site): float(np.sum(delivered[:, k]))
                for k, site in enumerate(sites)
            }

            # Advance each site's thermal state with its final busy level.
            for site in sites:
                served, unserved, _, decision = locals_[id(site)]
                tf = site.power_model.throughput_factor(decision.frequency_ghz)
                extra_busy = (
                    accepted[id(site)]
                    / (1.0 - self.relocation_loss_fraction)
                    / tf
                    if accepted[id(site)] > 0
                    else 0.0
                )
                busy_total = min(served / tf + extra_busy, 1.0)
                busy_vec = np.full(site.topology.server_count, busy_total)
                power, release, _wax = site.state.step(
                    dt, busy_vec, decision.frequency_ghz
                )
                release_total = float(np.sum(release))
                site.room.step(dt, max(release_total, 0.0))

                trace = traces[id(site)]
                trace.demand[i] = demands[id(site)]
                trace.served_local[i] = served
                trace.accepted_remote[i] = accepted[id(site)]
                trace.relocated_out[i] = relocated[id(site)]
                trace.lost[i] = max(
                    demands[id(site)] - served - relocated[id(site)], 0.0
                ) + relocated[id(site)] * self.relocation_loss_fraction
                trace.frequency_ghz[i] = decision.frequency_ghz
                trace.room_temperature_c[i] = site.room.temperature_c
                trace.cooling_load_w[i] = release_total

        return GeoResult(
            site_a=traces[id(self.site_a)], site_b=traces[id(self.site_b)]
        )
