"""Geographic load balancing between thermally constrained sites.

The paper's Section 5.2 names two escape valves for an oversubscribed
datacenter: "downclocking/DVFS or relocating work to other datacenters
[18-20]". The main simulator implements the first; this module implements
the second, so the two can be composed with PCM and compared.

A :class:`GeoPair` couples two sites — typically the same platform in
time zones several hours apart, so their diurnal peaks do not coincide —
and runs them in lock-step fluid mode. Each tick:

1. each site's throttling policy picks its operating point for its local
   demand;
2. work a site cannot serve (shed by its policy, or beyond its busy
   ceiling) is *offered* to the other site;
3. the receiving site accepts up to its spare busy capacity, provided its
   own policy is not currently limiting it and the added heat still fits
   under its plant capacity (relocated work must not push the remote room
   over its limit — that would just move the problem);
4. both rooms integrate their heat balance.

Relocated work pays a WAN/latency tax: a configurable fraction of it is
lost (request hedging, egress overheads), so relocation is not free the
way locally-banked wax heat is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.dcsim.throttling import RoomTemperaturePolicy, projected_release_w
from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.workload.trace import LoadTrace


@dataclass
class GeoSite:
    """One datacenter of a geographically balanced pair."""

    name: str
    characterization: PlatformCharacterization
    power_model: ServerPowerModel
    material: PCMMaterial
    trace: LoadTrace
    room: RoomModel
    topology: ClusterTopology
    wax_enabled: bool = True
    inlet_temperature_c: float = 25.0

    def __post_init__(self) -> None:
        self.policy = RoomTemperaturePolicy(self.room)
        self.state = self._make_state()

    def _make_state(self) -> ClusterThermalState:
        initial = float(np.clip(self.trace.value_at(0.0), 0.0, 1.0))
        return ClusterThermalState(
            characterization=self.characterization,
            power_model=self.power_model,
            material=self.material,
            server_count=self.topology.server_count,
            inlet_temperature_c=self.inlet_temperature_c,
            initial_utilization=initial,
            wax_enabled=self.wax_enabled,
        )

    def reset(self) -> None:
        """Fresh thermal state, room, and policy latch."""
        self.room.reset()
        self.policy.reset()
        self.state = self._make_state()


@dataclass
class GeoSiteTraces:
    """Per-tick traces of one site in a geo-balanced run."""

    times_s: np.ndarray
    demand: np.ndarray
    served_local: np.ndarray
    accepted_remote: np.ndarray
    relocated_out: np.ndarray
    lost: np.ndarray
    frequency_ghz: np.ndarray
    room_temperature_c: np.ndarray
    cooling_load_w: np.ndarray

    @property
    def throughput(self) -> np.ndarray:
        """Work completed at this site (local + accepted remote)."""
        return self.served_local + self.accepted_remote


@dataclass
class GeoResult:
    """Outcome of a geo-balanced pair run."""

    site_a: GeoSiteTraces
    site_b: GeoSiteTraces

    @property
    def total_throughput(self) -> np.ndarray:
        """Pair-wide completed work per tick (normalized per-site units)."""
        return self.site_a.throughput + self.site_b.throughput

    @property
    def total_demand(self) -> np.ndarray:
        """Pair-wide offered work per tick."""
        return self.site_a.demand + self.site_b.demand

    @property
    def served_fraction(self) -> float:
        """Fraction of all offered work completed somewhere."""
        demand = float(np.sum(self.total_demand))
        if demand <= 0:
            return 1.0
        return float(np.sum(self.total_throughput)) / demand

    @property
    def relocated_fraction(self) -> float:
        """Fraction of all offered work served at the remote site."""
        demand = float(np.sum(self.total_demand))
        if demand <= 0:
            return 0.0
        accepted = float(
            np.sum(self.site_a.accepted_remote + self.site_b.accepted_remote)
        )
        return accepted / demand


class GeoPair:
    """Two thermally constrained sites balancing work between them."""

    def __init__(
        self,
        site_a: GeoSite,
        site_b: GeoSite,
        tick_interval_s: float = 60.0,
        relocation_loss_fraction: float = 0.05,
    ) -> None:
        if tick_interval_s <= 0:
            raise ConfigurationError("tick interval must be positive")
        if not 0.0 <= relocation_loss_fraction < 1.0:
            raise ConfigurationError(
                "relocation loss must be a fraction in [0, 1)"
            )
        if abs(site_a.trace.duration_s - site_b.trace.duration_s) > 1e-6:
            raise ConfigurationError("site traces must share a horizon")
        self.site_a = site_a
        self.site_b = site_b
        self.tick_interval_s = tick_interval_s
        self.relocation_loss_fraction = relocation_loss_fraction

    def _site_tick(
        self, site: GeoSite, demand: float
    ) -> tuple[float, float, float, object]:
        """One site's local decision: (served, unserved, spare, decision)."""
        n = site.topology.server_count
        work = np.full(n, demand)
        decision = site.policy.decide(site.state, work)
        tf = site.power_model.throughput_factor(decision.frequency_ghz)
        busy = min(demand / tf, 1.0, decision.utilization_cap)
        served = busy * tf
        unserved = max(demand - served, 0.0)

        # Spare capacity this site could sell: extra busy fraction up to
        # 1.0 (or its cap) while keeping the projected release under its
        # own plant capacity — only meaningful when unthrottled.
        spare = 0.0
        if not decision.limited:
            busy_ceiling = min(1.0, decision.utilization_cap)
            headroom = max(busy_ceiling - busy, 0.0)
            if headroom > 0:
                # Bisect the largest extra busy fraction whose release fits.
                lo, hi = 0.0, headroom
                for _ in range(20):
                    mid = 0.5 * (lo + hi)
                    work_probe = np.full(n, (busy + mid) * tf)
                    release = projected_release_w(
                        site.state, work_probe, decision.frequency_ghz
                    )
                    if release <= site.room.cooling_capacity_w:
                        lo = mid
                    else:
                        hi = mid
                spare = lo * tf
        return served, unserved, spare, decision

    def run(self) -> GeoResult:
        """Run both sites in lock step over the shared horizon."""
        self.site_a.reset()
        self.site_b.reset()
        dt = self.tick_interval_s
        horizon = self.site_a.trace.duration_s
        n_ticks = int(np.floor(horizon / dt))
        times = (np.arange(n_ticks) + 1) * dt

        def blank() -> GeoSiteTraces:
            zeros = np.zeros(n_ticks)
            return GeoSiteTraces(
                times_s=times,
                demand=zeros.copy(),
                served_local=zeros.copy(),
                accepted_remote=zeros.copy(),
                relocated_out=zeros.copy(),
                lost=zeros.copy(),
                frequency_ghz=zeros.copy(),
                room_temperature_c=zeros.copy(),
                cooling_load_w=zeros.copy(),
            )

        traces = {id(self.site_a): blank(), id(self.site_b): blank()}

        for i, t in enumerate(times):
            sites = (self.site_a, self.site_b)
            demands = {
                id(site): float(np.clip(site.trace.value_at(t - 0.5 * dt), 0, 1))
                for site in sites
            }
            locals_ = {}
            for site in sites:
                # Server inlets track the room (wax engagement depends on
                # this feedback, exactly as in the single-site simulator).
                site.state.inlet_temperature_c = site.room.temperature_c
                locals_[id(site)] = self._site_tick(site, demands[id(site)])

            # Offer each site's unserved work to the other.
            accepted = {id(site): 0.0 for site in sites}
            relocated = {id(site): 0.0 for site in sites}
            for sender, receiver in (
                (self.site_a, self.site_b),
                (self.site_b, self.site_a),
            ):
                _, unserved, _, _ = locals_[id(sender)]
                _, _, spare, _ = locals_[id(receiver)]
                if unserved > 0 and spare > 0:
                    moved = min(unserved, spare)
                    delivered = moved * (1.0 - self.relocation_loss_fraction)
                    relocated[id(sender)] += moved
                    accepted[id(receiver)] += delivered

            # Advance each site's thermal state with its final busy level.
            for site in sites:
                served, unserved, _, decision = locals_[id(site)]
                tf = site.power_model.throughput_factor(decision.frequency_ghz)
                extra_busy = (
                    accepted[id(site)]
                    / (1.0 - self.relocation_loss_fraction)
                    / tf
                    if accepted[id(site)] > 0
                    else 0.0
                )
                busy_total = min(served / tf + extra_busy, 1.0)
                busy_vec = np.full(site.topology.server_count, busy_total)
                power, release, _wax = site.state.step(
                    dt, busy_vec, decision.frequency_ghz
                )
                release_total = float(np.sum(release))
                site.room.step(dt, max(release_total, 0.0))

                trace = traces[id(site)]
                trace.demand[i] = demands[id(site)]
                trace.served_local[i] = served
                trace.accepted_remote[i] = accepted[id(site)]
                trace.relocated_out[i] = relocated[id(site)]
                trace.lost[i] = max(
                    demands[id(site)] - served - relocated[id(site)], 0.0
                ) + relocated[id(site)] * self.relocation_loss_fraction
                trace.frequency_ghz[i] = decision.frequency_ghz
                trace.room_temperature_c[i] = site.room.temperature_c
                trace.cooling_load_w[i] = release_total

        return GeoResult(
            site_a=traces[id(self.site_a)], site_b=traces[id(self.site_b)]
        )
