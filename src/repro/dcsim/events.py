"""Event primitives for the discrete-event simulator.

A minimal, deterministic priority queue: events at equal times pop in
insertion order (a monotonically increasing sequence number breaks ties),
which keeps simulations reproducible across runs and platforms.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """Kinds of events the datacenter simulator processes."""

    ARRIVAL = "arrival"
    TICK = "tick"
    END = "end"


@dataclass(order=True)
class Event:
    """One scheduled event.

    Ordering is (time, sequence); payload never participates in ordering.
    """

    time_s: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (useful for tests)."""
        if not time_s >= 0:
            raise SimulationError(f"event time must be non-negative, got {time_s}")
        event = Event(
            time_s=time_s, sequence=next(self._counter), kind=kind, payload=payload
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0].time_s
