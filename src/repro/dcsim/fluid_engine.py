"""Chunked vectorized time-stepper for fluid-mode simulation.

Two interchangeable engines implement the fluid-mode semantics of
:class:`repro.dcsim.simulator.DatacenterSimulator`, selected by the
``SimulationConfig(engine=...)`` knob that already switches the event
engines:

``reference``
    The verbatim per-tick scalar loop — one trace lookup, one policy
    decision, one ``state.step`` per tick. Kept as the plain-to-audit
    oracle the batched engine must match bit for bit.

``batched`` (default)
    A stretch-advancing engine mirroring the ``_BatchedCore``
    regime-adaptivity pattern from :mod:`repro.dcsim.event_engine`: it
    precomputes the demand series for the full horizon, then detects
    maximal runs of ticks where nothing can change the plan and advances
    each run in one pass, falling back to the *same* scalar tick body at
    every boundary.

A stretch of ticks is eligible only when every per-tick hook is provably
inert for its whole span:

* the policy publishes a **constant-decision certificate**
  (``constant_decision``; see :class:`repro.dcsim.throttling.NoThermalLimit`)
  and has no ``begin_tick`` clock hook — so ``decide`` cannot depend on
  the observed work rate or mutate policy state;
* the fault injector is **dormant** (no active effects, no restoration
  pending) and its next fault boundary lies beyond the stretch
  (:meth:`repro.faults.injector.FaultInjector.next_boundary`) — so
  ``advance_to``/``apply_state``/``observe``/``constrain`` are no-ops
  apart from bookkeeping that :meth:`~repro.faults.injector.FaultInjector.fast_forward`
  replays at the stretch end;
* the thermal state is **uniform across servers**
  (:meth:`repro.dcsim.thermal_coupling.BatchedClusterThermalState.uniform_advancer`):
  single cluster, zero inlet offsets, unit fault scales, bitwise-equal
  zone/enthalpy columns. Offline-server ticks break uniformity, so the
  engine stops stretching for the rest of the run once one occurs.

Within a stretch the per-server physics collapses to a scalar recursion
(every server carries identical values), executed in Python floats that
perform exactly the arithmetic the elementwise NumPy step would — while
demand, utilization, throughput, shed work, and the characterization
lookups are computed for the whole stretch as arrays. Recorded totals
(``power``/``release``/``wax`` sums and the ``melt`` mean) are reduced
through a reused ``(chunk, servers)`` matrix so each tick's reduction is
the same pairwise ``np.sum``/``np.mean`` the reference loop performs on
its per-server rows; room-coupled runs reduce the release total inside
the loop (the room temperature feeds back into the next tick's inlet).

Bit-identity to the reference loop is the acceptance bar, exactly as
PR 5 held for event mode: both engines must produce byte-identical
``SimulationResult`` payloads for every workload, fault schedule, and
policy. Runs that never qualify (stateful policies, active faults,
per-server heterogeneity) simply execute the reference tick body tick by
tick through the same code object, so they cannot drift.

Observability (when the registry is enabled): ``dcsim.fluid.stretch_ticks``
counts ticks advanced inside stretches, ``dcsim.fluid.scalar_ticks`` the
ticks that took the scalar fallback.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dcsim.simulator import DatacenterSimulator, SimulationResult

__all__ = ["run_fluid_mode"]

#: Eligible runs shorter than this execute scalar anyway: below a few
#: ticks the stretch setup (advancer eligibility scan, array slicing,
#: injector fast-forward) costs more than it saves.
_MIN_STRETCH = 4

#: Tick rows materialised at a time by the chunked total/mean reduction
#: buffer. Bounds the scratch matrix at ``_CHUNK_TICKS * servers`` floats
#: regardless of stretch length.
_CHUNK_TICKS = 256


def run_fluid_mode(sim: "DatacenterSimulator") -> "SimulationResult":
    """Run ``sim`` in fluid mode with the engine its config selects."""
    loop = _FluidLoop(sim)
    if sim.config.engine == "reference":
        return loop.run_reference()
    return loop.run_batched()


class _FluidLoop:
    """Shared fluid-mode run state for both engines.

    The scalar tick body lives in exactly one place —
    :meth:`scalar_tick` — and is executed by the reference engine for
    every tick and by the batched engine at every stretch boundary, so
    the fallback path cannot drift from the oracle.
    """

    def __init__(self, sim: "DatacenterSimulator") -> None:
        from repro.dcsim.simulator import _Recorder

        self.sim = sim
        self.state = sim._make_state()
        sim.initial_specific_enthalpy_j_per_kg = np.array(
            self.state.specific_enthalpy_j_per_kg, copy=True
        )
        self.n_servers = sim.topology.server_count
        self.dt = sim.config.tick_interval_s
        self.ticks = sim._tick_times()
        self.injector = sim.fault_injector
        self.policy = sim.policy
        # Per-tick control hook: policies that implement begin_tick (e.g.
        # repro.control.ControlLoop) receive the simulation clock before
        # each decision; plain policies are untouched.
        self.begin_tick = getattr(sim.policy, "begin_tick", None)
        self.throttle_ticks = 0
        self.records = _Recorder(len(self.ticks), self.n_servers)
        # True while every server provably shares one (zone, enthalpy)
        # trajectory. Cleared the first time an offline-server tick
        # concentrates load on the survivors (or an advancer eligibility
        # scan fails), after which stretching is off for the run.
        self._uniform = True
        self._sum_buf: np.ndarray | None = None
        self._mat_buf: np.ndarray | None = None

    # -- engines -------------------------------------------------------------

    def run_reference(self) -> "SimulationResult":
        for i, t in enumerate(self.ticks):
            self.scalar_tick(i, t)
        return self.finish()

    def run_batched(self) -> "SimulationResult":
        n_ticks = len(self.ticks)
        stretch_ticks = 0
        scalar_ticks = 0
        decision = self._constant_decision()
        if decision is None:
            # No certificate: the whole run is boundary. Identical to the
            # reference engine by construction (same tick body).
            for i, t in enumerate(self.ticks):
                self.scalar_tick(i, t)
            scalar_ticks = n_ticks
        else:
            # Full-horizon demand series; elementwise np.interp + np.clip
            # match the reference loop's per-tick scalar lookups bit for
            # bit.
            demand_all = np.clip(
                self.sim.trace.value_at(self.ticks - 0.5 * self.dt), 0.0, 1.0
            )
            i = 0
            while i < n_ticks:
                end = self._stretch_end(i)
                advancer = None
                if end - i >= _MIN_STRETCH:
                    advancer = self.state.uniform_advancer(self.dt)
                    if advancer is None:
                        # Eligibility scan found per-server structure the
                        # cheap flags missed; stop re-scanning every tick.
                        self._uniform = False
                if advancer is not None:
                    self._run_stretch(i, end, decision, demand_all, advancer)
                    stretch_ticks += end - i
                    i = end
                else:
                    self.scalar_tick(i, self.ticks[i])
                    scalar_ticks += 1
                    i += 1
        obs = get_registry()
        if obs.enabled:
            obs.count("dcsim.fluid.stretch_ticks", stretch_ticks)
            obs.count("dcsim.fluid.scalar_ticks", scalar_ticks)
        return self.finish()

    # -- scalar oracle -------------------------------------------------------

    def scalar_tick(self, i: int, t: float) -> None:
        """The verbatim per-tick body both engines share."""
        sim = self.sim
        state = self.state
        injector = self.injector
        n_servers = self.n_servers
        dt = self.dt
        demand = float(np.clip(sim.trace.value_at(t - 0.5 * dt), 0.0, 1.0))
        if injector is not None:
            injector.advance_to(t, room=sim.room)
        sim._pre_tick(state)
        if injector is not None:
            injector.apply_state(state, base_inlet_c=sim._base_inlet_c())
        # Policies see the offered work rate in nominal capacity units
        # (possibly corrupted by an active sensor fault).
        work_rate = np.full(n_servers, demand)
        if injector is not None:
            work_rate = injector.observe(work_rate)
        if self.begin_tick is not None:
            self.begin_tick(t, dt)
        decision = self.policy.decide(state, work_rate)
        if injector is not None:
            decision = injector.constrain(decision)
        if decision.limited:
            self.throttle_ticks += 1
        tf = sim.power_model.throughput_factor(decision.frequency_ghz)
        offline = (
            injector.offline_count(n_servers) if injector is not None else 0
        )
        if offline > 0:
            # Surviving servers absorb the whole offered load; the
            # failed (lowest-indexed) servers sit idle. Per-server state
            # diverges here, so stretch advancing is off from now on.
            self._uniform = False
            alive = n_servers - offline
            concentrated = demand * n_servers / alive
            utilization = min(
                concentrated / tf, 1.0, decision.utilization_cap
            )
            utilization_vec = np.zeros(n_servers)
            utilization_vec[offline:] = utilization
            served = utilization * tf * alive / n_servers
            mean_utilization = utilization * alive / n_servers
        else:
            utilization = np.minimum(demand / tf, 1.0)
            utilization = np.minimum(utilization, decision.utilization_cap)
            utilization_vec = np.full(n_servers, utilization)
            served = utilization * tf
            mean_utilization = utilization
        shed = max(demand - served, 0.0)

        power, release, wax = state.step(dt, utilization_vec, decision.frequency_ghz)
        room_temp = sim._post_tick(float(np.sum(release)), dt)
        self.records.store(
            i,
            time_s=t,
            demand=demand,
            utilization=mean_utilization,
            frequency=decision.frequency_ghz,
            power=float(np.sum(power)),
            release=float(np.sum(release)),
            wax=float(np.sum(wax)),
            melt=float(np.mean(state.melt_fraction)),
            throughput=served,
            queue=0.0,
            shed=shed * n_servers,
            room=room_temp,
        )

    # -- stretch machinery ---------------------------------------------------

    def _constant_decision(self):
        """The policy's constant-decision certificate, or ``None``.

        A policy with a ``begin_tick`` clock hook is never stretched:
        the hook itself is per-tick state the stretch would skip.
        """
        if self.begin_tick is not None:
            return None
        certificate = getattr(self.policy, "constant_decision", None)
        if certificate is None:
            return None
        return certificate(self.state)

    def _stretch_end(self, i: int) -> int:
        """End (exclusive tick index) of the eligible run starting at ``i``.

        Returns ``i`` itself when tick ``i`` must run scalar. Eligibility
        here covers the *schedule*: state uniformity is the advancer's
        job, and the policy certificate was checked once up front.
        """
        if not self._uniform:
            return i
        injector = self.injector
        if injector is None:
            return len(self.ticks)
        if not injector.is_dormant:
            return i
        # Faults activate at the first tick with start_s <= t, so every
        # tick strictly before the next boundary after the previously
        # processed tick is quiet.
        after = float(self.ticks[i - 1]) if i > 0 else 0.0
        boundary = injector.next_boundary(after)
        if math.isinf(boundary):
            return len(self.ticks)
        end = int(np.searchsorted(self.ticks, boundary, side="left"))
        return max(end, i)

    def _run_stretch(
        self,
        i0: int,
        i1: int,
        decision,
        demand_all: np.ndarray,
        advancer,
    ) -> None:
        """Advance ticks ``[i0, i1)`` in one pass (constant ``decision``)."""
        sim = self.sim
        n_servers = self.n_servers
        dt = self.dt
        span = i1 - i0

        demand = demand_all[i0:i1]
        tf = sim.power_model.throughput_factor(decision.frequency_ghz)
        # The uniform branch of the scalar tick, vectorised across the
        # stretch; each element matches the per-tick scalars bit for bit.
        utilization = np.minimum(demand / tf, 1.0)
        utilization = np.minimum(utilization, decision.utilization_cap)
        served = utilization * tf
        shed = np.maximum(demand - served, 0.0)
        u_eff = utilization * sim.power_model.frequency_factor(
            decision.frequency_ghz
        )
        zone_delta, ua = advancer.interp_series(u_eff)

        u_eff_l = u_eff.tolist()
        zone_delta_l = zone_delta.tolist()
        ua_l = ua.tolist()
        power_l = [0.0] * span
        release_l = [0.0] * span
        wax_l = [0.0] * span
        melt_l = [0.0] * span

        room = sim.room
        if room is None:
            # _pre_tick is a no-op without a room; the inlet the state
            # carries (the configured base — the injector is dormant, so
            # any past excursion has been restored) holds for the whole
            # stretch.
            inlet = self.state.inlet_temperature_c
            for k in range(span):
                p, r, w, m = advancer.tick(
                    inlet, u_eff_l[k], zone_delta_l[k], ua_l[k]
                )
                power_l[k] = p
                release_l[k] = r
                wax_l[k] = w
                melt_l[k] = m
            release_total = self._reduce(np.array(release_l), "sum")
            room_series: np.ndarray | float = sim.config.inlet_temperature_c
        else:
            # Room-coupled: each tick's release total feeds the room
            # model, whose temperature is the next tick's inlet — so the
            # release reduction happens in the loop, via the same
            # fill-and-pairwise-sum the reference's np.sum performs.
            if self._sum_buf is None:
                self._sum_buf = np.empty(n_servers)
            buf = self._sum_buf
            room_arr = np.empty(span)
            release_total = np.empty(span)
            inlet = 0.0
            for k in range(span):
                inlet = room.temperature_c
                p, r, w, m = advancer.tick(
                    inlet, u_eff_l[k], zone_delta_l[k], ua_l[k]
                )
                buf.fill(r)
                total = float(buf.sum())
                room.step(dt, max(total, 0.0))
                room_arr[k] = room.temperature_c
                release_total[k] = total
                power_l[k] = p
                release_l[k] = r
                wax_l[k] = w
                melt_l[k] = m
            # The reference loop's last write to the state inlet was
            # _pre_tick of the final stretch tick.
            self.state.inlet_temperature_c = inlet
            room_series = room_arr

        advancer.commit()

        records = self.records
        sl = slice(i0, i1)
        records.times[sl] = self.ticks[sl]
        records.demand[sl] = demand
        records.utilization[sl] = utilization
        records.frequency[sl] = decision.frequency_ghz
        records.power[sl] = self._reduce(np.array(power_l), "sum")
        records.release[sl] = release_total
        records.wax[sl] = self._reduce(np.array(wax_l), "sum")
        records.melt[sl] = self._reduce(np.array(melt_l), "mean")
        records.throughput[sl] = served
        records.queue[sl] = 0.0
        records.shed[sl] = shed * n_servers
        records.room[sl] = room_series
        if decision.limited:
            self.throttle_ticks += span

        if self.injector is not None:
            # Replay the dormant-tick bookkeeping the stretch skipped:
            # the clock, and the held sensor observation a future dropout
            # would freeze.
            self.injector.fast_forward(
                float(self.ticks[i1 - 1]),
                observed=np.full(n_servers, demand[-1]),
            )

    def _reduce(self, per_tick: np.ndarray, op: str) -> np.ndarray:
        """Per-tick ``np.sum``/``np.mean`` over virtual uniform rows.

        The reference loop reduces a contiguous ``(servers,)`` row every
        tick; broadcasting each per-server scalar across a reused
        ``(chunk, servers)`` matrix and reducing along axis 1 performs
        the identical pairwise reductions, chunked so scratch stays
        bounded.
        """
        if self._mat_buf is None:
            self._mat_buf = np.empty((_CHUNK_TICKS, self.n_servers))
        buf = self._mat_buf
        out = np.empty(len(per_tick))
        reduce = np.sum if op == "sum" else np.mean
        for c0 in range(0, len(per_tick), _CHUNK_TICKS):
            c1 = min(c0 + _CHUNK_TICKS, len(per_tick))
            view = buf[: c1 - c0]
            view[:] = per_tick[c0:c1, None]
            out[c0:c1] = reduce(view, axis=1)
        return out

    # -- epilogue ------------------------------------------------------------

    def finish(self) -> "SimulationResult":
        sim = self.sim
        get_registry().count("dcsim.throttle_ticks", self.throttle_ticks)
        sim.final_state = self.state
        initial_u = float(np.clip(sim.trace.value_at(0.0), 0.0, 1.0))
        return self.records.result(
            self.n_servers,
            sim.power_model.nominal_frequency_ghz,
            initial_power_w=self.n_servers
            * sim.power_model.wall_power_w(initial_u),
        )
