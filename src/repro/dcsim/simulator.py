"""The datacenter simulator: traffic, DVFS, and PCM thermal coupling.

Two fidelity modes share the thermal core and policy machinery:

* ``fluid`` — per-tick offered load comes straight from the trace and is
  spread uniformly over the cluster (round-robin over Poisson traffic is
  uniform in expectation). Fast: two simulated days of a 1008-server
  cluster take a few milliseconds. Used for parameter sweeps.
* ``event`` — a discrete-event simulation of individual job arrivals,
  round-robin dispatch into per-server slots, FIFO queueing when the
  cluster is saturated, and exact work-conserving completions under DVFS
  via a global *work clock* (completions are scheduled in accumulated-work
  time; frequency changes re-rate the clock rather than rescheduling every
  in-flight job).

Throughput is reported in *nominal capacity units*: 1.0 means the cluster
is completing work at the rate of all servers busy at nominal frequency,
matching the normalization of the paper's Figure 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.loadbalancer import LoadBalancer, RoundRobin
from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.dcsim.throttling import NoThermalLimit
from repro.errors import ConfigurationError, SimulationError
from repro.materials.pcm import PCMMaterial
from repro.obs import get_registry
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.workload.jobs import Arrival
from repro.workload.trace import LoadTrace


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of a simulation run."""

    mode: str = "fluid"
    tick_interval_s: float = 60.0
    slots_per_server: int = 8
    inlet_temperature_c: float = 25.0
    wax_enabled: bool = True
    seed: int = 7
    #: Simulation engine for both modes: "batched" (vectorized, the
    #: default) or "reference" (per-event / per-tick scalar loop).
    #: Bit-identical by construction; see docs/EVENTSIM.md.
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.mode not in ("fluid", "event"):
            raise ConfigurationError(
                f"mode must be 'fluid' or 'event', got {self.mode!r}"
            )
        if self.engine not in ("batched", "reference"):
            raise ConfigurationError(
                f"engine must be 'batched' or 'reference', got {self.engine!r}"
            )
        if self.tick_interval_s <= 0:
            raise ConfigurationError("tick interval must be positive")
        if self.slots_per_server <= 0:
            raise ConfigurationError("slots per server must be positive")


@dataclass
class SimulationResult:
    """Per-tick traces of one simulation run.

    All power quantities are cluster totals in watts; ``throughput`` is in
    nominal capacity units (see module docstring); ``demand`` is the
    offered load from the trace.
    """

    times_s: np.ndarray
    demand: np.ndarray
    utilization: np.ndarray
    frequency_ghz: np.ndarray
    power_w: np.ndarray
    cooling_load_w: np.ndarray
    wax_heat_w: np.ndarray
    melt_fraction: np.ndarray
    throughput: np.ndarray
    queue_length: np.ndarray
    shed_work: np.ndarray
    room_temperature_c: np.ndarray | None = None
    completed_work_s: np.ndarray | None = None
    server_count: int = 0
    nominal_frequency_ghz: float | None = None
    #: Cluster power at t=0, used to anchor energy integration at the run
    #: start (tick times begin at ``dt``). Older recordings without it fall
    #: back to the first tick's power.
    initial_power_w: float | None = None

    @property
    def times_hours(self) -> np.ndarray:
        """Tick times in hours."""
        return self.times_s / 3600.0

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak cluster cooling load over the run."""
        return float(np.max(self.cooling_load_w))

    @property
    def peak_power_w(self) -> float:
        """Peak cluster electrical power over the run."""
        return float(np.max(self.power_w))

    @property
    def peak_throughput(self) -> float:
        """Peak normalized throughput over the run."""
        return float(np.max(self.throughput))

    def energy_kwh(self) -> float:
        """Total electrical energy of the run, integrated from t=0.

        Tick times start at ``dt``, so integrating the tick arrays alone
        would silently drop the first interval; a t=0 sample (the stored
        initial power, or the first tick's power for older recordings) is
        prepended to cover it.
        """
        times = self.times_s
        power = self.power_w
        if len(times) > 0 and times[0] > 0.0:
            p0 = (
                self.initial_power_w
                if self.initial_power_w is not None
                else power[0]
            )
            times = np.concatenate(([0.0], times))
            power = np.concatenate(([p0], power))
        return float(np.trapezoid(power, times)) / 3.6e6

    def throttled_mask(self) -> np.ndarray:
        """Ticks at which the cluster ran below nominal frequency.

        Compared against the platform's nominal frequency, not the run's
        maximum: a run throttled at every tick must report every tick,
        which a run-relative comparison would miss entirely. Results from
        older recordings without a stored nominal fall back to the
        run-maximum heuristic.
        """
        if self.nominal_frequency_ghz is not None:
            return self.frequency_ghz < self.nominal_frequency_ghz - 1e-9
        return self.frequency_ghz < np.max(self.frequency_ghz) - 1e-9


class DatacenterSimulator:
    """Simulates one cluster of a homogeneous datacenter."""

    def __init__(
        self,
        characterization: PlatformCharacterization,
        power_model: ServerPowerModel,
        material: PCMMaterial,
        trace: LoadTrace,
        topology: ClusterTopology | None = None,
        load_balancer: LoadBalancer | None = None,
        policy=None,
        config: SimulationConfig | None = None,
        arrivals: list[Arrival] | None = None,
        room: RoomModel | None = None,
        inlet_offsets_c: np.ndarray | None = None,
        fault_injector=None,
    ) -> None:
        self.characterization = characterization
        self.power_model = power_model
        self.material = material
        self.trace = trace
        self.topology = topology or ClusterTopology()
        self.load_balancer = load_balancer or RoundRobin()
        self.policy = policy or NoThermalLimit()
        self.config = config or SimulationConfig()
        self.room = room
        self.inlet_offsets_c = inlet_offsets_c
        self.fault_injector = fault_injector
        #: Thermal state at the end of the most recent run (for invariant
        #: checks that need the final enthalpy field).
        self.final_state: ClusterThermalState | None = None
        #: Copy of the per-server wax enthalpy at t=0 of the most recent
        #: run, for whole-run energy-closure checks.
        self.initial_specific_enthalpy_j_per_kg: np.ndarray | None = None
        self._arrivals = arrivals

    # -- shared helpers ------------------------------------------------------

    def _make_state(self) -> ClusterThermalState:
        initial = float(np.clip(self.trace.value_at(0.0), 0.0, 1.0))
        return ClusterThermalState(
            characterization=self.characterization,
            power_model=self.power_model,
            material=self.material,
            server_count=self.topology.server_count,
            inlet_temperature_c=self.config.inlet_temperature_c,
            initial_utilization=initial,
            wax_enabled=self.config.wax_enabled,
            inlet_offset_c=self.inlet_offsets_c,
        )

    def _tick_times(self) -> np.ndarray:
        dt = self.config.tick_interval_s
        n = int(np.floor(self.trace.duration_s / dt))
        return (np.arange(n) + 1) * dt

    def run(self) -> SimulationResult:
        """Run the configured simulation and return its traces."""
        if self.room is not None:
            self.room.reset()
        reset = getattr(self.policy, "reset", None)
        if callable(reset):
            reset()
        if self.fault_injector is not None:
            self.fault_injector.reset()
        obs = get_registry()
        start = time.perf_counter()
        with obs.timer("dcsim.run"):
            if self.config.mode == "fluid":
                result = self._run_fluid()
            else:
                result = self._run_event()
        if obs.enabled:
            elapsed = time.perf_counter() - start
            n_ticks = len(result.times_s)
            obs.count("dcsim.runs")
            obs.count(f"dcsim.mode.{self.config.mode}")
            obs.count("dcsim.ticks", n_ticks)
            obs.count("dcsim.server_ticks", n_ticks * result.server_count)
            if elapsed > 0:
                obs.record("dcsim.ticks_per_sec", n_ticks / elapsed)
        return result

    def _pre_tick(self, state: ClusterThermalState) -> None:
        """Propagate the room temperature to the server inlets."""
        if self.room is not None:
            state.inlet_temperature_c = self.room.temperature_c

    def _base_inlet_c(self) -> float:
        """The inlet temperature this tick absent any fault excursion."""
        if self.room is not None:
            return self.room.temperature_c
        return self.config.inlet_temperature_c

    def _post_tick(self, release_total_w: float, dt: float) -> float:
        """Advance the room model; returns the room temperature."""
        if self.room is None:
            return self.config.inlet_temperature_c
        self.room.step(dt, max(release_total_w, 0.0))
        return self.room.temperature_c

    # -- fluid mode ---------------------------------------------------------

    def _run_fluid(self) -> SimulationResult:
        # Both fluid engines (stretch-batched and per-tick reference)
        # live in repro.dcsim.fluid_engine; they share one scalar tick
        # body and are bit-identical by construction.
        from repro.dcsim.fluid_engine import run_fluid_mode

        return run_fluid_mode(self)

    # -- event mode -----------------------------------------------------------

    def _run_event(self) -> SimulationResult:
        # The event engines (batched and per-event reference) live in
        # repro.dcsim.event_engine; both share this simulator's per-tick
        # policy/thermal machinery and are bit-identical by construction.
        from repro.dcsim.event_engine import run_event_mode

        return run_event_mode(self)


class _Recorder:
    """Accumulates per-tick traces for a simulation run."""

    def __init__(self, n_ticks: int, n_servers: int) -> None:
        self.times = np.zeros(n_ticks)
        self.demand = np.zeros(n_ticks)
        self.utilization = np.zeros(n_ticks)
        self.frequency = np.zeros(n_ticks)
        self.power = np.zeros(n_ticks)
        self.release = np.zeros(n_ticks)
        self.wax = np.zeros(n_ticks)
        self.melt = np.zeros(n_ticks)
        self.throughput = np.zeros(n_ticks)
        self.queue = np.zeros(n_ticks)
        self.shed = np.zeros(n_ticks)
        self.room = np.zeros(n_ticks)
        self._completed = np.zeros(n_ticks)

    def add_completed(self, tick_index: int, work: float) -> None:
        self._completed[tick_index] += work

    def store(
        self,
        i: int,
        time_s: float,
        demand: float,
        utilization: float,
        frequency: float,
        power: float,
        release: float,
        wax: float,
        melt: float,
        throughput: float,
        queue: float,
        shed: float,
        room: float,
    ) -> None:
        self.times[i] = time_s
        self.demand[i] = demand
        self.utilization[i] = utilization
        self.frequency[i] = frequency
        self.power[i] = power
        self.release[i] = release
        self.wax[i] = wax
        self.melt[i] = melt
        self.throughput[i] = throughput
        self.queue[i] = queue
        self.shed[i] = shed
        self.room[i] = room

    def result(
        self,
        server_count: int,
        nominal_frequency_ghz: float | None = None,
        initial_power_w: float | None = None,
    ) -> SimulationResult:
        return SimulationResult(
            times_s=self.times,
            demand=self.demand,
            utilization=self.utilization,
            frequency_ghz=self.frequency,
            power_w=self.power,
            cooling_load_w=self.release,
            wax_heat_w=self.wax,
            melt_fraction=self.melt,
            throughput=self.throughput,
            queue_length=self.queue,
            shed_work=self.shed,
            room_temperature_c=self.room,
            completed_work_s=self._completed,
            server_count=server_count,
            nominal_frequency_ghz=nominal_frequency_ghz,
            initial_power_w=initial_power_w,
        )
