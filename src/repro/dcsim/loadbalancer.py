"""Load balancing policies for job dispatch.

The paper uses round-robin ("We use a round robin load balancing scheme");
a least-loaded policy is provided as an ablation — with a homogeneous
cluster and Poisson traffic the two produce nearly identical thermal
behaviour, which the ablation benchmark demonstrates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SimulationError


class LoadBalancer(abc.ABC):
    """Chooses which server receives an arriving job."""

    #: Servers ``[0, _offline)`` are unavailable (fault injection marks
    #: the lowest-indexed servers as failed; they drain but take no new
    #: work). Class-level default so subclasses need no super().__init__.
    _offline: int = 0

    @abc.abstractmethod
    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        """Index of the server to dispatch to, or None if every slot in the
        cluster is busy (the job must queue)."""

    def set_offline(self, offline_count: int) -> None:
        """Mark the first ``offline_count`` servers as unavailable.

        The fault injector calls this every tick while a server-outage
        fault is active (and with 0 on recovery); in-flight jobs on an
        offline server complete normally, it just receives no new work.
        """
        if offline_count < 0:
            raise SimulationError(
                f"offline count must be non-negative, got {offline_count}"
            )
        self._offline = int(offline_count)

    @property
    def offline_count(self) -> int:
        """Servers currently marked unavailable."""
        return self._offline

    def reset(self) -> None:
        """Clear any dispatch state between simulation runs."""
        self._offline = 0


class RoundRobin(LoadBalancer):
    """The paper's policy: rotate through servers, skipping full ones."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        super().reset()
        self._next = 0

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        n = len(busy_slots)
        if n == 0:
            raise SimulationError("cannot balance over zero servers")
        for offset in range(n):
            index = (self._next + offset) % n
            if index < self._offline:
                continue
            if busy_slots[index] < slots_per_server:
                self._next = (index + 1) % n
                return index
        return None


class LeastLoaded(LoadBalancer):
    """Dispatch to the server with the most free slots (ties to the lowest
    index, deterministically)."""

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        if len(busy_slots) == 0:
            raise SimulationError("cannot balance over zero servers")
        if self._offline >= len(busy_slots):
            return None
        candidates = busy_slots[self._offline:]
        index = self._offline + int(np.argmin(candidates))
        if busy_slots[index] >= slots_per_server:
            return None
        return index
