"""Load balancing policies for job dispatch.

The paper uses round-robin ("We use a round robin load balancing scheme");
a least-loaded policy is provided as an ablation — with a homogeneous
cluster and Poisson traffic the two produce nearly identical thermal
behaviour, which the ablation benchmark demonstrates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SimulationError


class LoadBalancer(abc.ABC):
    """Chooses which server receives an arriving job."""

    @abc.abstractmethod
    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        """Index of the server to dispatch to, or None if every slot in the
        cluster is busy (the job must queue)."""

    def reset(self) -> None:
        """Clear any dispatch state between simulation runs."""


class RoundRobin(LoadBalancer):
    """The paper's policy: rotate through servers, skipping full ones."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        n = len(busy_slots)
        if n == 0:
            raise SimulationError("cannot balance over zero servers")
        for offset in range(n):
            index = (self._next + offset) % n
            if busy_slots[index] < slots_per_server:
                self._next = (index + 1) % n
                return index
        return None


class LeastLoaded(LoadBalancer):
    """Dispatch to the server with the most free slots (ties to the lowest
    index, deterministically)."""

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        if len(busy_slots) == 0:
            raise SimulationError("cannot balance over zero servers")
        index = int(np.argmin(busy_slots))
        if busy_slots[index] >= slots_per_server:
            return None
        return index
