"""Load balancing policies for job dispatch.

The paper uses round-robin ("We use a round robin load balancing scheme");
a least-loaded policy is provided as an ablation — with a homogeneous
cluster and Poisson traffic the two produce nearly identical thermal
behaviour, which the ablation benchmark demonstrates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SimulationError


class LoadBalancer(abc.ABC):
    """Chooses which server receives an arriving job."""

    #: Servers ``[0, _offline)`` are unavailable (fault injection marks
    #: the lowest-indexed servers as failed; they drain but take no new
    #: work). Class-level default so subclasses need no super().__init__.
    _offline: int = 0

    @abc.abstractmethod
    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        """Index of the server to dispatch to, or None if every slot in the
        cluster is busy (the job must queue)."""

    def choose_many(
        self, busy_slots: np.ndarray, slots_per_server: int, count: int
    ) -> np.ndarray:
        """Servers for ``count`` back-to-back arrivals with no completions
        in between.

        Semantically identical to calling :meth:`choose` ``count`` times
        while incrementing the chosen server's busy count after each call,
        stopping at the first ``None`` (the returned array may therefore be
        shorter than ``count``; the remainder must queue). ``busy_slots``
        itself is **not** mutated. Subclasses override this with a
        vectorized equivalent; the base implementation is the sequential
        definition itself and serves as the ground truth for equivalence
        tests.
        """
        busy = np.array(busy_slots, copy=True)
        chosen: list[int] = []
        for _ in range(count):
            index = self.choose(busy, slots_per_server)
            if index is None:
                break
            busy[index] += 1
            chosen.append(index)
        return np.array(chosen, dtype=np.int64)

    def set_offline(self, offline_count: int) -> None:
        """Mark the first ``offline_count`` servers as unavailable.

        The fault injector calls this every tick while a server-outage
        fault is active (and with 0 on recovery); in-flight jobs on an
        offline server complete normally, it just receives no new work.
        """
        if offline_count < 0:
            raise SimulationError(
                f"offline count must be non-negative, got {offline_count}"
            )
        self._offline = int(offline_count)

    @property
    def offline_count(self) -> int:
        """Servers currently marked unavailable."""
        return self._offline

    def reset(self) -> None:
        """Clear any dispatch state between simulation runs."""
        self._offline = 0


class RoundRobin(LoadBalancer):
    """The paper's policy: rotate through servers, skipping full ones."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        super().reset()
        self._next = 0

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        n = len(busy_slots)
        if n == 0:
            raise SimulationError("cannot balance over zero servers")
        for offset in range(n):
            index = (self._next + offset) % n
            if index < self._offline:
                continue
            if busy_slots[index] < slots_per_server:
                self._next = (index + 1) % n
                return index
        return None

    def choose_many(
        self, busy_slots: np.ndarray, slots_per_server: int, count: int
    ) -> np.ndarray:
        n = len(busy_slots)
        if n == 0:
            raise SimulationError("cannot balance over zero servers")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        # Online servers in cyclic scan order starting at the pointer.
        order = (self._next + np.arange(n, dtype=np.int64)) % n
        order = order[order >= self._offline]
        free = slots_per_server - np.asarray(busy_slots, dtype=np.int64)[order]
        np.clip(free, 0, None, out=free)
        total = int(free.sum())
        m = min(count, total)
        if m == 0:
            return np.empty(0, dtype=np.int64)
        # Fast paths. One deal pass visits every server with a free slot
        # once, in cyclic order — so when ``m`` fits in a single pass the
        # assignment is the non-full servers' prefix, and when no server
        # runs out of free slots mid-deal it is the full order tiled.
        if m <= len(order):
            available = order[free > 0]
            if m <= len(available):
                servers = available[:m]
                self._next = int((servers[-1] + 1) % n)
                return servers
        passes = -(-m // len(order))
        if int(free.min()) >= passes:
            servers = np.tile(order, passes)[:m]
            self._next = int((servers[-1] + 1) % n)
            return servers
        # Round-robin deals one slot per server per pass: expand each
        # server into (round, position) candidate slots and take the first
        # ``m`` in (round, position) order — exactly the sequence the
        # scalar scan would produce, because a pass dispatches to every
        # server with a slot still free before any server gets a second.
        positions = np.repeat(np.arange(len(order), dtype=np.int64), free)
        starts = np.cumsum(free) - free
        rounds = np.arange(len(positions), dtype=np.int64) - np.repeat(
            starts, free
        )
        take = np.lexsort((positions, rounds))[:m]
        servers = order[positions[take]]
        self._next = int((servers[-1] + 1) % n)
        return servers


class LeastLoaded(LoadBalancer):
    """Dispatch to the server with the most free slots (ties to the lowest
    index, deterministically)."""

    def choose(self, busy_slots: np.ndarray, slots_per_server: int) -> int | None:
        if len(busy_slots) == 0:
            raise SimulationError("cannot balance over zero servers")
        if self._offline >= len(busy_slots):
            return None
        candidates = busy_slots[self._offline:]
        index = self._offline + int(np.argmin(candidates))
        if busy_slots[index] >= slots_per_server:
            return None
        return index

    def choose_many(
        self, busy_slots: np.ndarray, slots_per_server: int, count: int
    ) -> np.ndarray:
        if len(busy_slots) == 0:
            raise SimulationError("cannot balance over zero servers")
        if count <= 0 or self._offline >= len(busy_slots):
            return np.empty(0, dtype=np.int64)
        busy = np.asarray(busy_slots, dtype=np.int64)[self._offline:]
        free = slots_per_server - busy
        np.clip(free, 0, None, out=free)
        total = int(free.sum())
        m = min(count, total)
        if m == 0:
            return np.empty(0, dtype=np.int64)
        # Filling server ``i`` from occupancy ``b`` produces candidate
        # slots with loads ``b, b+1, ...``; repeated least-loaded choice
        # (ties to the lowest index) is exactly the candidate slots sorted
        # by (load at pick time, index).
        positions = np.repeat(np.arange(len(busy), dtype=np.int64), free)
        starts = np.cumsum(free) - free
        loads = (
            np.repeat(busy, free)
            + np.arange(len(positions), dtype=np.int64)
            - np.repeat(starts, free)
        )
        take = np.lexsort((positions, loads))[:m]
        return self._offline + positions[take]
