"""Room-air thermal model of an oversubscribed machine room (Section 5.2).

In the fully subscribed datacenter of Section 5.1 the CRAC holds the cold
aisle at its setpoint and the cooling load simply equals the heat the
servers release. In the *oversubscribed* datacenter of Section 5.2 the
plant cannot remove the peak heat output: the surplus accumulates in the
room air (and the building's near-air thermal mass), the cold-aisle
temperature climbs, and once it reaches the operating limit the cluster
must downclock "to prevent the datacenter from overheating".

This closes the loop that makes PCM effective in the constrained case:
server inlet temperature follows the room, the wax zone follows the
inlet, and a warming room drives the wax harder — the system settles
where wax absorption balances the surplus, holding the room below its
limit until the latent capacity is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default near-air thermal mass per cluster (J/K): the few hundred cubic
#: meters of air the CRAC loop actively recirculates for ~1000 servers.
#: Sets the minutes-scale lag between overload and over-temperature.
DEFAULT_ROOM_THERMAL_MASS_J_PER_K = 5.0e5

#: Near-air thermal mass per server (J/K): the room's recirculated air
#: volume scales with the fleet it serves, so smaller simulated clusters
#: should carry proportionally smaller rooms (same lag per unit of heat).
ROOM_THERMAL_MASS_PER_SERVER_J_PER_K = 500.0


@dataclass
class RoomModel:
    """Cold-aisle air temperature under a capacity-limited CRAC.

    Parameters
    ----------
    cooling_capacity_w:
        Maximum heat the plant can remove continuously (per cluster).
    thermal_mass_j_per_k:
        Near-air thermal mass of the room.
    setpoint_c:
        CRAC setpoint; the room never cools below it.
    max_temperature_c:
        Operating limit at which thermal management must intervene
        (default 35 degC, the ASHRAE A2 allowable cold-aisle maximum).
    """

    cooling_capacity_w: float
    thermal_mass_j_per_k: float = DEFAULT_ROOM_THERMAL_MASS_J_PER_K
    setpoint_c: float = 25.0
    max_temperature_c: float = 35.0
    temperature_c: float = field(init=False)

    def __post_init__(self) -> None:
        if self.cooling_capacity_w <= 0:
            raise ConfigurationError("cooling capacity must be positive")
        if self.thermal_mass_j_per_k <= 0:
            raise ConfigurationError("room thermal mass must be positive")
        if self.max_temperature_c <= self.setpoint_c:
            raise ConfigurationError(
                f"max temperature ({self.max_temperature_c}) must exceed the "
                f"setpoint ({self.setpoint_c})"
            )
        self.temperature_c = self.setpoint_c

    @classmethod
    def sized_for_cluster(
        cls, cooling_capacity_w: float, server_count: int, **kwargs: float
    ) -> "RoomModel":
        """A room whose air mass scales with the cluster it serves.

        Keeps the overload-to-over-temperature lag per unit of heat
        independent of how many servers a study chooses to simulate, so
        miniaturized clusters reproduce full-scale thermal dynamics.
        """
        if server_count <= 0:
            raise ConfigurationError("server count must be positive")
        return cls(
            cooling_capacity_w=cooling_capacity_w,
            thermal_mass_j_per_k=(
                ROOM_THERMAL_MASS_PER_SERVER_J_PER_K * server_count
            ),
            **kwargs,
        )

    @property
    def headroom_c(self) -> float:
        """Degrees of room-temperature margin left before the limit."""
        return self.max_temperature_c - self.temperature_c

    @property
    def over_limit(self) -> bool:
        """Whether the room has reached its operating limit."""
        return self.temperature_c >= self.max_temperature_c

    def removal_w(self, release_w: float) -> float:
        """Heat the CRAC removes this instant.

        At or below the setpoint the CRAC modulates to match the load (it
        will not subcool the room); above the setpoint it runs flat out at
        capacity.
        """
        if release_w < 0:
            raise ConfigurationError("heat release must be non-negative")
        if self.temperature_c > self.setpoint_c + 1e-9:
            return self.cooling_capacity_w
        return min(release_w, self.cooling_capacity_w)

    def step(self, dt_s: float, release_w: float) -> float:
        """Advance the room temperature one tick; returns heat removed (W)."""
        if dt_s <= 0:
            raise ConfigurationError(f"tick must be positive, got {dt_s}")
        removed = self.removal_w(release_w)
        self.temperature_c += dt_s * (release_w - removed) / self.thermal_mass_j_per_k
        if self.temperature_c < self.setpoint_c:
            self.temperature_c = self.setpoint_c
        return removed

    def reset(self) -> None:
        """Return the room to its setpoint (between simulation runs)."""
        self.temperature_c = self.setpoint_c
