"""Cluster topology: servers grouped into racks.

DCSim models work "at the server, rack, and cluster levels, then
extrapolates the cluster model out for the whole datacenter". The topology
object owns the server/rack indexing and the extrapolation factor from one
simulated cluster to the full deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterTopology:
    """Server and rack structure of one simulated cluster.

    Parameters
    ----------
    server_count:
        Servers in the cluster (the paper simulates clusters of 1008).
    servers_per_rack:
        Rack density of the platform (40 1U, 20 2U, or 96 OCP blades per
        rack position).
    clusters_in_datacenter:
        Number of identical clusters the datacenter holds; cluster-level
        results are multiplied by this to report datacenter totals.
    """

    server_count: int = 1008
    servers_per_rack: int = 42
    clusters_in_datacenter: int = 1

    def __post_init__(self) -> None:
        if self.server_count <= 0:
            raise ConfigurationError("server count must be positive")
        if self.servers_per_rack <= 0:
            raise ConfigurationError("servers per rack must be positive")
        if self.clusters_in_datacenter <= 0:
            raise ConfigurationError("cluster multiplier must be positive")

    @property
    def rack_count(self) -> int:
        """Number of racks (last rack may be partial)."""
        return -(-self.server_count // self.servers_per_rack)

    @property
    def datacenter_servers(self) -> int:
        """Total servers across the whole datacenter."""
        return self.server_count * self.clusters_in_datacenter

    def rack_of(self, server_index: int) -> int:
        """Rack index of a server."""
        if not 0 <= server_index < self.server_count:
            raise ConfigurationError(
                f"server index {server_index} out of range "
                f"[0, {self.server_count})"
            )
        return server_index // self.servers_per_rack

    def rack_totals(self, per_server: np.ndarray) -> np.ndarray:
        """Aggregate a per-server quantity to rack level."""
        values = np.asarray(per_server)
        if values.shape != (self.server_count,):
            raise ConfigurationError(
                f"expected shape ({self.server_count},), got {values.shape}"
            )
        racks = np.zeros(self.rack_count)
        np.add.at(racks, np.arange(self.server_count) // self.servers_per_rack, values)
        return racks

    def extrapolate(self, cluster_total: float | np.ndarray) -> float | np.ndarray:
        """Scale a cluster-level total to the full datacenter."""
        return cluster_total * self.clusters_in_datacenter
