"""Rack-level inlet heterogeneity.

DCSim "models job arrival, load balancing, and work completion ... at the
server, rack, and cluster levels". Real machine rooms are not isothermal:
servers at the top of a rack ingest warmer air (stratification), racks at
the row ends see recirculation around the aisle containment, and the
result is a per-server spread of inlet temperatures of several degrees.

For PCM this matters directly: a server with a hot inlet runs its wax
zone closer to (or past) the melting threshold at all times, eroding both
the refreeze margin overnight and the latent headroom at the peak. This
module generates deterministic per-server inlet *offsets* from a rack
topology so the cluster simulator can quantify that erosion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.cluster import ClusterTopology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RackInletProfile:
    """Parametric model of within-room inlet temperature variation.

    Parameters
    ----------
    vertical_spread_c:
        Top-of-rack minus bottom-of-rack inlet difference (stratification;
        servers are assigned positions in rack order).
    recirculation_c:
        Extra offset applied to the racks at each end of the row (hot-air
        recirculation around the containment).
    recirculation_racks:
        How many racks at each end of the row are affected.
    jitter_c:
        Per-server random component (seeded, deterministic) capturing
        blanking-panel gaps and local leakage.
    seed:
        Seed of the jitter generator.
    """

    vertical_spread_c: float = 3.0
    recirculation_c: float = 2.0
    recirculation_racks: int = 1
    jitter_c: float = 0.5
    seed: int = 1207

    def __post_init__(self) -> None:
        if self.vertical_spread_c < 0:
            raise ConfigurationError("vertical spread must be non-negative")
        if self.recirculation_c < 0:
            raise ConfigurationError("recirculation offset must be non-negative")
        if self.recirculation_racks < 0:
            raise ConfigurationError("recirculation rack count must be non-negative")
        if self.jitter_c < 0:
            raise ConfigurationError("jitter must be non-negative")

    def offsets_c(self, topology: ClusterTopology) -> np.ndarray:
        """Per-server inlet offsets, zero-mean in the vertical component.

        The vertical term is centred so a zero-spread profile and a
        spread profile have the same *mean* inlet — heterogeneity, not a
        uniform shift, is what is being studied.
        """
        n = topology.server_count
        indices = np.arange(n)
        position_in_rack = indices % topology.servers_per_rack
        rack = indices // topology.servers_per_rack

        vertical = self.vertical_spread_c * (
            position_in_rack / max(topology.servers_per_rack - 1, 1) - 0.5
        )

        recirculation = np.zeros(n)
        if self.recirculation_racks > 0 and self.recirculation_c > 0:
            last_rack = topology.rack_count - 1
            affected = (rack < self.recirculation_racks) | (
                rack > last_rack - self.recirculation_racks
            )
            recirculation[affected] = self.recirculation_c

        rng = np.random.default_rng(self.seed)
        jitter = rng.normal(0.0, self.jitter_c, n) if self.jitter_c > 0 else 0.0

        return vertical + recirculation + jitter

    def uniform(self) -> "RackInletProfile":
        """The isothermal control profile (all offsets zero)."""
        return RackInletProfile(
            vertical_spread_c=0.0,
            recirculation_c=0.0,
            recirculation_racks=0,
            jitter_c=0.0,
            seed=self.seed,
        )
