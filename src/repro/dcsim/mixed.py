"""Mixed fleets: PCM-equipped and legacy servers sharing one plant.

The paper's retrofit scenario (Section 5.1) replaces a datacenter's
servers at their 4-year end of life while the cooling plant soldiers on.
Real migrations are rolling, not atomic: for months the room holds a mix
of wax-equipped new servers and wax-less old ones, all breathing the same
cold aisle and drawing on the same plant.

A :class:`MixedFleet` runs two server groups in lock step — same trace,
same room — and reports the blended cooling load, so operators can ask
the planning question the paper's endpoints bracket: *how much of the
fleet must carry wax before the peak drops enough to matter?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.workload.trace import LoadTrace


@dataclass(frozen=True)
class MixedFleetResult:
    """Per-tick traces of a mixed-fleet run."""

    times_s: np.ndarray
    cooling_load_w: np.ndarray
    equipped_cooling_load_w: np.ndarray
    legacy_cooling_load_w: np.ndarray
    power_w: np.ndarray
    melt_fraction: np.ndarray

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak blended cooling load."""
        return float(np.max(self.cooling_load_w))


class MixedFleet:
    """Two co-located server groups, with and without wax.

    Both groups run the platform's characterization and power model; only
    the wax differs. Utilization is applied uniformly (round-robin over a
    homogeneous service pool spreads work evenly regardless of which
    chassis carries wax — the dispatcher cannot see the wax).
    """

    def __init__(
        self,
        characterization: PlatformCharacterization,
        power_model: ServerPowerModel,
        material: PCMMaterial,
        trace: LoadTrace,
        total_servers: int,
        equipped_fraction: float,
        tick_interval_s: float = 60.0,
        inlet_temperature_c: float = 25.0,
    ) -> None:
        if total_servers <= 0:
            raise ConfigurationError("total servers must be positive")
        if not 0.0 <= equipped_fraction <= 1.0:
            raise ConfigurationError(
                f"equipped fraction must be in [0, 1], got {equipped_fraction}"
            )
        if tick_interval_s <= 0:
            raise ConfigurationError("tick interval must be positive")
        self.characterization = characterization
        self.power_model = power_model
        self.material = material
        self.trace = trace
        self.total_servers = total_servers
        self.equipped_count = int(round(equipped_fraction * total_servers))
        self.legacy_count = total_servers - self.equipped_count
        self.tick_interval_s = tick_interval_s
        self.inlet_temperature_c = inlet_temperature_c

    def _make_group(self, count: int, wax: bool) -> ClusterThermalState | None:
        if count == 0:
            return None
        return ClusterThermalState(
            characterization=self.characterization,
            power_model=self.power_model,
            material=self.material,
            server_count=count,
            inlet_temperature_c=self.inlet_temperature_c,
            initial_utilization=float(
                np.clip(self.trace.value_at(0.0), 0.0, 1.0)
            ),
            wax_enabled=wax,
        )

    def run(self) -> MixedFleetResult:
        """Run both groups over the trace and blend their cooling loads."""
        equipped = self._make_group(self.equipped_count, wax=True)
        legacy = self._make_group(self.legacy_count, wax=False)
        dt = self.tick_interval_s
        n_ticks = int(np.floor(self.trace.duration_s / dt))
        times = (np.arange(n_ticks) + 1) * dt

        total = np.zeros(n_ticks)
        equipped_load = np.zeros(n_ticks)
        legacy_load = np.zeros(n_ticks)
        power_total = np.zeros(n_ticks)
        melt = np.zeros(n_ticks)

        for i, t in enumerate(times):
            demand = float(np.clip(self.trace.value_at(t - 0.5 * dt), 0, 1))
            for group, load_trace in (
                (equipped, equipped_load),
                (legacy, legacy_load),
            ):
                if group is None:
                    continue
                busy = np.full(group.server_count, demand)
                power, release, _ = group.step(dt, busy, 2.4)
                load_trace[i] = float(np.sum(release))
                power_total[i] += float(np.sum(power))
            total[i] = equipped_load[i] + legacy_load[i]
            if equipped is not None:
                melt[i] = float(np.mean(equipped.melt_fraction))

        return MixedFleetResult(
            times_s=times,
            cooling_load_w=total,
            equipped_cooling_load_w=equipped_load,
            legacy_cooling_load_w=legacy_load,
            power_w=power_total,
            melt_fraction=melt,
        )


def rollout_curve(
    characterization: PlatformCharacterization,
    power_model: ServerPowerModel,
    material: PCMMaterial,
    trace: LoadTrace,
    total_servers: int = 1008,
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> dict[float, float]:
    """Peak-cooling reduction as the wax rollout progresses.

    Returns equipped fraction -> fractional peak reduction relative to the
    all-legacy fleet.
    """
    if not fractions:
        raise ConfigurationError("need at least one rollout fraction")
    baseline = MixedFleet(
        characterization, power_model, material, trace,
        total_servers=total_servers, equipped_fraction=0.0,
    ).run().peak_cooling_load_w
    curve: dict[float, float] = {}
    for fraction in fractions:
        peak = MixedFleet(
            characterization, power_model, material, trace,
            total_servers=total_servers, equipped_fraction=fraction,
        ).run().peak_cooling_load_w
        curve[float(fraction)] = 1.0 - peak / baseline
    return curve
