"""Array-native event engine for the discrete-event datacenter simulator.

Two interchangeable engines implement the event-mode semantics described in
:mod:`repro.dcsim.simulator` (arrivals, round-robin dispatch into per-server
slots, FIFO queueing under saturation, work-clock completions under DVFS):

* ``reference`` — a lean per-event loop over a ``heapq`` of
  ``(work_time, server, service_work)`` tuples. This is the semantic
  ground truth; it is intentionally simple.
* ``batched`` — processes *chunks* of events between policy decisions with
  vectorized NumPy operations: all arrivals of a span are dispatched in
  one :meth:`~repro.dcsim.loadbalancer.LoadBalancer.choose_many` call,
  completions pop out of a typed event queue as array slices, and
  saturated arrivals queue in bulk. A chunk is committed only after an
  exact validation that the sequential engine would have made the same
  dispatch decisions; otherwise the engine falls back to a scalar cascade
  for a stretch and retries.

Both engines are **bit-identical** by construction, not by accident. The
key device is the per-tick *event log* (:class:`TickEventLog`): rather than
accruing ``busy_time`` incrementally (whose floating-point result would
depend on the order and grouping of updates), each engine only records the
multiset of slot transitions ``(time, server, ±1, service)`` it performed
inside the tick. At the tick boundary the log is put into a canonical
order and reduced with a fixed sequence of NumPy operations. Two engines
that process the same events — in any internal order or batching — thus
produce byte-identical per-tick utilization, completed work, and therefore
byte-identical :class:`~repro.dcsim.simulator.SimulationResult` traces and
final wax enthalpy.

Time semantics shared by both engines (the *anchored work clock*): each
tick window ``(t0, t1]`` carries an anchor ``(t0, W0)`` — the real and
accumulated-work time at the window start — and a constant throughput
factor ``tf`` decided by the policy at ``t0``. Within the window::

    completion real time   t_c = max(t0 + (W_c - W0) / tf, t0)
    arrival work time      W_a = W0 + (t_a - t0) * tf
    window-end work        W1  = W0 + (t1 - t0) * tf

An event is processed inside the window iff its real time is strictly
before ``t1``; completions win ties against arrivals (``t_c <= t_a``).
Completions are ordered by their ``(W, server, service)`` tuple, exactly
as the reference heap orders them.
"""

from __future__ import annotations

import heapq
import time as _time

import numpy as np

from repro.dcsim.loadbalancer import RoundRobin
from repro.errors import SimulationError
from repro.obs import get_registry
from repro.workload.jobs import cached_arrival_stream, coerce_arrival_stream

__all__ = [
    "TypedEventQueue",
    "TickEventLog",
    "run_event_mode",
    "QUEUE_COMPACT_THRESHOLD",
]

#: Consumed-prefix length beyond which the FIFO queue of saturated jobs is
#: compacted (the consumed prefix is deleted). Compaction is purely a
#: memory-management step; it never changes behaviour.
QUEUE_COMPACT_THRESHOLD = 4096

#: Pending pushes are folded into a sorted run once this many accumulate.
_PENDING_FLUSH = 64

#: Sorted runs are consolidated into one once this many accumulate.
_MAX_RUNS = 12

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)

#: A mega-pass that needs this many dispatch-conflict segments is
#: *degenerate*: the tick is conflict-dense (high slot occupancy), each
#: extra segment redeals the remainder, and per-segment NumPy overhead
#: loses to the scalar engine.
_SEG_LIMIT = 6

#: Forecast horizon, in ticks, of the scalar-band pass that runs after a
#: degenerate mega-pass. Conflict density tracks the diurnal load, so the
#: degenerate regime persists for many consecutive ticks; instead of
#: blindly holding scalar for a fixed count and re-probing, the engine
#: projects slot occupancy over the next ``_BAND_TICKS`` tick edges (from
#: the drained pending heap plus the remaining arrival stream) and stays
#: scalar exactly for the run of edges still above the occupancy gate.
#: Setting this to 0 disables holds entirely (every tick re-probes).
_BAND_TICKS = 64

#: Occupancy fraction above which ticks skip the vectorized probe
#: entirely. Conflicts are pops that leave a *full* server, and measured
#: degeneracy switches sharply with occupancy: below ~0.5 a mega-pass
#: commits in one or two segments, above ~0.6 it always degenerates. The
#: gate removes the cost of probing ticks that are known losers; the
#: degenerate hold still catches the band in between.
_VECTOR_OCCUPANCY = 0.55

#: Ticks with fewer arrivals than this go straight to the scalar loop:
#: the mega-pass's fixed costs (work maps, pop sort, occupancy replay)
#: only amortize over reasonably large spans (measured break-even is
#: around a hundred arrivals per tick).
_VECTOR_MIN = 128

# _try_chunk outcomes.
_DONE = 0        # every remaining event is at or past the tick boundary
_ADVANCED = 1    # a chunk committed; state moved forward
_FAILED = 2      # no progress (saturation); caller finishes the tick scalar
_DEGENERATE = 3  # progress, but conflict-dense; caller goes scalar + holds
_SMALL = 4       # tick too small to vectorize; caller runs it scalar


class TypedEventQueue:
    """Priority queue of completion events on typed NumPy arrays.

    Events are ``(work_time, server, service_work)`` triples ordered
    lexicographically, exactly like the tuple heap of the reference
    engine. Storage is a small set of individually sorted runs (float64 /
    int64 / float64 column arrays with a head cursor) plus a binary-heap
    pending buffer for recent scalar pushes:

    * scalar ``push``/``pop``/``peek`` cost O(runs + log pending) with
      tiny constants — runs expose their heads as cached Python tuples,
      and the minimum is memoized so peek-then-pop scans once;
    * ``push_batch`` lexsorts the batch into one new run;
    * ``pop_runs_until`` slices every run's qualifying prefix out in one
      vectorized step per run (the inter-run merge order is irrelevant to
      callers that reduce through a :class:`TickEventLog`).

    Pending overflow flushes into a new run; excess runs consolidate into
    one (concatenate + lexsort), keeping scalar operations cheap.
    """

    def __init__(self) -> None:
        # Each run: [w_arr, s_arr, v_arr, head]; runs are immutable past
        # their head cursor.
        self._runs: list[list] = []
        # Cached head triples, parallel to _runs: (w, s, v) Python scalars.
        self._heads: list[tuple[float, int, float]] = []
        self._pending: list[tuple[float, int, float]] = []
        # Memoized (minimum triple, source) so the peek-then-pop pattern of
        # the scalar cascade scans the heads once, not twice. Source is the
        # run index, or -1 for the pending heap; None means stale.
        self._best: tuple[tuple[float, int, float], int] | None = None

    def __len__(self) -> int:
        return sum(len(r[0]) - r[3] for r in self._runs) + len(self._pending)

    # -- internal maintenance ------------------------------------------------

    def _append_run(self, w: np.ndarray, s: np.ndarray, v: np.ndarray) -> None:
        if len(w) == 0:
            return
        self._best = None
        self._runs.append([w, s, v, 0])
        self._heads.append((float(w[0]), int(s[0]), float(v[0])))
        if len(self._runs) > _MAX_RUNS:
            self._consolidate()

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        w = np.array([e[0] for e in self._pending], dtype=np.float64)
        s = np.array([e[1] for e in self._pending], dtype=np.int64)
        v = np.array([e[2] for e in self._pending], dtype=np.float64)
        self._pending.clear()
        order = np.lexsort((v, s, w))
        self._append_run(w[order], s[order], v[order])

    def _consolidate(self) -> None:
        self._best = None
        w = np.concatenate([r[0][r[3]:] for r in self._runs])
        s = np.concatenate([r[1][r[3]:] for r in self._runs])
        v = np.concatenate([r[2][r[3]:] for r in self._runs])
        self._runs.clear()
        self._heads.clear()
        order = np.lexsort((v, s, w))
        self._append_run(w[order], s[order], v[order])

    def _advance_run(self, i: int) -> None:
        run = self._runs[i]
        run[3] += 1
        if run[3] >= len(run[0]):
            del self._runs[i]
            del self._heads[i]
        else:
            h = run[3]
            self._heads[i] = (
                float(run[0][h]), int(run[1][h]), float(run[2][h])
            )

    # -- scalar operations ---------------------------------------------------

    def push(self, w: float, s: int, v: float) -> None:
        event = (w, s, v)
        heapq.heappush(self._pending, event)
        if len(self._pending) >= _PENDING_FLUSH:
            self._flush_pending()
        else:
            # The push displaces the cached minimum only if it is smaller;
            # otherwise the heap top and every run head are unchanged.
            cached = self._best
            if cached is not None and event < cached[0]:
                self._best = (event, -1)

    def peek(self) -> tuple[float, int, float] | None:
        cached = self._best
        if cached is not None:
            return cached[0]
        best = None
        source = -2
        for i, h in enumerate(self._heads):
            if best is None or h < best:
                best = h
                source = i
        if self._pending and (best is None or self._pending[0] < best):
            best = self._pending[0]
            source = -1
        if best is None:
            return None
        self._best = (best, source)
        return best

    def pop(self) -> tuple[float, int, float]:
        if self._best is None and self.peek() is None:
            raise SimulationError("pop from empty event queue")
        best, source = self._best
        self._best = None
        if source == -1:
            return heapq.heappop(self._pending)
        self._advance_run(source)
        return best

    def drain_to_pending(self) -> None:
        """Move every run into the pending heap for a scalar-heavy stretch.

        The scalar engine then works on the heap directly (plain tuple
        ``heappush``/``heappop``, exactly like the reference engine) with
        no per-event head scans or tuple re-boxing; the next batch
        operation flushes the pending buffer back into a sorted run.
        """
        self._best = None
        if not self._runs:
            return
        for run in self._runs:
            head = run[3]
            self._pending.extend(
                zip(
                    run[0][head:].tolist(),
                    run[1][head:].tolist(),
                    run[2][head:].tolist(),
                )
            )
        self._runs.clear()
        self._heads.clear()
        heapq.heapify(self._pending)

    def pending_work_times(self) -> np.ndarray:
        """Work times of every event in the pending heap (heap order).

        After :meth:`drain_to_pending` the heap holds every live
        completion, so this is the whole queue as one unsorted array —
        the input of the batched core's scalar-band forecast.
        """
        if not self._pending:
            return _EMPTY_F
        return np.fromiter(
            (event[0] for event in self._pending),
            dtype=np.float64,
            count=len(self._pending),
        )

    # -- batch operations ----------------------------------------------------

    def push_batch(
        self, w: np.ndarray, s: np.ndarray, v: np.ndarray
    ) -> None:
        if len(w) == 0:
            return
        w = np.asarray(w, dtype=np.float64)
        s = np.asarray(s, dtype=np.int64)
        v = np.asarray(v, dtype=np.float64)
        order = np.lexsort((v, s, w))
        self._append_run(w[order], s[order], v[order])

    def pop_runs_until(
        self, t0: float, w0: float, tf: float, limit: float, inclusive: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pop every event whose anchored real time is before ``limit``.

        ``inclusive`` pops events at exactly ``limit`` too (used when the
        limit is the next arrival, which completions win on ties). The
        returned arrays concatenate per-run prefixes and are **not**
        globally sorted — callers must reduce them order-independently
        (e.g. through :class:`TickEventLog`).
        """
        self._best = None
        if self._pending:
            self._flush_pending()
        if not self._runs:
            empty_f = np.empty(0, dtype=np.float64)
            return empty_f, np.empty(0, dtype=np.int64), empty_f
        ws: list[np.ndarray] = []
        ss: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        # A first-guess boundary by inverting the anchor map, then an exact
        # fix-up on the anchored times themselves (the inverse is only
        # approximate in floating point).
        guess = w0 + (limit - t0) * tf
        for i in range(len(self._runs) - 1, -1, -1):
            run = self._runs[i]
            w_arr, head = run[0], run[3]
            k = int(np.searchsorted(w_arr[head:], guess, side="right"))
            n_run = len(w_arr) - head
            while k > 0:
                t_c = t0 + (float(w_arr[head + k - 1]) - w0) / tf
                if t_c < t0:
                    t_c = t0
                if (t_c <= limit) if inclusive else (t_c < limit):
                    break
                k -= 1
            while k < n_run:
                t_c = t0 + (float(w_arr[head + k]) - w0) / tf
                if t_c < t0:
                    t_c = t0
                if not ((t_c <= limit) if inclusive else (t_c < limit)):
                    break
                k += 1
            if k <= 0:
                continue
            ws.append(w_arr[head:head + k])
            ss.append(run[1][head:head + k])
            vs.append(run[2][head:head + k])
            run[3] = head + k
            if run[3] >= len(w_arr):
                del self._runs[i]
                del self._heads[i]
            else:
                h = run[3]
                self._heads[i] = (
                    float(run[0][h]), int(run[1][h]), float(run[2][h])
                )
        if not ws:
            empty_f = np.empty(0, dtype=np.float64)
            return empty_f, np.empty(0, dtype=np.int64), empty_f
        return np.concatenate(ws), np.concatenate(ss), np.concatenate(vs)


class TickEventLog:
    """Collects the slot transitions of one tick and reduces them canonically.

    Entries are ``(time, server, delta, service)`` with ``delta = +1`` for
    a slot occupation (dispatch) and ``-1`` for a completion. ``finalize``
    sorts the log by ``(time, server, service, delta)`` lexicographically
    and computes the tick's busy-time integral and completed work with a
    fixed sequence of NumPy reductions, so any two engines that log the
    same multiset of transitions get byte-identical results.
    """

    def __init__(self) -> None:
        self._t: list[float] = []
        self._s: list[int] = []
        self._d: list[int] = []
        self._v: list[float] = []

    def add(self, t: float, s: int, d: int, v: float) -> None:
        self._t.append(t)
        self._s.append(s)
        self._d.append(d)
        self._v.append(v)

    def add_batch(
        self, t: np.ndarray, s: np.ndarray, d: int, v: np.ndarray
    ) -> None:
        if len(t) == 0:
            return
        self._t.extend(t.tolist())
        self._s.extend(s.tolist())
        self._d.extend([d] * len(t))
        self._v.extend(v.tolist())

    def finalize(
        self,
        tick_time: float,
        span: float,
        busy_start: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Reduce the log: (busy_time per server, completed work this tick).

        ``busy_start`` is the slot occupancy at the tick start; ``span``
        is the tick length. The busy-time integral anchors at the tick
        start and corrects each transition against the tick end::

            busy_time = busy_start * span + sum_e delta_e * (t1 - t_e)
        """
        busy_time = busy_start.astype(np.float64) * span
        if not self._t:
            return busy_time, 0.0
        t = np.array(self._t, dtype=np.float64)
        s = np.array(self._s, dtype=np.int64)
        d = np.array(self._d, dtype=np.int64)
        v = np.array(self._v, dtype=np.float64)
        self._t.clear()
        self._s.clear()
        self._d.clear()
        self._v.clear()
        order = np.lexsort((d, v, s, t))
        t = t[order]
        s = s[order]
        d = d[order]
        v = v[order]
        np.add.at(busy_time, s, d * (tick_time - t))
        completed = float(np.sum(v[d < 0]))
        return busy_time, completed


# ---------------------------------------------------------------------------
# Engine cores
# ---------------------------------------------------------------------------


class _CoreBase:
    """State shared by both engine cores."""

    def __init__(
        self,
        arr_times: np.ndarray,
        arr_services: np.ndarray,
        n_servers: int,
        load_balancer,
    ) -> None:
        self.arr_times = arr_times
        self.arr_services = arr_services
        # Python-float mirrors for the scalar hot path.
        self.arr_times_list = arr_times.tolist()
        self.arr_services_list = arr_services.tolist()
        self.n_arrivals = len(arr_times)
        self.i = 0  # next arrival index
        self.busy = np.zeros(n_servers, dtype=np.int64)
        self.queue: list[float] = []
        self.queue_head = 0
        self.balancer = load_balancer
        self.log = TickEventLog()
        self.events = 0
        self.queue_high_water = 0

    def queue_depth(self) -> int:
        return len(self.queue) - self.queue_head

    def _note_queue_depth(self) -> None:
        depth = len(self.queue) - self.queue_head
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def _compact_queue(self) -> None:
        # Memory-management only: drop the consumed prefix once it is both
        # large and the majority of the list. Indices shift, behaviour
        # does not.
        if (
            self.queue_head >= QUEUE_COMPACT_THRESHOLD
            and self.queue_head * 2 >= len(self.queue)
        ):
            del self.queue[: self.queue_head]
            self.queue_head = 0


class _ReferenceCore(_CoreBase):
    """Per-event loop over a tuple heap — the semantic ground truth."""

    def __init__(self, arr_times, arr_services, n_servers, load_balancer):
        super().__init__(arr_times, arr_services, n_servers, load_balancer)
        self.heap: list[tuple[float, int, float]] = []

    def pending_completions(self) -> int:
        return len(self.heap)

    def process_until(
        self, tick_time: float, t0: float, w0: float, tf: float, slot_limit: int
    ) -> None:
        busy = self.busy
        heap = self.heap
        log = self.log
        while True:
            t_a = (
                self.arr_times_list[self.i]
                if self.i < self.n_arrivals
                else np.inf
            )
            if heap:
                t_c = t0 + (heap[0][0] - w0) / tf
                if t_c < t0:
                    t_c = t0
            else:
                t_c = np.inf
            if t_c <= t_a:
                if t_c >= tick_time:
                    return
                w_c, server, service = heapq.heappop(heap)
                busy[server] -= 1
                if busy[server] < 0:
                    raise SimulationError("negative slot occupancy")
                log.add(t_c, server, -1, service)
                self.events += 1
                if self.queue_head < len(self.queue):
                    index = self.balancer.choose(busy, slot_limit)
                    if index is not None:
                        q_service = self.queue[self.queue_head]
                        self.queue_head += 1
                        busy[index] += 1
                        heapq.heappush(heap, (w_c + q_service, index, q_service))
                        log.add(t_c, index, +1, q_service)
                        self._compact_queue()
            else:
                if t_a >= tick_time:
                    return
                service = self.arr_services_list[self.i]
                self.i += 1
                self.events += 1
                index = self.balancer.choose(busy, slot_limit)
                if index is None:
                    self.queue.append(service)
                    self._note_queue_depth()
                else:
                    w_a = w0 + (t_a - t0) * tf
                    busy[index] += 1
                    heapq.heappush(heap, (w_a + service, index, service))
                    log.add(t_a, index, +1, service)


class _BatchedCore(_CoreBase):
    """Chunked engine: vectorized spans with exact-equivalence validation.

    A *chunk* is a span of the tick processed in one shot: the span's
    arrivals are dispatched with one ``choose_many`` call and its due
    completions pop out of the typed queue as array slices. The chunk is
    committed only when the sequential engine would provably have made
    identical decisions:

    * the span is cut so that no completion *spawned inside it* lands
      before its end (service works are known before dispatch, so this is
      decided up front);
    * all span arrivals must dispatch (no queueing inside a chunk);
    * for plain round-robin — whose choices depend only on which servers
      are *full*, not on exact occupancy — the deal is validated against
      *stale fullness*: the dealer sees occupancy without the span's
      completions, so a decision at ``t_j`` is suspect iff some server is
      both statically full before ``t_j`` and freed by a completion at or
      before ``t_j``. Committing strictly before the earliest such time
      (``min_s max(t_fill(s), t_comp(s))``, :meth:`_earliest_taint`)
      makes every committed choice provably sequential. Least-loaded
      choices depend on exact occupancy, so vectorized passes are only
      taken for round-robin.

    Conflict density tracks slot occupancy: at high load nearly every
    completion leaves a full server, segments shrink to a few events, and
    per-segment NumPy overhead loses to plain scalar processing. The
    engine is therefore *regime-adaptive*: a mega-pass that degenerates
    switches the core to a reference-style heap loop (see
    :meth:`_process_scalar`) and then *forecasts* how long the conflict-
    dense band lasts (:meth:`_forecast_scalar_band`): a run-length
    segmented pass over the drained pending heap and the remaining
    arrival stream projects occupancy at the next ``_BAND_TICKS`` tick
    edges, and the vectorized probe stays off until the first edge back
    below the occupancy gate. The forecast is a scheduling heuristic
    only — either path logs the same transition multiset, so the
    reduction stays byte-identical regardless of what it predicts.
    """

    def __init__(self, arr_times, arr_services, n_servers, load_balancer):
        super().__init__(arr_times, arr_services, n_servers, load_balancer)
        self.store = TypedEventQueue()
        # The full/not-full dispatch argument above is exact only for the
        # plain RoundRobin policy, not arbitrary subclasses of it.
        self._rr_chunks = type(load_balancer) is RoundRobin
        # Real-time bound below which vectorized probes stay off; set by
        # the scalar-band forecast after a degenerate mega-pass.
        self._scalar_until = -np.inf
        self._forecast_pending = False
        # Deterministic forecast telemetry (dcsim.engine.forecast_*).
        self.forecast_bands = 0
        self.forecast_band_ticks = 0

    def pending_completions(self) -> int:
        return len(self.store)

    def process_until(
        self, tick_time: float, t0: float, w0: float, tf: float, slot_limit: int
    ) -> None:
        if (
            self._rr_chunks
            and self.queue_head >= len(self.queue)
            and t0 >= self._scalar_until
            and int(self.busy.sum())
            < _VECTOR_OCCUPANCY * len(self.busy) * slot_limit
        ):
            while True:
                status = self._try_chunk(
                    tick_time, t0, w0, tf, slot_limit
                )
                if status == _DONE:
                    return
                if status == _ADVANCED:
                    continue
                if status == _DEGENERATE:
                    # Forecast after the scalar pass settles this tick's
                    # state (the drained heap and arrival cursor are what
                    # the projection reads).
                    self._forecast_pending = True
                break
        self._process_scalar(tick_time, t0, w0, tf, slot_limit)
        if self._forecast_pending:
            self._forecast_pending = False
            self._scalar_until = self._forecast_scalar_band(
                tick_time, t0, w0, tf, slot_limit
            )

    def _process_scalar(
        self, tick_time: float, t0: float, w0: float, tf: float, slot_limit: int
    ) -> None:
        """Finish the tick with the reference loop on the drained heap.

        Identical event-for-event to :class:`_ReferenceCore` (plus the
        bulk-queue stretch, which queues exactly the arrivals the scalar
        loop would), so the logged transition multiset is unchanged.
        """
        store = self.store
        store.drain_to_pending()
        heap = store._pending
        # Python-list occupancy: the loop does per-event scalar reads and
        # writes, where list indexing beats NumPy scalar indexing by ~2x.
        busy = self.busy.tolist()
        log = self.log
        balancer = self.balancer
        arr_times = self.arr_times_list
        arr_services = self.arr_services_list
        while True:
            t_a = (
                arr_times[self.i] if self.i < self.n_arrivals else np.inf
            )
            if heap:
                t_c = t0 + (heap[0][0] - w0) / tf
                if t_c < t0:
                    t_c = t0
            else:
                t_c = np.inf
            if t_c <= t_a:
                if t_c >= tick_time:
                    break
                w_c, server, service = heapq.heappop(heap)
                busy[server] -= 1
                if busy[server] < 0:
                    raise SimulationError("negative slot occupancy")
                log.add(t_c, server, -1, service)
                self.events += 1
                if self.queue_head < len(self.queue):
                    index = balancer.choose(busy, slot_limit)
                    if index is not None:
                        q_service = self.queue[self.queue_head]
                        self.queue_head += 1
                        busy[index] += 1
                        heapq.heappush(
                            heap, (w_c + q_service, index, q_service)
                        )
                        log.add(t_c, index, +1, q_service)
                        self._compact_queue()
            else:
                if t_a >= tick_time:
                    break
                service = arr_services[self.i]
                self.i += 1
                self.events += 1
                index = balancer.choose(busy, slot_limit)
                if index is None:
                    self.queue.append(service)
                    self._note_queue_depth()
                    # Cluster full, and it stays full until the next
                    # completion (no dispatches can change ``busy``): the
                    # whole stretch of arrivals up to it queues in bulk.
                    limit = t_c if t_c < tick_time else tick_time
                    hi = int(np.searchsorted(
                        self.arr_times, limit, side="left"
                    ))
                    if hi > self.i:
                        self.queue.extend(arr_services[self.i:hi])
                        self.events += hi - self.i
                        self.i = hi
                        self._note_queue_depth()
                else:
                    w_a = w0 + (t_a - t0) * tf
                    busy[index] += 1
                    heapq.heappush(heap, (w_a + service, index, service))
                    log.add(t_a, index, +1, service)
        self.busy[:] = busy

    # -- scalar-band forecast ------------------------------------------------

    def _forecast_scalar_band(
        self, tick_time: float, t0: float, w0: float, tf: float, slot_limit: int
    ) -> float:
        """Real time until which the conflict-dense band is projected to last.

        Runs right after a degenerate tick finished scalar, when
        :meth:`_process_scalar` has drained every live completion into
        the pending heap. One segmented pass projects slot occupancy at
        the next ``_BAND_TICKS`` tick edges:

        * cumulative arrivals per edge — ``searchsorted`` over the
          remaining arrival stream;
        * cumulative departures per edge — the drained heap's work times
          mapped through the current anchor, merged with the first-pass
          completions the future arrivals themselves would post
          (``t_a + service / tf``);
        * occupancy = current busy slots + arrivals − departures.

        The returned bound is the first edge back below the
        ``_VECTOR_OCCUPANCY`` gate (the run length of the above-gate
        band), so the whole band runs scalar with zero per-tick probe
        overhead and the probe resumes exactly when the regime is
        projected to flip. The projection ignores queueing and future
        DVFS changes — it is a scheduling heuristic only; results stay
        byte-identical whatever it predicts.
        """
        dt = tick_time - t0
        if dt <= 0.0 or _BAND_TICKS <= 0:
            return tick_time
        edges = tick_time + dt * np.arange(1, _BAND_TICKS + 1)
        lo = self.i
        hi = int(np.searchsorted(self.arr_times, float(edges[-1]), side="right"))
        arrivals = np.searchsorted(self.arr_times[lo:hi], edges, side="right")
        parts = []
        pending_w = self.store.pending_work_times()
        if len(pending_w):
            t_pending = t0 + (pending_w - w0) / tf
            parts.append(t_pending)
        if hi > lo:
            parts.append(
                self.arr_times[lo:hi] + self.arr_services[lo:hi] / tf
            )
        if parts:
            departures_at = np.sort(np.concatenate(parts))
            departures = np.searchsorted(departures_at, edges, side="right")
        else:
            departures = np.zeros(len(edges), dtype=np.int64)
        occupancy = int(self.busy.sum()) + arrivals - departures
        above = occupancy >= _VECTOR_OCCUPANCY * len(self.busy) * slot_limit
        if above.all():
            band = _BAND_TICKS
        else:
            band = int(np.argmin(above))
        self.forecast_bands += 1
        self.forecast_band_ticks += band
        return tick_time + band * dt

    # -- chunk fast path -----------------------------------------------------

    def _try_chunk(
        self,
        tick_time: float,
        t0: float,
        w0: float,
        tf: float,
        slot_limit: int,
    ) -> int:
        """Process the whole tick in one vectorized, spawn-inclusive pass.

        The tick's fixed costs (arrival search, store pop and sort, work
        maps) are paid once; completions *spawned inside the tick* join
        the conflict replay as first-class events, so the pass is never
        cut short by a fast job. Dispatch conflicts and transient
        saturation are resolved in an inner *segment* loop that only
        redoes ``choose_many`` plus the occupancy replay.

        Preconditions: the FIFO queue is empty and the balancer is plain
        round-robin (the caller gates both). See the class docstring for
        the validity argument.
        """
        i = self.i
        hi = int(np.searchsorted(self.arr_times, tick_time, side="left"))
        m = hi - i
        busy = self.busy
        store = self.store
        if m == 0 or m < _VECTOR_MIN:
            # Cheap emptiness probe before the vectorized pop.
            head = store.peek()
            if head is not None:
                t_head = t0 + (head[0] - w0) / tf
                if t_head < t0:
                    t_head = t0
            if head is None or t_head >= tick_time:
                return _DONE if m == 0 else _SMALL
            if m:
                return _SMALL
            w_pop, s_pop, v_pop = store.pop_runs_until(
                t0, w0, tf, tick_time, inclusive=False
            )
            # Pure completion drain: with an empty queue these trigger no
            # dispatch decisions, so they are valid for any balancer.
            t_pop = t0 + (w_pop - w0) / tf
            np.maximum(t_pop, t0, out=t_pop)
            np.subtract.at(busy, s_pop, 1)
            if busy.min() < 0:
                raise SimulationError("negative slot occupancy")
            self.log.add_batch(t_pop, s_pop, -1, v_pop)
            self.events += len(w_pop)
            return _ADVANCED

        t_run = self.arr_times[i:hi]
        v_run = self.arr_services[i:hi]
        w_run = w0 + (t_run - t0) * tf
        w_done = w_run + v_run
        # Completion times the span's own jobs would post (same float
        # expression as the scalar engines, so commit decisions and log
        # entries match bit-for-bit).
        t_sp = t0 + (w_done - w0) / tf
        np.maximum(t_sp, t0, out=t_sp)
        in_window = t_sp < tick_time

        head = store.peek()
        if head is not None:
            t_head = t0 + (head[0] - w0) / tf
            if t_head < t0:
                t_head = t0
        if head is None or t_head >= tick_time:
            w_pop = _EMPTY_F
            s_pop = _EMPTY_I
            v_pop = _EMPTY_F
        else:
            w_pop, s_pop, v_pop = store.pop_runs_until(
                t0, w0, tf, tick_time, inclusive=False
            )
        k = len(w_pop)
        if k:
            # Sort pops once by work time so segment cuts can use
            # ``searchsorted`` (the log and the store re-sort anyway).
            order = np.lexsort((v_pop, s_pop, w_pop))
            w_pop = w_pop[order]
            s_pop = s_pop[order]
            v_pop = v_pop[order]
            t_pop = t0 + (w_pop - w0) / tf
            np.maximum(t_pop, t0, out=t_pop)
        else:
            t_pop = _EMPTY_F

        balancer = self.balancer
        n = len(busy)
        t_last = float(t_run[-1])
        assigned = np.empty(m, dtype=np.int64)
        a = 0   # committed arrivals
        p = 0   # committed store pops
        nc = 0  # committed in-tick spawned completions
        # Spawned completions of committed arrivals still pending inside
        # the tick window (exact servers), and the log/store backlog of
        # spawn commits and out-of-window spawns.
        pend_t = _EMPTY_F
        pend_s = _EMPTY_I
        pend_v = _EMPTY_F
        pend_w = _EMPTY_F
        done_t: list[np.ndarray] = []
        done_s: list[np.ndarray] = []
        done_v: list[np.ndarray] = []
        out_w: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        out_v: list[np.ndarray] = []
        segments = 0
        degenerate = False
        while a < m:
            if segments >= _SEG_LIMIT:
                # Each segment redeals and replays everything left, so a
                # conflict-dense tick would go quadratic here; past the
                # cap the scalar engine finishes the tick from the
                # committed prefix (and holds if this keeps happening).
                degenerate = True
                break
            segments += 1
            committed_before = a + p + nc
            saved_next = balancer._next
            servers = balancer.choose_many(busy, slot_limit, m - a)
            m_av = len(servers)
            # Transient saturation is just another cut: arrivals past the
            # dealt prefix wait for a completion, which the segment loop
            # replays exactly (a truly full cluster makes no progress and
            # falls to the scalar engine, which queues).
            t_sat = float(t_run[a + m_av]) if m_av < m - a else np.inf
            # The dealer works against the segment-start occupancy, so a
            # completion inside the span makes its fullness view *stale*:
            # it may skip a server as full that the sequential engine
            # would use. The taint search covers queued pops, pending
            # committed spawns, and the dealt prefix's own spawned
            # completions (tentative servers — extra completions only
            # tighten the cut, never loosen it). Cheap necessary
            # condition first: taint needs a server that both fills
            # (statically) and completes.
            sw = in_window[a : a + m_av]
            c_s = np.concatenate((s_pop[p:], pend_s, servers[sw]))
            t_bad = None
            if len(c_s):
                c_t = np.concatenate((t_pop[p:], pend_t, t_sp[a : a + m_av][sw]))
                counts = np.bincount(servers, minlength=n)
                if np.any(busy[c_s] + counts[c_s] >= slot_limit):
                    t_bad = self._earliest_taint(
                        servers, t_run[a : a + m_av], c_s, c_t, slot_limit
                    )
            # A conflict only matters if an arrival still follows it
            # (completions win ties, so `<=`): fullness changes can only
            # affect later *dispatch* decisions.
            cut = t_sat
            if t_bad is not None and t_bad < cut:
                cut = t_bad
            if cut > t_last:
                # Conflict-free to the last arrival: commit everything.
                np.add.at(busy, servers, 1)
                assigned[a:] = servers
                np.subtract.at(busy, s_pop[p:], 1)
                if len(pend_t):
                    np.subtract.at(busy, pend_s, 1)
                    done_t.append(pend_t)
                    done_s.append(pend_s)
                    done_v.append(pend_v)
                    nc += len(pend_t)
                    pend_t = _EMPTY_F
                    pend_s = _EMPTY_I
                    pend_v = _EMPTY_F
                    pend_w = _EMPTY_F
                if sw.any():
                    np.subtract.at(busy, servers[sw], 1)
                    done_t.append(t_sp[a:][sw])
                    done_s.append(servers[sw])
                    done_v.append(v_run[a:][sw])
                    nc += int(sw.sum())
                ow = ~sw
                if ow.any():
                    out_w.append(w_done[a:][ow])
                    out_s.append(servers[ow])
                    out_v.append(v_run[a:][ow])
                a = m
                p = k
                break
            # Commit the conflict-free arrival prefix ``[.., cut)`` plus
            # every completion up to the first uncommitted arrival: those
            # follow all committed arrivals, so they are decision-free
            # trailing drains (including the conflicting one — its
            # fullness effect lands in ``busy`` before the next segment's
            # ``choose_many``). Round-robin dealing is prefix-consistent,
            # so ``servers[:m2]`` is exactly the reduced dispatch.
            m2 = int(np.searchsorted(t_run[a : a + m_av], cut, side="left"))
            t_cut = float(t_run[a + m2])
            p2 = int(np.searchsorted(t_pop[p:], t_cut, side="right"))
            if m2:
                seg = servers[:m2]
                np.add.at(busy, seg, 1)
                assigned[a : a + m2] = seg
                balancer._next = int((seg[-1] + 1) % n)
                # Route the committed prefix's spawns: completions due by
                # the cut commit now, later in-tick ones join the pending
                # set, the rest go back to the store at the end.
                sw2 = in_window[a : a + m2]
                new_t = t_sp[a : a + m2][sw2]
                if len(new_t):
                    new_s = seg[sw2]
                    new_v = v_run[a : a + m2][sw2]
                    new_w = w_done[a : a + m2][sw2]
                    early = new_t <= t_cut
                    if early.any():
                        np.subtract.at(busy, new_s[early], 1)
                        done_t.append(new_t[early])
                        done_s.append(new_s[early])
                        done_v.append(new_v[early])
                        nc += int(early.sum())
                        late = ~early
                        new_t = new_t[late]
                        new_s = new_s[late]
                        new_v = new_v[late]
                        new_w = new_w[late]
                    if len(new_t):
                        pend_t = np.concatenate((pend_t, new_t))
                        pend_s = np.concatenate((pend_s, new_s))
                        pend_v = np.concatenate((pend_v, new_v))
                        pend_w = np.concatenate((pend_w, new_w))
                ow2 = ~sw2
                if ow2.any():
                    out_w.append(w_done[a : a + m2][ow2])
                    out_s.append(seg[ow2])
                    out_v.append(v_run[a : a + m2][ow2])
            else:
                balancer._next = saved_next
            np.subtract.at(busy, s_pop[p : p + p2], 1)
            if len(pend_t):
                mc = pend_t <= t_cut
                if mc.any():
                    np.subtract.at(busy, pend_s[mc], 1)
                    done_t.append(pend_t[mc])
                    done_s.append(pend_s[mc])
                    done_v.append(pend_v[mc])
                    nc += int(mc.sum())
                    keep = ~mc
                    pend_t = pend_t[keep]
                    pend_s = pend_s[keep]
                    pend_v = pend_v[keep]
                    pend_w = pend_w[keep]
            a += m2
            p += p2
            if a + p + nc == committed_before:
                # Full cluster with nothing completing before the stalled
                # arrival: the sequential engine queues here, which is the
                # scalar path's job.
                break

        if a:
            self.log.add_batch(t_run[:a], assigned[:a], +1, v_run[:a])
        if p:
            self.log.add_batch(t_pop[:p], s_pop[:p], -1, v_pop[:p])
        if nc:
            self.log.add_batch(
                np.concatenate(done_t),
                np.concatenate(done_s),
                -1,
                np.concatenate(done_v),
            )
        if (p or nc) and busy.min() < 0:
            raise SimulationError("negative slot occupancy")
        if out_w:
            store.push_batch(
                np.concatenate(out_w),
                np.concatenate(out_s),
                np.concatenate(out_v),
            )
        if len(pend_w):
            store.push_batch(pend_w, pend_s, pend_v)
        if p < k:
            store.push_batch(w_pop[p:], s_pop[p:], v_pop[p:])
        self.events += a + p + nc
        self.i = i + a
        if degenerate:
            return _DEGENERATE
        return _ADVANCED if (a or p or nc) else _FAILED

    def _earliest_taint(
        self,
        servers: np.ndarray,
        t_run: np.ndarray,
        s_pop: np.ndarray,
        t_pop: np.ndarray,
        slot_limit: int,
    ) -> float | None:
        """Earliest time a dispatch decision could see stale fullness.

        The dealer's occupancy view (``busy`` + its own dealt arrivals)
        never *undercounts* the sequential engine's — completions only
        lower true occupancy — so a dealt choice can only diverge by
        *skipping* a server the dealer believes full while a completion
        has actually freed a slot. A decision at ``t_j`` is therefore
        tainted iff some server is statically full before ``t_j``
        (``t_fill``: the dealt arrival that brings it to the slot limit,
        or the segment start for servers already full) *and* has a
        completion at or before ``t_j`` (``t_comp``; completions win
        ties). The earliest possible taint is
        ``min_s max(t_fill(s), t_comp(s))`` — every decision strictly
        before it is provably identical to sequential dispatch. This
        bound also subsumes the full→non-full transition check: a
        completion leaving a truly full server at ``t_c`` has both
        ``t_fill <= t_c`` and ``t_comp <= t_c``.
        """
        busy = self.busy
        n = len(busy)
        t_comp = np.full(n, np.inf)
        np.minimum.at(t_comp, s_pop, t_pop)
        t_fill = np.full(n, np.inf)
        t_fill[busy >= slot_limit] = -np.inf
        if len(servers):
            order = np.argsort(servers, kind="stable")
            ss = servers[order]
            starts = np.empty(len(ss), dtype=bool)
            starts[0] = True
            starts[1:] = ss[1:] != ss[:-1]
            seg_start = np.flatnonzero(starts)
            seg_sv = ss[seg_start]
            seg_len = np.diff(np.append(seg_start, len(ss)))
            # 0-based rank of the dealt arrival that fills each server.
            rank = slot_limit - busy[seg_sv] - 1
            ok = (rank >= 0) & (rank < seg_len)
            fill_idx = order[seg_start[ok] + rank[ok]]
            t_fill[seg_sv[ok]] = t_run[fill_idx]
        t_bad = float(np.maximum(t_fill, t_comp).min())
        return None if t_bad == np.inf else t_bad

# ---------------------------------------------------------------------------
# Shared tick loop
# ---------------------------------------------------------------------------


def run_event_mode(sim):
    """Run the event-mode simulation of a :class:`DatacenterSimulator`.

    The per-tick machinery (fault hooks, policy decision, thermal step,
    recording) lives here once, shared by both engines; only intra-tick
    event processing is delegated to the engine core selected by
    ``sim.config.engine``.
    """
    from repro.dcsim.simulator import _Recorder

    config = sim.config
    n_servers = sim.topology.server_count
    slots = config.slots_per_server
    dt = config.tick_interval_s
    nominal = sim.power_model.nominal_frequency_ghz

    if sim._arrivals is not None:
        stream = coerce_arrival_stream(sim._arrivals)
    else:
        stream = cached_arrival_stream(
            sim.trace,
            server_count=n_servers,
            slots_per_server=slots,
            seed=config.seed,
        )

    state = sim._make_state()
    sim.initial_specific_enthalpy_j_per_kg = np.array(
        state.specific_enthalpy_j_per_kg, copy=True
    )
    sim.load_balancer.reset()
    injector = sim.fault_injector
    ticks = sim._tick_times()

    core_cls = _BatchedCore if config.engine == "batched" else _ReferenceCore
    core = core_cls(
        stream.times_s, stream.service_s, n_servers, sim.load_balancer
    )

    # Anchored work clock (see module docstring).
    t0 = 0.0
    w0 = 0.0
    tf = 1.0
    frequency = nominal
    slot_limit = slots
    throttle_ticks = 0
    records = _Recorder(len(ticks), n_servers)
    # Per-tick control hook, mirroring the fluid engine: policies that
    # implement begin_tick receive the simulation clock before deciding.
    begin_tick = getattr(sim.policy, "begin_tick", None)
    start = _time.perf_counter()

    for tick_index, tick_time in enumerate(ticks):
        if injector is not None:
            # Faults resolve at tick granularity: effects at this tick's
            # end apply to dispatch within the tick window.
            injector.advance_to(tick_time, room=sim.room)
            sim.load_balancer.set_offline(injector.offline_count(n_servers))

        busy_start = core.busy.copy()
        core.process_until(tick_time, t0, w0, tf, slot_limit)
        busy_time, completed = core.log.finalize(
            tick_time, tick_time - t0, busy_start
        )
        if completed:
            records.add_completed(tick_index, completed)
        w0 = w0 + (tick_time - t0) * tf
        t0 = tick_time

        utilization = busy_time / (dt * slots)
        sim._pre_tick(state)
        if injector is not None:
            injector.apply_state(state, base_inlet_c=sim._base_inlet_c())
        # Offered work rate this tick: busy fraction times the current
        # per-slot service rate.
        work_rate = utilization * tf
        if injector is not None:
            work_rate = injector.observe(work_rate)
        if begin_tick is not None:
            begin_tick(tick_time, dt)
        decision = sim.policy.decide(state, work_rate)
        if injector is not None:
            decision = injector.constrain(decision)
        if decision.limited:
            throttle_ticks += 1
        frequency = decision.frequency_ghz
        tf = sim.power_model.throughput_factor(frequency)
        if decision.utilization_cap < 1.0:
            slot_limit = max(
                0, int(np.floor(decision.utilization_cap * slots + 1e-9))
            )
        else:
            slot_limit = slots

        power, release, wax = state.step(dt, np.clip(utilization, 0, 1), frequency)
        room_temp = sim._post_tick(float(np.sum(release)), dt)
        demand = float(np.clip(sim.trace.value_at(tick_time - 0.5 * dt), 0, 1))
        records.store(
            tick_index,
            time_s=tick_time,
            demand=demand,
            utilization=float(np.mean(utilization)),
            frequency=frequency,
            power=float(np.sum(power)),
            release=float(np.sum(release)),
            wax=float(np.sum(wax)),
            melt=float(np.mean(state.melt_fraction)),
            # Work is credited continuously (busy slots x DVFS rate);
            # discrete completions are recorded separately as a
            # conservation cross-check.
            throughput=float(np.mean(np.clip(utilization, 0, 1))) * tf,
            queue=float(core.queue_depth()),
            # Event mode queues saturated work rather than shedding it.
            shed=0.0,
            room=room_temp,
        )

    elapsed = _time.perf_counter() - start
    obs = get_registry()
    if obs.enabled:
        obs.count("dcsim.events", core.events)
        obs.count(f"dcsim.engine.{config.engine}")
        bands = getattr(core, "forecast_bands", 0)
        if bands:
            obs.count("dcsim.engine.forecast_bands", bands)
            obs.count(
                "dcsim.engine.forecast_band_ticks", core.forecast_band_ticks
            )
        obs.count("dcsim.throttle_ticks", throttle_ticks)
        obs.record_max("dcsim.queue_high_water", core.queue_high_water)
        if elapsed > 0:
            obs.record("dcsim.events_per_sec", core.events / elapsed)
    sim.final_state = state
    return records.result(
        n_servers,
        nominal,
        initial_power_w=n_servers * sim.power_model.wall_power_w(0.0),
    )
