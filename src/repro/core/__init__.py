"""Thermal time shifting: the paper's primary contribution.

This package orchestrates the substrates (materials, server thermal
models, DCSim, cooling, TCO) into the paper's two headline studies:

* :class:`~repro.core.scenarios.CoolingLoadStudy` — Section 5.1: a fully
  subscribed datacenter where PCM clips the peak cooling load, enabling a
  smaller plant or more servers;
* :class:`~repro.core.scenarios.ThroughputStudy` — Section 5.2: an
  oversubscribed (thermally constrained) datacenter where PCM sustains
  full clock speed for hours past the point where the baseline must
  downclock.

plus the melting-point selection the paper applies ("selected the melting
temperature to minimize cooling load", Section 5.1) in
:mod:`~repro.core.melting_point`.
"""

from repro.core.melting_point import (
    MeltingPointSearch,
    optimize_melting_point,
)
from repro.core.scenarios import (
    CoolingLoadOutcome,
    CoolingLoadStudy,
    ThroughputArm,
    ThroughputOutcome,
    ThroughputStudy,
)

__all__ = [
    "MeltingPointSearch",
    "optimize_melting_point",
    "CoolingLoadStudy",
    "CoolingLoadOutcome",
    "ThroughputStudy",
    "ThroughputOutcome",
    "ThroughputArm",
]
