"""Melting-temperature selection (paper Section 5.1).

"The range of melting temperature available in commercial grade paraffin
allows us to select one with an optimal melting threshold to reduce the
peak cooling load of each cluster, and the best melting temperature is
determined on the shape and length of the load trace: for the Google
trace, we find that the best wax typically begins to melt when a server
exceeds 75% load."

The search runs the (fast, fluid-mode) cluster simulation across a grid of
candidate melting points and picks the one minimizing the two-day peak
cooling load. The two-day horizon makes the daily-cycle constraint
self-enforcing: wax that cannot refreeze overnight has no capacity left
for day two, so its day-two peak is unclipped and the candidate scores
poorly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.simulator import DatacenterSimulator, SimulationConfig
from repro.dcsim.thermal_coupling import BatchedClusterThermalState
from repro.errors import ConfigurationError
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.materials.pcm import PCMMaterial
from repro.obs import get_registry
from repro.runner.pool import sweep
from repro.server.characterization import PlatformCharacterization
from repro.server.power import ServerPowerModel
from repro.workload.trace import LoadTrace


def _candidate_peak(task: tuple) -> float:
    """Peak cooling load of one candidate melting point (sweep worker).

    ``task`` carries everything a worker process needs:
    ``(characterization, power_model, trace, topology, config,
    melting_point_c)``. The baseline arm ships the wax-disabled config
    with the window-low material, exactly as the serial search did.
    """
    characterization, power_model, trace, topology, config, melt_c = task
    return (
        DatacenterSimulator(
            characterization,
            power_model,
            commercial_paraffin_with_melting_point(float(melt_c)),
            trace,
            topology=topology,
            config=config,
        )
        .run()
        .peak_cooling_load_w
    )


def batched_fluid_peaks(
    characterization: PlatformCharacterization,
    power_model: ServerPowerModel,
    materials: list[PCMMaterial],
    wax_enabled: np.ndarray,
    trace: LoadTrace,
    topology: ClusterTopology,
    config: SimulationConfig,
    backend: str = "auto",
) -> np.ndarray:
    """Peak cooling load per candidate from one batched fluid-mode run.

    Replays the unconstrained fluid tick loop of
    :meth:`DatacenterSimulator._run_fluid` (no policy, no room) with all
    candidates stacked into one :class:`BatchedClusterThermalState`, so
    the whole melting-point grid advances in a single array loop. Each
    member's trajectory — and therefore its peak — is bit-identical to a
    serial simulation of that candidate.
    """
    n_candidates = len(materials)
    n_servers = topology.server_count
    dt = config.tick_interval_s
    n_ticks = int(np.floor(trace.duration_s / dt))
    ticks = (np.arange(n_ticks) + 1) * dt
    state = BatchedClusterThermalState(
        characterization=characterization,
        power_model=power_model,
        material=materials,
        cluster_count=n_candidates,
        server_count=n_servers,
        inlet_temperature_c=config.inlet_temperature_c,
        initial_utilization=float(np.clip(trace.value_at(0.0), 0.0, 1.0)),
        wax_enabled=wax_enabled,
        backend=backend,
    )
    nominal = power_model.nominal_frequency_ghz
    tf = power_model.throughput_factor(nominal)
    peaks = np.full(n_candidates, -np.inf)
    utilization = np.empty((n_candidates, n_servers))
    for t in ticks:
        demand = float(np.clip(trace.value_at(t - 0.5 * dt), 0.0, 1.0))
        utilization[:] = np.minimum(demand / tf, 1.0)
        _power, release, _wax = state.step(dt, utilization, nominal)
        np.maximum(peaks, np.sum(release, axis=1), out=peaks)
    obs = get_registry()
    if obs.enabled:
        obs.count("dcsim.batched_runs")
        obs.count("dcsim.batched_members", n_candidates)
        obs.count("dcsim.ticks", n_ticks)
        obs.count("dcsim.server_ticks", n_ticks * n_candidates * n_servers)
    return peaks


@dataclass(frozen=True)
class MeltingPointSearch:
    """Result of a melting-point grid search."""

    candidates_c: np.ndarray
    peak_cooling_w: np.ndarray
    baseline_peak_w: float
    best_melting_point_c: float

    @property
    def best_peak_w(self) -> float:
        """Peak cooling load at the winning melting point."""
        return float(np.min(self.peak_cooling_w))

    @property
    def best_reduction_fraction(self) -> float:
        """Fractional peak reduction at the winning melting point."""
        return 1.0 - self.best_peak_w / self.baseline_peak_w


def optimize_melting_point(
    characterization: PlatformCharacterization,
    power_model: ServerPowerModel,
    trace: LoadTrace,
    topology: ClusterTopology | None = None,
    window_c: tuple[float, float] = (36.0, 60.0),
    step_c: float = 0.5,
    config: SimulationConfig | None = None,
    jobs: int = 1,
) -> MeltingPointSearch:
    """Grid-search the wax melting point minimizing peak cooling load.

    Parameters
    ----------
    window_c:
        Candidate melting points (the commercial-paraffin market offers
        roughly 40-60 degC; 36-40 covers measured off-spec blends like the
        paper's 39 degC purchase).
    step_c:
        Grid resolution.
    config:
        Simulation configuration; defaults to fluid mode (the search runs
        dozens of two-day simulations).
    jobs:
        Worker processes for the candidate grid in event mode. Fluid
        mode ignores it: the whole grid (and the wax-disabled baseline)
        advances as one :func:`batched_fluid_peaks` run, bit-identical
        to a serial search.
    """
    low, high = window_c
    if not low < high:
        raise ConfigurationError(f"melting window is inverted: [{low}, {high}]")
    if step_c <= 0:
        raise ConfigurationError(f"grid step must be positive, got {step_c}")
    topology = topology or ClusterTopology()
    config = config or SimulationConfig(mode="fluid")
    if not config.wax_enabled:
        raise ConfigurationError("melting-point search needs wax enabled")

    baseline_config = SimulationConfig(
        mode=config.mode,
        tick_interval_s=config.tick_interval_s,
        slots_per_server=config.slots_per_server,
        inlet_temperature_c=config.inlet_temperature_c,
        wax_enabled=False,
        seed=config.seed,
    )
    candidates = np.arange(low, high + 0.5 * step_c, step_c)
    if config.mode == "fluid":
        # The unconstrained fluid loop vectorizes: one batched run covers
        # the wax-disabled baseline (member 0) plus every candidate.
        materials = [commercial_paraffin_with_melting_point(float(low))]
        materials.extend(
            commercial_paraffin_with_melting_point(float(melt_c))
            for melt_c in candidates
        )
        wax_enabled = np.ones(len(materials), dtype=bool)
        wax_enabled[0] = False
        all_peaks = batched_fluid_peaks(
            characterization,
            power_model,
            materials,
            wax_enabled,
            trace,
            topology,
            config,
        )
    else:
        tasks = [
            (characterization, power_model, trace, topology, baseline_config, low)
        ]
        tasks.extend(
            (characterization, power_model, trace, topology, config, float(melt_c))
            for melt_c in candidates
        )
        all_peaks = sweep(
            _candidate_peak, tasks, jobs=jobs, label="runner.melting_point"
        )
    baseline_peak = float(all_peaks[0])
    peaks = np.asarray(all_peaks[1:], dtype=float)

    best_index = int(np.argmin(peaks))
    return MeltingPointSearch(
        candidates_c=candidates,
        peak_cooling_w=peaks,
        baseline_peak_w=baseline_peak,
        best_melting_point_c=float(candidates[best_index]),
    )
