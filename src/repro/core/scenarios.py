"""The paper's two evaluation scenarios (Sections 5.1 and 5.2).

Both studies own the full pipeline for one platform: characterize the
chassis (once), run the baseline and PCM cluster simulations over the
workload trace, and reduce the traces to the numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cooling.load import CoolingLoadSeries, PeakComparison, compare_peaks
from repro.cooling.provisioning import (
    ProvisioningGain,
    added_servers_under_same_plant,
)
from repro.core.melting_point import MeltingPointSearch, optimize_melting_point
from repro.dcsim.cluster import ClusterTopology
from repro.dcsim.simulator import (
    DatacenterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.dcsim.room import RoomModel
from repro.dcsim.throttling import RoomTemperaturePolicy
from repro.errors import ConfigurationError
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.materials.pcm import PCMMaterial
from repro.runner.pool import sweep
from repro.server.characterization import (
    PlatformCharacterization,
    characterize_platform,
)
from repro.server.configs import PlatformSpec
from repro.workload.trace import LoadTrace


def _simulate_arm(task: tuple) -> SimulationResult:
    """One cluster simulation (sweep worker for study arms).

    ``task`` is ``(characterization, power_model, material, trace,
    topology, config)`` — everything a worker process needs, all plain
    picklable dataclasses.
    """
    characterization, power_model, material, trace, topology, config = task
    return DatacenterSimulator(
        characterization,
        power_model,
        material,
        trace,
        topology=topology,
        config=config,
    ).run()


def _simulate_constrained_arm(task: tuple) -> SimulationResult:
    """One capacity-limited arm of the throughput study (sweep worker).

    The room model is constructed inside the worker so each arm gets a
    fresh instance whether the sweep runs in-process or in a pool.
    """
    (
        characterization,
        power_model,
        material,
        trace,
        topology,
        config,
        capacity_w,
    ) = task
    room = RoomModel.sized_for_cluster(capacity_w, topology.server_count)
    return DatacenterSimulator(
        characterization,
        power_model,
        material,
        trace,
        topology=topology,
        policy=RoomTemperaturePolicy(room),
        room=room,
        config=config,
    ).run()

#: Characterizations are pure functions of the platform geometry; cache
#: them so sweeps across materials and scenarios pay the detailed-model
#: cost once per platform. The key covers the wax geometry as well as the
#: name — layout variants of the same platform (e.g. the insert-swap vs
#: reconfigured Open Compute blades) characterize differently.
_CHARACTERIZATION_CACHE: dict[tuple, PlatformCharacterization] = {}


def _characterization_key(spec: PlatformSpec) -> tuple:
    loadout = spec.wax_loadout
    if loadout is None:
        return (spec.name, None)
    return (
        spec.name,
        len(loadout.boxes),
        round(loadout.total_volume_m3, 9),
        round(loadout.total_conductance_w_per_k(), 9),
        round(loadout.blockage_fraction, 9),
    )


def cached_characterization(spec: PlatformSpec) -> PlatformCharacterization:
    """Characterize a platform, memoized by name and wax geometry."""
    key = _characterization_key(spec)
    if key not in _CHARACTERIZATION_CACHE:
        _CHARACTERIZATION_CACHE[key] = characterize_platform(spec)
    return _CHARACTERIZATION_CACHE[key]


def clear_characterization_cache() -> None:
    """Drop memoized characterizations (tests use this for isolation)."""
    _CHARACTERIZATION_CACHE.clear()


# ---------------------------------------------------------------------------
# Section 5.1: PCM to reduce cooling load
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoolingLoadOutcome:
    """Everything Figure 11 and the Section 5.1 text report for one
    platform."""

    platform_name: str
    baseline: SimulationResult
    with_pcm: SimulationResult
    comparison: PeakComparison
    provisioning: ProvisioningGain
    melting_point_search: MeltingPointSearch | None
    material: PCMMaterial

    @property
    def peak_reduction_fraction(self) -> float:
        """Fractional peak cooling-load reduction."""
        return self.comparison.peak_reduction_fraction

    def baseline_series(self) -> CoolingLoadSeries:
        """Baseline cluster cooling load series."""
        return CoolingLoadSeries.from_simulation(self.baseline, "Cooling Load")

    def pcm_series(self) -> CoolingLoadSeries:
        """PCM cluster cooling load series."""
        return CoolingLoadSeries.from_simulation(self.with_pcm, "Load with PCM")


class CoolingLoadStudy:
    """Fully subscribed datacenter: how much does PCM clip the peak?

    Parameters
    ----------
    spec:
        The platform to study.
    trace:
        Cluster load trace (the paper's two-day Google trace).
    topology:
        Cluster shape; defaults to the paper's 1008 servers.
    optimize_melting:
        Search the commercial melting-point window for the load-minimizing
        blend (the paper's procedure). When false, uses the spec's
        configured material as-is.
    config:
        Simulation configuration (fluid mode by default).
    jobs:
        Worker processes for the study's independent simulations (the
        melting-point grid and the baseline/PCM pair); ``1`` runs
        everything serially in-process.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        trace: LoadTrace,
        topology: ClusterTopology | None = None,
        optimize_melting: bool = True,
        melting_window_c: tuple[float, float] = (36.0, 60.0),
        melting_step_c: float = 0.5,
        config: SimulationConfig | None = None,
        jobs: int = 1,
    ) -> None:
        if spec.wax_loadout is None:
            raise ConfigurationError(
                f"{spec.name}: cooling-load study needs a wax loadout"
            )
        self.spec = spec
        self.trace = trace
        self.topology = topology or ClusterTopology(
            server_count=1008, servers_per_rack=spec.servers_per_rack
        )
        self.optimize_melting = optimize_melting
        self.melting_window_c = melting_window_c
        self.melting_step_c = melting_step_c
        self.config = config or SimulationConfig(mode="fluid")
        self.jobs = jobs

    def _config(self, wax_enabled: bool) -> SimulationConfig:
        base = self.config
        return SimulationConfig(
            mode=base.mode,
            tick_interval_s=base.tick_interval_s,
            slots_per_server=base.slots_per_server,
            inlet_temperature_c=base.inlet_temperature_c,
            wax_enabled=wax_enabled,
            seed=base.seed,
        )

    def run(self) -> CoolingLoadOutcome:
        """Run baseline + optimized-PCM simulations and reduce the traces."""
        characterization = cached_characterization(self.spec)
        power_model = self.spec.power_model

        search: MeltingPointSearch | None = None
        if self.optimize_melting:
            search = optimize_melting_point(
                characterization,
                power_model,
                self.trace,
                topology=self.topology,
                window_c=self.melting_window_c,
                step_c=self.melting_step_c,
                config=self._config(wax_enabled=True),
                jobs=self.jobs,
            )
            material = commercial_paraffin_with_melting_point(
                search.best_melting_point_c
            )
        else:
            material = self.spec.wax_loadout.material

        baseline, with_pcm = sweep(
            _simulate_arm,
            [
                (
                    characterization,
                    power_model,
                    material,
                    self.trace,
                    self.topology,
                    self._config(wax_enabled),
                )
                for wax_enabled in (False, True)
            ],
            jobs=self.jobs,
            label="runner.cooling_load_arms",
        )
        comparison = compare_peaks(
            CoolingLoadSeries.from_simulation(baseline),
            CoolingLoadSeries.from_simulation(with_pcm),
        )
        provisioning = added_servers_under_same_plant(
            comparison, self.topology.server_count
        )
        return CoolingLoadOutcome(
            platform_name=self.spec.name,
            baseline=baseline,
            with_pcm=with_pcm,
            comparison=comparison,
            provisioning=provisioning,
            melting_point_search=search,
            material=material,
        )


# ---------------------------------------------------------------------------
# Section 5.2: PCM to increase throughput
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputArm:
    """One curve of Figure 12 (ideal / no wax / with wax)."""

    label: str
    result: SimulationResult
    #: Throughput normalized to the no-wax (throttled) peak.
    normalized_throughput: np.ndarray

    @property
    def peak_normalized_throughput(self) -> float:
        """Peak of the normalized curve."""
        return float(np.max(self.normalized_throughput))

    def first_throttle_time_s(self) -> float | None:
        """First tick at which the arm ran below nominal frequency."""
        mask = self.result.throttled_mask()
        if not np.any(mask):
            return None
        return float(self.result.times_s[int(np.argmax(mask))])


@dataclass(frozen=True)
class ThroughputOutcome:
    """Everything Figure 12 reports for one platform."""

    platform_name: str
    ideal: ThroughputArm
    no_wax: ThroughputArm
    with_wax: ThroughputArm
    cooling_capacity_w: float

    @property
    def peak_throughput_gain(self) -> float:
        """Fractional peak-throughput increase from PCM (the paper's
        33% / 69% / 34%)."""
        return (
            self.with_wax.peak_normalized_throughput
            / self.no_wax.peak_normalized_throughput
            - 1.0
        )

    @property
    def elevated_hours(self) -> float:
        """Hours the PCM cluster ran above the no-wax ceiling (the paper's
        "33% over 5.1 hours" duration)."""
        result = self.with_wax.result
        dt = np.diff(result.times_s, prepend=0.0)
        elevated = self.with_wax.normalized_throughput > 1.0 + 1e-3
        return float(np.sum(dt[elevated])) / 3600.0

    @property
    def thermal_limit_delay_hours(self) -> float:
        """Hours by which PCM postpones the first downclock."""
        base = self.no_wax.first_throttle_time_s()
        pcm = self.with_wax.first_throttle_time_s()
        if base is None:
            return 0.0
        if pcm is None:
            # The wax carried the whole horizon without throttling.
            return (self.no_wax.result.times_s[-1] - base) / 3600.0
        return (pcm - base) / 3600.0


class ThroughputStudy:
    """Oversubscribed datacenter: how long can PCM hold full clocks?

    Parameters
    ----------
    oversubscription:
        Cooling capacity as a fraction of the baseline (no-wax, nominal
        frequency) peak cooling load. Below 1.0 the plant cannot cover
        peak demand and the thermal-limit policy must intervene.
    material:
        Wax blend; defaults to the platform's configured material.
    jobs:
        Worker processes for the two constrained arms (they share the
        ideal arm's capacity but are independent of each other).
    """

    def __init__(
        self,
        spec: PlatformSpec,
        trace: LoadTrace,
        oversubscription: float = 0.9,
        topology: ClusterTopology | None = None,
        material: PCMMaterial | None = None,
        config: SimulationConfig | None = None,
        jobs: int = 1,
    ) -> None:
        if spec.wax_loadout is None:
            raise ConfigurationError(
                f"{spec.name}: throughput study needs a wax loadout"
            )
        if not 0.0 < oversubscription <= 1.0:
            raise ConfigurationError(
                f"oversubscription must be in (0, 1], got {oversubscription}"
            )
        self.spec = spec
        self.trace = trace
        self.oversubscription = oversubscription
        self.topology = topology or ClusterTopology(
            server_count=1008, servers_per_rack=spec.servers_per_rack
        )
        self.material = material or spec.wax_loadout.material
        self.config = config or SimulationConfig(mode="fluid")
        self.jobs = jobs

    def _config(self, wax_enabled: bool) -> SimulationConfig:
        base = self.config
        return SimulationConfig(
            mode=base.mode,
            tick_interval_s=base.tick_interval_s,
            slots_per_server=base.slots_per_server,
            inlet_temperature_c=base.inlet_temperature_c,
            wax_enabled=wax_enabled,
            seed=base.seed,
        )

    def run(self) -> ThroughputOutcome:
        """Run the three arms of Figure 12 and normalize them.

        Constrained arms run against a capacity-limited room: the cold
        aisle warms when release exceeds the plant capacity, and the
        cluster downclocks when the room reaches its operating limit.
        """
        characterization = cached_characterization(self.spec)
        power_model = self.spec.power_model

        ideal_result = _simulate_arm(
            (
                characterization,
                power_model,
                self.material,
                self.trace,
                self.topology,
                self._config(wax_enabled=False),
            )
        )
        capacity = self.oversubscription * ideal_result.peak_cooling_load_w
        no_wax_result, with_wax_result = sweep(
            _simulate_constrained_arm,
            [
                (
                    characterization,
                    power_model,
                    self.material,
                    self.trace,
                    self.topology,
                    self._config(wax_enabled),
                    capacity,
                )
                for wax_enabled in (False, True)
            ],
            jobs=self.jobs,
            label="runner.throughput_arms",
        )

        # Normalize to the no-wax arm's peak, matching the paper's Figure
        # 12 where the No Wax curve tops out at exactly 1.0 (its peak is
        # the throughput reached just as the thermal limit engages).
        norm = no_wax_result.peak_throughput
        if norm <= 0:
            raise ConfigurationError(
                "baseline arm produced zero throughput; trace or policy broken"
            )

        def arm(label: str, result: SimulationResult) -> ThroughputArm:
            return ThroughputArm(
                label=label,
                result=result,
                normalized_throughput=result.throughput / norm,
            )

        return ThroughputOutcome(
            platform_name=self.spec.name,
            ideal=arm("Ideal", ideal_result),
            no_wax=arm("No Wax", no_wax_result),
            with_wax=arm("With Wax", with_wax_result),
            cooling_capacity_w=capacity,
        )
