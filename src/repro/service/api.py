"""Request/response schema of the simulation service (pure, no I/O).

Every request body is JSON with a ``tenant`` and either one ``spec`` or
a ``sweep`` (a base spec plus variant overrides). Specs are closed,
validated dataclasses — the service never evaluates caller-supplied
code or reaches outside the experiment registry and the platform
builders. Three kinds exist:

``transient``
    One chassis transient (:func:`repro.thermal.solver
    .simulate_transient_batch`): a platform, a constant utilization, a
    wax loadout, a horizon. Structurally-identical requests (same
    platform/wax/horizon grid) coalesce into one batched RK4 solve.
``cluster``
    One cluster tick-loop (:class:`repro.dcsim.thermal_coupling
    .BatchedClusterThermalState`): a platform, server count, melting
    point, utilization, tick grid. Requests sharing a platform, server
    count, and tick length coalesce into one stacked state — each
    member's trajectory is bit-identical to stepping it alone.
``experiment``
    One registered paper experiment by id, deduplicated through the
    exact cache address the CLI uses
    (:func:`repro.experiments.registry.experiment_cache_spec`).

Responses carry payloads in the canonical tagged codec of
:mod:`repro.runner.serialize` (arrays as base64 ``__ndarray__`` tags)
plus a ``fingerprint``: the SHA-256 of the payload's canonical JSON.
Two responses with equal fingerprints are byte-identical results.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar

from repro.errors import ReproError
from repro.runner.serialize import canonical_json

#: Version tag of the service wire schema; breaking changes bump it.
API_SCHEMA = "repro.service/1"

#: Platforms a spec may name (the registry in ``repro.server.configs``).
PLATFORMS = ("1u", "2u", "ocp")

#: Melting points the material blender accepts, degrees C.
MELTING_RANGE_C = (35.0, 62.0)

#: Hard caps keeping one request's work bounded.
MAX_SWEEP_VARIANTS = 256
MAX_TRANSIENT_SAMPLES = 100_000
MAX_CLUSTER_TICKS = 1_000_000
MAX_CLUSTER_SERVERS = 4096
MAX_TENANT_CHARS = 64


class ApiError(ReproError):
    """A request failed validation; ``code`` names the machine-readable
    reason and maps onto the HTTP status the server replies with."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ApiError(message)


def _number(payload: dict, key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(f"{key!r} must be a number, got {value!r}")
    if not math.isfinite(float(value)):
        raise ApiError(f"{key!r} must be finite, got {value!r}")
    return float(value)


def _integer(payload: dict, key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(f"{key!r} must be an integer, got {value!r}")
    return value


def _boolean(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ApiError(f"{key!r} must be a boolean, got {value!r}")
    return value


def _reject_unknown(payload: dict, allowed: set[str], kind: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ApiError(
            f"unknown {kind} spec field(s) {unknown}; allowed: "
            f"{sorted(allowed)}"
        )


@dataclass(frozen=True)
class TransientSpec:
    """One chassis transient simulation request."""

    kind: ClassVar[str] = "transient"

    platform: str = "1u"
    utilization: float = 0.8
    with_wax: bool = True
    melting_point_c: float | None = None
    grille_blockage: float = 0.0
    duration_s: float = 900.0
    output_interval_s: float = 60.0

    def __post_init__(self) -> None:
        _require(
            self.platform in PLATFORMS,
            f"unknown platform {self.platform!r}; choose from "
            f"{list(PLATFORMS)}",
        )
        _require(
            0.0 <= self.utilization <= 1.0,
            f"utilization must lie in [0, 1], got {self.utilization}",
        )
        _require(
            0.0 <= self.grille_blockage <= 0.9,
            f"grille_blockage must lie in [0, 0.9], got "
            f"{self.grille_blockage}",
        )
        if self.melting_point_c is not None:
            low, high = MELTING_RANGE_C
            _require(
                low <= self.melting_point_c <= high,
                f"melting_point_c must lie in [{low}, {high}], got "
                f"{self.melting_point_c}",
            )
            _require(
                self.with_wax,
                "melting_point_c requires with_wax=true",
            )
        _require(
            self.duration_s > 0.0,
            f"duration_s must be positive, got {self.duration_s}",
        )
        _require(
            self.output_interval_s > 0.0,
            f"output_interval_s must be positive, got "
            f"{self.output_interval_s}",
        )
        _require(
            self.duration_s / self.output_interval_s <= MAX_TRANSIENT_SAMPLES,
            f"duration_s / output_interval_s exceeds "
            f"{MAX_TRANSIENT_SAMPLES} output samples",
        )

    @classmethod
    def parse(cls, payload: dict) -> "TransientSpec":
        _reject_unknown(
            payload,
            {
                "kind",
                "platform",
                "utilization",
                "with_wax",
                "melting_point_c",
                "grille_blockage",
                "duration_s",
                "output_interval_s",
            },
            cls.kind,
        )
        platform = payload.get("platform", "1u")
        if not isinstance(platform, str):
            raise ApiError(f"'platform' must be a string, got {platform!r}")
        melting = payload.get("melting_point_c")
        if melting is not None:
            melting = _number(payload, "melting_point_c", 0.0)
        return cls(
            platform=platform.lower(),
            utilization=_number(payload, "utilization", 0.8),
            with_wax=_boolean(payload, "with_wax", True),
            melting_point_c=melting,
            grille_blockage=_number(payload, "grille_blockage", 0.0),
            duration_s=_number(payload, "duration_s", 900.0),
            output_interval_s=_number(payload, "output_interval_s", 60.0),
        )

    def payload(self) -> dict[str, Any]:
        """The spec as a canonical JSON-able dict (includes ``kind``)."""
        return {
            "kind": self.kind,
            "platform": self.platform,
            "utilization": self.utilization,
            "with_wax": self.with_wax,
            "melting_point_c": self.melting_point_c,
            "grille_blockage": self.grille_blockage,
            "duration_s": self.duration_s,
            "output_interval_s": self.output_interval_s,
        }

    def group_key(self) -> str:
        """Coalescing group: requests that may share one batched solve.

        Everything that fixes the network *structure* and the output
        grid is in the key; utilization, melting point, and blockage
        vary per member (they change operator values, not structure).
        """
        return canonical_json(
            {
                "kind": self.kind,
                "platform": self.platform,
                "with_wax": self.with_wax,
                "duration_s": self.duration_s,
                "output_interval_s": self.output_interval_s,
            }
        )

    def cost(self) -> float:
        """Quota tokens one instance of this spec consumes."""
        return 1.0


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster thermal tick-loop request."""

    kind: ClassVar[str] = "cluster"

    platform: str = "1u"
    server_count: int = 96
    melting_point_c: float = 43.0
    utilization: float = 0.7
    inlet_temperature_c: float = 25.0
    wax_enabled: bool = True
    frequency_ghz: float = 2.4
    ticks: int = 60
    tick_s: float = 60.0

    def __post_init__(self) -> None:
        _require(
            self.platform in PLATFORMS,
            f"unknown platform {self.platform!r}; choose from "
            f"{list(PLATFORMS)}",
        )
        _require(
            1 <= self.server_count <= MAX_CLUSTER_SERVERS,
            f"server_count must lie in [1, {MAX_CLUSTER_SERVERS}], got "
            f"{self.server_count}",
        )
        low, high = MELTING_RANGE_C
        _require(
            low <= self.melting_point_c <= high,
            f"melting_point_c must lie in [{low}, {high}], got "
            f"{self.melting_point_c}",
        )
        _require(
            0.0 <= self.utilization <= 1.0,
            f"utilization must lie in [0, 1], got {self.utilization}",
        )
        _require(
            -20.0 <= self.inlet_temperature_c <= 60.0,
            f"inlet_temperature_c must lie in [-20, 60], got "
            f"{self.inlet_temperature_c}",
        )
        _require(
            0.1 <= self.frequency_ghz <= 10.0,
            f"frequency_ghz must lie in [0.1, 10], got "
            f"{self.frequency_ghz}",
        )
        _require(
            1 <= self.ticks <= MAX_CLUSTER_TICKS,
            f"ticks must lie in [1, {MAX_CLUSTER_TICKS}], got {self.ticks}",
        )
        _require(
            self.tick_s > 0.0,
            f"tick_s must be positive, got {self.tick_s}",
        )

    @classmethod
    def parse(cls, payload: dict) -> "ClusterSpec":
        _reject_unknown(
            payload,
            {
                "kind",
                "platform",
                "server_count",
                "melting_point_c",
                "utilization",
                "inlet_temperature_c",
                "wax_enabled",
                "frequency_ghz",
                "ticks",
                "tick_s",
            },
            cls.kind,
        )
        platform = payload.get("platform", "1u")
        if not isinstance(platform, str):
            raise ApiError(f"'platform' must be a string, got {platform!r}")
        return cls(
            platform=platform.lower(),
            server_count=_integer(payload, "server_count", 96),
            melting_point_c=_number(payload, "melting_point_c", 43.0),
            utilization=_number(payload, "utilization", 0.7),
            inlet_temperature_c=_number(payload, "inlet_temperature_c", 25.0),
            wax_enabled=_boolean(payload, "wax_enabled", True),
            frequency_ghz=_number(payload, "frequency_ghz", 2.4),
            ticks=_integer(payload, "ticks", 60),
            tick_s=_number(payload, "tick_s", 60.0),
        )

    def payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "platform": self.platform,
            "server_count": self.server_count,
            "melting_point_c": self.melting_point_c,
            "utilization": self.utilization,
            "inlet_temperature_c": self.inlet_temperature_c,
            "wax_enabled": self.wax_enabled,
            "frequency_ghz": self.frequency_ghz,
            "ticks": self.ticks,
            "tick_s": self.tick_s,
        }

    def group_key(self) -> str:
        """Requests sharing platform, shape, and tick length coalesce;
        materials, utilization, inlet, DVFS, and horizon vary per
        member along the stacked cluster axis."""
        return canonical_json(
            {
                "kind": self.kind,
                "platform": self.platform,
                "server_count": self.server_count,
                "tick_s": self.tick_s,
            }
        )

    def cost(self) -> float:
        return 1.0


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered paper experiment by id."""

    kind: ClassVar[str] = "experiment"

    experiment_id: str = "table1"
    quick: bool = True

    def __post_init__(self) -> None:
        from repro.experiments.registry import all_experiment_ids

        _require(
            self.experiment_id in all_experiment_ids(),
            f"unknown experiment {self.experiment_id!r}; choose from "
            f"{all_experiment_ids()}",
        )

    @classmethod
    def parse(cls, payload: dict) -> "ExperimentSpec":
        _reject_unknown(
            payload, {"kind", "experiment_id", "quick"}, cls.kind
        )
        experiment_id = payload.get("experiment_id")
        if not isinstance(experiment_id, str):
            raise ApiError(
                f"'experiment_id' must be a string, got {experiment_id!r}"
            )
        return cls(
            experiment_id=experiment_id,
            quick=_boolean(payload, "quick", True),
        )

    def payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "experiment_id": self.experiment_id,
            "quick": self.quick,
        }

    def group_key(self) -> None:
        """Experiments never share a solve; dedup is cache-level only."""
        return None

    def cost(self) -> float:
        # A full experiment is orders of magnitude more work than one
        # simulation; make it spend tokens accordingly.
        return 4.0


Spec = TransientSpec | ClusterSpec | ExperimentSpec

_SPEC_KINDS: dict[str, type] = {
    TransientSpec.kind: TransientSpec,
    ClusterSpec.kind: ClusterSpec,
    ExperimentSpec.kind: ExperimentSpec,
}


def parse_spec(payload: Any) -> Spec:
    """Parse and validate one spec dict (dispatches on ``kind``)."""
    if not isinstance(payload, dict):
        raise ApiError(f"spec must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    spec_cls = _SPEC_KINDS.get(kind)
    if spec_cls is None:
        raise ApiError(
            f"unknown spec kind {kind!r}; choose from "
            f"{sorted(_SPEC_KINDS)}"
        )
    return spec_cls.parse(payload)


def cache_spec(spec: Spec) -> dict[str, Any]:
    """The content address a spec's result is stored (and deduplicated)
    under in the shared :class:`~repro.runner.cache.ResultCache`.

    Experiment specs use the registry's own address
    (:func:`repro.experiments.registry.experiment_cache_spec`), so a
    point computed by ``repro-experiments --cache`` answers service
    requests and vice versa. Simulation specs get a service-schema
    envelope of their canonical payload.
    """
    if isinstance(spec, ExperimentSpec):
        from repro.experiments.registry import experiment_cache_spec

        return experiment_cache_spec(spec.experiment_id, spec.quick)
    return {
        "kind": "service-job",
        "schema": API_SCHEMA,
        "job": spec.payload(),
    }


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 of a payload's canonical JSON — equal fingerprints mean
    byte-identical results."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def _valid_tenant(tenant: Any) -> bool:
    return (
        isinstance(tenant, str)
        and 0 < len(tenant) <= MAX_TENANT_CHARS
        and all(c.isalnum() or c in "._-" for c in tenant)
    )


@dataclass(frozen=True)
class ServiceRequest:
    """A validated submission: one tenant, one or more specs."""

    tenant: str
    specs: tuple[Spec, ...]
    stream: bool = False
    timeout_s: float | None = None

    @property
    def cost(self) -> float:
        return sum(spec.cost() for spec in self.specs)


def _merge_variant(base: dict, variant: Any, index: int) -> dict:
    if not isinstance(variant, dict):
        raise ApiError(
            f"sweep variant {index} must be an object, got "
            f"{type(variant).__name__}"
        )
    if "kind" in variant and variant["kind"] != base.get("kind"):
        raise ApiError(
            f"sweep variant {index} changes 'kind'; variants may only "
            f"override fields of the base spec"
        )
    merged = dict(base)
    merged.update(variant)
    return merged


def parse_request(body: Any) -> ServiceRequest:
    """Parse and validate a full request body.

    Accepts either ``{"tenant", "spec": {...}}`` or
    ``{"tenant", "sweep": {"base": {...}, "variants": [{...}, ...]}}``
    plus optional ``stream`` and ``timeout_s``. Raises
    :class:`ApiError` (mapped to HTTP 400) on anything malformed.
    """
    if not isinstance(body, dict):
        raise ApiError("request body must be a JSON object")
    allowed = {"tenant", "spec", "sweep", "stream", "timeout_s"}
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ApiError(
            f"unknown request field(s) {unknown}; allowed: {sorted(allowed)}"
        )
    tenant = body.get("tenant")
    if not _valid_tenant(tenant):
        raise ApiError(
            "'tenant' must be 1-64 characters of [A-Za-z0-9._-]",
            code="bad_tenant",
        )
    stream = _boolean(body, "stream", False)
    timeout_s = body.get("timeout_s")
    if timeout_s is not None:
        timeout_s = _number(body, "timeout_s", 0.0)
        _require(timeout_s > 0.0, "timeout_s must be positive")

    has_spec = "spec" in body
    has_sweep = "sweep" in body
    if has_spec == has_sweep:
        raise ApiError("request must carry exactly one of 'spec' or 'sweep'")

    if has_spec:
        specs: tuple[Spec, ...] = (parse_spec(body["spec"]),)
    else:
        sweep = body["sweep"]
        if not isinstance(sweep, dict):
            raise ApiError("'sweep' must be an object")
        _reject_unknown(sweep, {"base", "variants"}, "sweep")
        base = sweep.get("base")
        if not isinstance(base, dict):
            raise ApiError("'sweep.base' must be a spec object")
        variants = sweep.get("variants")
        if not isinstance(variants, list) or not variants:
            raise ApiError("'sweep.variants' must be a non-empty array")
        if len(variants) > MAX_SWEEP_VARIANTS:
            raise ApiError(
                f"sweep carries {len(variants)} variants; the limit is "
                f"{MAX_SWEEP_VARIANTS}",
                code="sweep_too_large",
            )
        specs = tuple(
            parse_spec(_merge_variant(base, variant, index))
            for index, variant in enumerate(variants)
        )
    return ServiceRequest(
        tenant=tenant, specs=specs, stream=stream, timeout_s=timeout_s
    )


def spec_with(spec: Spec, **overrides: Any) -> Spec:
    """A copy of ``spec`` with fields replaced (re-validated)."""
    valid = {f.name for f in fields(spec)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ApiError(f"unknown spec field(s) {unknown}")
    return replace(spec, **overrides)
