"""``python -m repro.service`` — run one service process."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.service.server import ServiceConfig, serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Long-running simulation control plane: coalesced batched "
            "solves, per-tenant quotas, shared result cache. See "
            "docs/SERVICE.md."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="solver worker threads"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory shared with the CLI (default: off)",
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=2.0,
        help="tokens refilled per second per tenant",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=8.0,
        help="token-bucket ceiling per tenant",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=50.0,
        help="coalescing window; 0 disables coalescing",
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="default per-request wall-clock budget, seconds",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=args.cache,
        quota_rate_per_s=args.quota_rate,
        quota_burst=args.quota_burst,
        window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        request_timeout_s=args.timeout,
    )

    async def run() -> None:
        task = asyncio.ensure_future(serve_forever(config))
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, task.cancel)
        with contextlib.suppress(asyncio.CancelledError):
            await task

    asyncio.run(run())
    print("repro.service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
