"""Per-tenant token-bucket quotas.

One :class:`TokenBucket` per tenant refills continuously at
``rate_per_s`` up to a ``burst`` ceiling; each admitted request spends
tokens equal to its cost (one per simulation spec, more for full
experiments — see ``Spec.cost()``). A request that cannot be paid for
right now is refused with a ``retry_after_s`` telling the client when
enough tokens will have accrued — the server surfaces that as HTTP 429
with a ``Retry-After`` header.

The clock is injectable (any ``() -> float`` monotonic-seconds
callable), so quota math is testable without sleeping, and the manager
is thread-safe: the asyncio handler and worker threads may consult it
concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class QuotaDecision:
    """Outcome of asking a bucket to pay for a request.

    ``retry_after_s`` is 0 when admitted, the wait until the bucket can
    pay when refused, and ``inf`` when the cost exceeds the burst
    ceiling (no amount of waiting will ever admit the request).
    """

    allowed: bool
    retry_after_s: float = 0.0

    @property
    def satisfiable(self) -> bool:
        """Whether waiting ``retry_after_s`` could ever admit this cost."""
        return self.allowed or math.isfinite(self.retry_after_s)


class TokenBucket:
    """A continuously-refilling token bucket.

    Starts full. Not thread-safe by itself —
    :class:`QuotaManager` serializes access; use it directly only from
    one thread (or under your own lock).
    """

    __slots__ = ("rate_per_s", "burst", "_clock", "_tokens", "_stamp")

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        if burst <= 0.0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0.0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_s
            )

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_take(self, cost: float = 1.0) -> QuotaDecision:
        """Spend ``cost`` tokens if available, else refuse with a wait."""
        if cost <= 0.0:
            raise ValueError(f"cost must be positive, got {cost}")
        self._refill()
        if cost > self.burst:
            # Even a full bucket cannot pay; waiting is pointless.
            return QuotaDecision(allowed=False, retry_after_s=math.inf)
        if self._tokens >= cost:
            self._tokens -= cost
            return QuotaDecision(allowed=True)
        deficit = cost - self._tokens
        return QuotaDecision(
            allowed=False, retry_after_s=deficit / self.rate_per_s
        )


class QuotaManager:
    """Lazily creates and consults one bucket per tenant (thread-safe).

    ``overrides`` maps tenant names to ``(rate_per_s, burst)`` pairs for
    tenants whose quota differs from the default.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        overrides: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._overrides = dict(overrides or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket (created full on first sight)."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(
                    tenant, (self.rate_per_s, self.burst)
                )
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str, cost: float = 1.0) -> QuotaDecision:
        """Try to pay for one request by ``tenant``."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(
                    tenant, (self.rate_per_s, self.burst)
                )
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket.try_take(cost)

    def tenants(self) -> list[str]:
        """Tenants seen so far (sorted)."""
        with self._lock:
            return sorted(self._buckets)
