"""The asyncio HTTP/JSON control plane.

Stdlib only — ``asyncio.start_server`` plus a deliberately minimal
HTTP/1.1 layer (request line, headers, ``Content-Length`` body,
``Connection: close``) — because the service's value is in the layers
behind it (coalescing, quotas, the shared cache), not in routing.

Request lifecycle for ``POST /v1/jobs``:

1. parse and validate the body (:func:`repro.service.api.parse_request`
   — HTTP 400 on anything malformed);
2. charge the tenant's token bucket (HTTP 429 + ``Retry-After`` when
   broke; admission is all-or-nothing per request, so an over-quota
   sweep never half-runs);
3. submit every spec to the :class:`~repro.service.batching.Coalescer`
   (cache hits resolve instantly; identical in-flight specs join);
4. stream progress as chunked NDJSON (``stream: true``) or await all
   results and answer with one JSON document;
5. release the request's waiter references — on success, timeout
   (HTTP 504), *or* client disconnect — so jobs nobody is waiting for
   get cancelled instead of burning workers.

Every request gets a trace id (``X-Trace-Id`` response header, bound
via :mod:`repro.obs.trace` for the handler's lifetime and carried onto
the worker thread that solves for it).
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.obs import bind_trace, new_trace_id
from repro.runner.cache import ResultCache, resolve_cache
from repro.runner.serialize import encode
from repro.service.api import (
    API_SCHEMA,
    ApiError,
    ServiceRequest,
    parse_request,
)
from repro.service.batching import Coalescer, Job, JobCancelled, JobOutcome
from repro.service.quota import QuotaManager
from repro.service.workers import WorkerPool

_MAX_HEADER_BYTES = 16 * 1024


class _ClientGone(Exception):
    """The client disconnected mid-request."""


@dataclass
class ServiceConfig:
    """Deployment knobs of one service process (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    #: Shared result cache: a ResultCache, a directory path, or None
    #: (no cross-request dedup; in-flight dedup still applies).
    cache: ResultCache | str | Path | None = None
    quota_rate_per_s: float = 2.0
    quota_burst: float = 8.0
    #: Quota overrides per tenant: name -> (rate_per_s, burst).
    quota_overrides: dict[str, tuple[float, float]] = field(
        default_factory=dict
    )
    #: Coalescing window opened by a group's first request; 0 disables
    #: coalescing (every request solves alone).
    window_s: float = 0.05
    max_batch: int = 64
    #: Default wall-clock budget per request; a request's ``timeout_s``
    #: may shorten (never extend) it.
    request_timeout_s: float = 300.0
    max_body_bytes: int = 4 * 1024 * 1024


class SimulationService:
    """One service process: HTTP front, coalescer, worker pool, cache."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = resolve_cache(self.config.cache)
        self.quota = QuotaManager(
            self.config.quota_rate_per_s,
            self.config.quota_burst,
            overrides=self.config.quota_overrides,
        )
        self.pool: WorkerPool | None = None
        self.coalescer: Coalescer | None = None
        self._server: asyncio.base_events.Server | None = None
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("service already started")
        # The service's /stats route and the coalescing tests read the
        # process-global registry; a control plane with dark counters is
        # not worth the nanoseconds, so collection is always on here.
        obs.enable()
        self.pool = WorkerPool(workers=self.config.workers)
        self.coalescer = Coalescer(
            self.pool,
            self.cache,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self.coalescer is not None:
            self.coalescer.flush_all()
        if self.pool is not None:
            self.pool.shutdown()
        self.pool = None
        self.coalescer = None

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- connection handling -----------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        trace_id = new_trace_id()
        try:
            with bind_trace(trace_id):
                await self._handle_request(reader, writer, trace_id)
        except (_ClientGone, ConnectionError, asyncio.IncompleteReadError):
            obs.count("service.disconnects")
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        trace_id: str,
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            return
        if len(head) > _MAX_HEADER_BYTES:
            await self._respond(
                writer, 431, {"error": "headers too large"}, trace_id
            )
            return
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, trace_id
            )
            return
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        obs.count("service.requests")
        route = (method.upper(), target.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            await self._respond(writer, 200, self._health(), trace_id)
        elif route == ("GET", "/stats"):
            await self._respond(writer, 200, self._stats(), trace_id)
        elif route == ("GET", "/v1/experiments"):
            from repro.experiments.registry import all_experiment_ids

            await self._respond(
                writer,
                200,
                {"schema": API_SCHEMA, "experiments": all_experiment_ids()},
                trace_id,
            )
        elif route == ("POST", "/v1/jobs"):
            await self._handle_jobs(reader, writer, headers, trace_id)
        else:
            await self._respond(
                writer,
                404,
                {"error": f"no route for {method} {target}"},
                trace_id,
            )

    def _health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "schema": API_SCHEMA,
            "workers_alive": self.pool.alive if self.pool else 0,
            "cache": self.cache is not None,
        }

    def _stats(self) -> dict[str, Any]:
        report = obs.snapshot()
        service_counters = {
            name: value
            for name, value in report.counters.items()
            if name.startswith(("service.", "runner.", "solver."))
        }
        return {
            "schema": API_SCHEMA,
            "counters": service_counters,
            "inflight": self.coalescer.inflight if self.coalescer else 0,
            "tenants": self.quota.tenants(),
        }

    # -- the job route -----------------------------------------------------

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes | None:
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            return None
        if length < 0 or length > self.config.max_body_bytes:
            return None
        return await reader.readexactly(length)

    async def _handle_jobs(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
        trace_id: str,
    ) -> None:
        body = await self._read_body(reader, headers)
        if body is None:
            await self._respond(
                writer,
                413,
                {
                    "error": "missing/invalid Content-Length or body "
                    f"over {self.config.max_body_bytes} bytes"
                },
                trace_id,
            )
            return
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            await self._respond(
                writer, 400, {"error": "body is not valid JSON"}, trace_id
            )
            return
        except ApiError as exc:
            obs.count("service.rejected.invalid")
            await self._respond(
                writer, 400, {"error": str(exc), "code": exc.code}, trace_id
            )
            return

        decision = self.quota.admit(request.tenant, request.cost)
        if not decision.allowed:
            obs.count("service.rejected.quota")
            extra_headers = {}
            if math.isfinite(decision.retry_after_s):
                extra_headers["Retry-After"] = str(
                    max(1, math.ceil(decision.retry_after_s))
                )
            await self._respond(
                writer,
                429,
                {
                    "error": f"tenant {request.tenant!r} is over quota",
                    "code": "over_quota",
                    "retry_after_s": decision.retry_after_s
                    if math.isfinite(decision.retry_after_s)
                    else None,
                    "satisfiable": decision.satisfiable,
                },
                trace_id,
                extra_headers=extra_headers,
            )
            return

        assert self.coalescer is not None
        jobs = [self.coalescer.submit(spec) for spec in request.specs]
        timeout_s = self.config.request_timeout_s
        if request.timeout_s is not None:
            timeout_s = min(timeout_s, request.timeout_s)
        try:
            if request.stream:
                await self._stream_jobs(
                    reader, writer, jobs, timeout_s, trace_id
                )
            else:
                await self._await_jobs(writer, jobs, timeout_s, trace_id)
        finally:
            for job in jobs:
                job.release()

    @staticmethod
    def _outcome_event(index: int, job: Job) -> dict[str, Any]:
        if job.future.cancelled():
            # Defensive: the service never cancels the shared future
            # itself, but a cancelled job must map to an event — calling
            # exception() on it would raise CancelledError out of the
            # handler and close the connection with no response.
            return {
                "event": "cancelled",
                "index": index,
                "error": "job cancelled",
            }
        exc = job.future.exception()
        if exc is None:
            outcome: JobOutcome = job.future.result()
            return {
                "event": "result",
                "index": index,
                "fingerprint": outcome.fingerprint,
                "cached": outcome.cached,
                "batch_size": outcome.batch_size,
                "payload": outcome.payload,
            }
        kind = "cancelled" if isinstance(exc, JobCancelled) else "error"
        return {"event": kind, "index": index, "error": str(exc)}

    async def _await_jobs(
        self,
        writer: asyncio.StreamWriter,
        jobs: list[Job],
        timeout_s: float,
        trace_id: str,
    ) -> None:
        # Await completion through request-local waiter futures rather
        # than asyncio.wrap_future: cancelling a wrapped future on
        # timeout would propagate to the shared Job.future (which is
        # never marked running, so cancel() always succeeds), handing
        # every other client deduplicated onto the same job a
        # CancelledError and evicting the job from the in-flight map
        # while its solve still runs.
        loop = asyncio.get_running_loop()
        waiters: list[asyncio.Future] = []
        for job in jobs:
            waiter: asyncio.Future = loop.create_future()

            def _signal(_f: object, waiter: asyncio.Future = waiter) -> None:
                # Runs on whichever thread resolved the job (or inline
                # when it is already done); hop onto the event loop.
                def _set() -> None:
                    if not waiter.done():
                        waiter.set_result(None)

                try:
                    loop.call_soon_threadsafe(_set)
                except RuntimeError:
                    pass  # loop closed during shutdown

            job.future.add_done_callback(_signal)
            waiters.append(waiter)
        done, pending = await asyncio.wait(waiters, timeout=timeout_s)
        if pending:
            obs.count("service.timeouts")
            # Cancel only this request's waiters; the shared job keeps
            # running for any other attached client. This request's own
            # waiter reference is dropped by the caller's finally
            # (Job.release), which is what drives job cancellation.
            for waiter in pending:
                waiter.cancel()
            await self._respond(
                writer,
                504,
                {
                    "error": f"request exceeded {timeout_s:g}s",
                    "code": "timeout",
                },
                trace_id,
            )
            return
        results = [self._outcome_event(i, job) for i, job in enumerate(jobs)]
        status = 200 if all(r["event"] == "result" for r in results) else 207
        await self._respond(
            writer,
            status,
            {"schema": API_SCHEMA, "trace_id": trace_id, "results": results},
            trace_id,
        )

    async def _stream_jobs(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        jobs: list[Job],
        timeout_s: float,
        trace_id: str,
    ) -> None:
        merged: asyncio.Queue = asyncio.Queue()

        async def pump(index: int, job: Job) -> None:
            queue = job.subscribe()
            while True:
                event = await queue.get()
                if event is None:
                    break
                merged.put_nowait({**event, "index": index})
            merged.put_nowait({"__done__": index})

        pumps = [
            asyncio.ensure_future(pump(index, job))
            for index, job in enumerate(jobs)
        ]
        # With the full request consumed and Connection: close semantics,
        # the only bytes this read ever yields come from the client going
        # away; it doubles as the disconnect signal.
        sentinel = asyncio.ensure_future(reader.read(1))

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n"
            b"X-Trace-Id: " + trace_id.encode("ascii") + b"\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        try:
            await self._write_chunk(
                writer,
                {
                    "event": "accepted",
                    "schema": API_SCHEMA,
                    "trace_id": trace_id,
                    "jobs": len(jobs),
                },
            )
            finished = 0
            while finished < len(jobs):
                getter = asyncio.ensure_future(merged.get())
                done, _ = await asyncio.wait(
                    {getter, sentinel},
                    timeout=max(0.0, deadline - loop.time()),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if sentinel in done:
                    getter.cancel()
                    raise _ClientGone
                if not done:
                    getter.cancel()
                    obs.count("service.timeouts")
                    await self._write_chunk(
                        writer,
                        {"event": "timeout", "timeout_s": timeout_s},
                    )
                    break
                event = getter.result()
                index = event.pop("__done__", None)
                if index is not None:
                    finished += 1
                    await self._write_chunk(
                        writer, self._outcome_event(index, jobs[index])
                    )
                else:
                    await self._write_chunk(writer, event)
            await self._write_chunk(writer, {"event": "end"})
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            sentinel.cancel()
            for task in pumps:
                task.cancel()

    # -- low-level responses -----------------------------------------------

    @staticmethod
    async def _write_chunk(
        writer: asyncio.StreamWriter, event: dict[str, Any]
    ) -> None:
        data = (
            json.dumps(encode(event), ensure_ascii=True) + "\n"
        ).encode("utf-8")
        try:
            writer.write(f"{len(data):x}\r\n".encode("ascii"))
            writer.write(data)
            writer.write(b"\r\n")
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            raise _ClientGone from exc

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        trace_id: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        obs.count(f"service.responses.{status}")
        reasons = {
            200: "OK",
            207: "Multi-Status",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            504: "Gateway Timeout",
        }
        body = json.dumps(encode(payload), ensure_ascii=True).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Response')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"X-Trace-Id: {trace_id}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        try:
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
            )
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            raise _ClientGone from exc


async def serve_forever(config: ServiceConfig) -> None:
    """Run a service until cancelled (the ``python -m repro.service`` body)."""
    async with SimulationService(config) as service:
        print(
            f"repro.service listening on "
            f"http://{config.host}:{service.port}",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
