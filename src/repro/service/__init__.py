"""Simulation-as-a-service: the long-running control plane.

The packages below turn the repro library from "a thing you run" into
"a thing requests hit": a stdlib-only asyncio HTTP/JSON service that
accepts simulation, sweep, and experiment requests, coalesces
structurally-identical simulation requests into the batched solver
paths (:func:`repro.thermal.solver.simulate_transient_batch`,
:class:`repro.dcsim.thermal_coupling.BatchedClusterThermalState`),
streams per-tick progress over chunked responses, enforces per-tenant
token-bucket quotas, and deduplicates work through the
content-addressed :class:`repro.runner.cache.ResultCache`.

Layout:

* :mod:`repro.service.api` — request/response schema and validation
  (pure, no I/O);
* :mod:`repro.service.quota` — per-tenant token buckets;
* :mod:`repro.service.workers` — the supervised worker-thread pool;
* :mod:`repro.service.batching` — request coalescing and the group
  solvers that ride the batched library paths;
* :mod:`repro.service.server` — the asyncio HTTP server and CLI entry
  point (``python -m repro.service``);
* :mod:`repro.service.smoke` — the scripted client session CI runs
  against a live server.

See ``docs/SERVICE.md`` for the HTTP API, quota model, batching rules,
and deployment knobs.
"""

from repro.service.api import (
    API_SCHEMA,
    ApiError,
    ClusterSpec,
    ExperimentSpec,
    ServiceRequest,
    TransientSpec,
    fingerprint_payload,
    parse_request,
    parse_spec,
)
from repro.service.quota import QuotaDecision, QuotaManager, TokenBucket
from repro.service.server import ServiceConfig, SimulationService
from repro.service.workers import WorkerPool

__all__ = [
    "API_SCHEMA",
    "ApiError",
    "ClusterSpec",
    "ExperimentSpec",
    "QuotaDecision",
    "QuotaManager",
    "ServiceConfig",
    "ServiceRequest",
    "SimulationService",
    "TokenBucket",
    "TransientSpec",
    "WorkerPool",
    "fingerprint_payload",
    "parse_request",
    "parse_spec",
]
