"""The supervised worker-thread pool the service runs solves on.

Threads, not processes, on purpose: solver time is spent inside numpy
(which releases the GIL for the operations that dominate), results need
no pickling, and — load-bearing for the tests and for operators — the
workers share the process-global :mod:`repro.obs` registry, so solver
invocation counters observed by one thread are visible to all. The
horizontal-scale story is several service *processes* sharing one
:class:`~repro.runner.cache.ResultCache` directory, not more threads.

Supervision: a dedicated supervisor thread watches the workers and
respawns any that die of an escaped exception (counted under
``service.workers.restarts``). Job exceptions themselves do not kill
workers — they land in the job's future — so a restart signals a bug in
the pool, not in a job; the pool still self-heals rather than silently
shrinking.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro import obs
from repro.obs import bind_trace

_POISON = object()


class _Job:
    __slots__ = ("fn", "args", "kwargs", "future", "trace_id")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        trace_id: str | None,
    ) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future: Future = Future()
        self.trace_id = trace_id


class WorkerPool:
    """A fixed-size pool of supervised worker threads.

    :meth:`submit` returns a :class:`concurrent.futures.Future`. Asyncio
    callers awaiting a *shared* future should bridge it onto the loop
    via ``add_done_callback`` feeding a loop-local future (as the
    server's job route does), not :func:`asyncio.wrap_future` —
    cancelling a wrapped future propagates to the underlying shared
    one. Jobs carry the submitter's trace id and re-bind it on
    the worker thread, so log lines and counters emitted inside a solve
    join the request that caused it.
    """

    def __init__(self, workers: int = 2, name: str = "repro-svc") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._name = name
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._shutdown = threading.Event()
        self._lock = threading.Lock()
        for index in range(workers):
            self._threads.append(self._spawn(index))
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._run, name=f"{self._name}-{index}", daemon=True
        )
        thread.start()
        return thread

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is _POISON:
                return
            if not job.future.set_running_or_notify_cancel():
                continue
            try:
                with bind_trace(job.trace_id):
                    result = job.fn(*job.args, **job.kwargs)
            except BaseException as exc:  # noqa: BLE001 - routed to future
                job.future.set_exception(exc)
            else:
                job.future.set_result(result)

    def _supervise(self) -> None:
        while not self._shutdown.wait(0.2):
            with self._lock:
                for index, thread in enumerate(self._threads):
                    if not thread.is_alive() and not self._shutdown.is_set():
                        obs.count("service.workers.restarts")
                        self._threads[index] = self._spawn(index)

    def submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        """Queue ``fn(*args, **kwargs)``; the future resolves with its
        result or exception. The caller's trace id travels with the job."""
        if self._shutdown.is_set():
            raise RuntimeError("worker pool is shut down")
        job = _Job(fn, args, kwargs, obs.current_trace_id())
        self._queue.put(job)
        return job.future

    @property
    def alive(self) -> int:
        """Worker threads currently running."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop supervision, drain workers, and join them.

        Jobs already queued still run; new submits are refused. Workers
        busy past ``timeout_s`` are abandoned (daemon threads)."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._supervisor.join(timeout=timeout_s)
        with self._lock:
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(_POISON)
        for thread in threads:
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
