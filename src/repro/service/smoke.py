"""Scripted end-to-end smoke session against a live service process.

``python -m repro.service.smoke`` boots a real server subprocess on a
free port and drives one scripted client session through the moves an
operator cares about: health check, a simulation round trip, a cache
hit on resubmission, a streamed request abandoned mid-stream, an
over-quota burst, and a clean SIGINT shutdown. CI runs this as the
service lane; any step failing exits non-zero with a diagnosis.

The client side is deliberately primitive — ``http.client`` for unary
calls and a raw socket for the stream it abandons — so the smoke test
exercises the server's HTTP layer, not a forgiving client library.
"""

from __future__ import annotations

import http.client
import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

_STARTUP_TIMEOUT_S = 60.0
_CLUSTER_SPEC = {
    "kind": "cluster",
    "platform": "1u",
    "server_count": 8,
    "melting_point_c": 43.0,
    "utilization": 0.7,
    "ticks": 30,
    "tick_s": 60.0,
}


def _fail(step: str, detail: str) -> None:
    print(f"SMOKE FAIL [{step}]: {detail}", file=sys.stderr)
    raise SystemExit(1)


def _request(
    port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict, dict]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    payload = json.dumps(body).encode() if body is not None else None
    connection.request(
        method,
        path,
        body=payload,
        headers={"Content-Type": "application/json"} if payload else {},
    )
    response = connection.getresponse()
    headers = {k.lower(): v for k, v in response.getheaders()}
    data = json.loads(response.read().decode())
    connection.close()
    return response.status, data, headers


def _submit(port: int, tenant: str, spec: dict) -> tuple[int, dict]:
    status, body, _ = _request(
        port, "POST", "/v1/jobs", {"tenant": tenant, "spec": spec}
    )
    return status, body


def _abandon_stream(port: int, tenant: str) -> None:
    """Open a streamed request, read the first events, hang up."""
    body = json.dumps(
        {
            "tenant": tenant,
            "stream": True,
            "spec": {**_CLUSTER_SPEC, "ticks": 5000, "utilization": 0.31},
        }
    ).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    sock.sendall(
        b"POST /v1/jobs HTTP/1.1\r\nHost: smoke\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
    )
    received = b""
    while b'"progress"' not in received:
        chunk = sock.recv(4096)
        if not chunk:
            _fail("stream", "connection closed before any progress event")
        received += chunk
    sock.close()  # mid-stream disconnect: the service must cancel the job


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--port",
                "0",
                "--cache",
                f"{tmp}/cache",
                "--window-ms",
                "20",
                "--quota-rate",
                "1",
                "--quota-burst",
                "4",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            return _drive(process)
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)


def _drive(process: subprocess.Popen) -> int:
    assert process.stdout is not None
    deadline = time.monotonic() + _STARTUP_TIMEOUT_S
    banner = process.stdout.readline()
    match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", banner)
    if not match or time.monotonic() > deadline:
        _fail("startup", f"no listen banner, got {banner!r}")
    port = int(match.group(1))
    print(f"smoke: server up on port {port}")

    status, health, _ = _request(port, "GET", "/healthz")
    if status != 200 or not health.get("ok"):
        _fail("healthz", f"status={status} body={health}")
    print("smoke: healthz ok")

    status, body = _submit(port, "smoke-a", _CLUSTER_SPEC)
    if status != 200:
        _fail("submit", f"status={status} body={body}")
    result = body["results"][0]
    if result["event"] != "result" or result["cached"]:
        _fail("submit", f"expected fresh result, got {result['event']}")
    fingerprint = result["fingerprint"]
    print(f"smoke: first solve ok, fingerprint {fingerprint[:12]}")

    status, body = _submit(port, "smoke-a", _CLUSTER_SPEC)
    result = body["results"][0]
    if status != 200 or not result["cached"]:
        _fail("cache", f"resubmission was not a cache hit: {result}")
    if result["fingerprint"] != fingerprint:
        _fail("cache", "cache hit changed the fingerprint")
    print("smoke: resubmission answered from cache, fingerprint unchanged")

    _abandon_stream(port, "smoke-a")
    print("smoke: streamed request abandoned mid-flight")

    saw_429 = False
    for _ in range(8):
        status, body = _submit(
            port, "smoke-b", {**_CLUSTER_SPEC, "ticks": 3}
        )
        if status == 429:
            if body.get("code") != "over_quota":
                _fail("quota", f"429 without over_quota code: {body}")
            saw_429 = True
            break
        if status != 200:
            _fail("quota", f"unexpected status {status}: {body}")
    if not saw_429:
        _fail("quota", "burst of 8 requests never hit the quota limit")
    print("smoke: over-quota burst rejected with 429")

    status, stats, _ = _request(port, "GET", "/stats")
    if status != 200 or "service.solves" not in stats.get("counters", {}):
        _fail("stats", f"status={status} body={stats}")
    print(f"smoke: stats ok ({stats['counters']})")

    process.send_signal(signal.SIGINT)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        _fail("shutdown", "server did not exit within 30s of SIGINT")
    tail = process.stdout.read()
    if code != 0:
        _fail("shutdown", f"exit code {code}; output tail: {tail!r}")
    if "repro.service stopped" not in tail:
        _fail("shutdown", f"missing clean-stop banner; tail: {tail!r}")
    print("smoke: clean shutdown")
    print("SMOKE PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
