"""Request coalescing and the group solvers behind it.

The coalescer is the piece that makes the service cheaper than a loop
of CLI invocations: requests arriving within one collection window
whose specs share a *group key* (same structure — platform, horizon,
output grid; see ``Spec.group_key()``) are solved as **one** batched
call into the library (:func:`repro.thermal.solver
.simulate_transient_batch` for transients, one stacked
:class:`~repro.dcsim.thermal_coupling.BatchedClusterThermalState` for
cluster runs) instead of N scalar ones.

Coalescing is only safe because it is invisible: both batched paths
advance every member elementwise in the exact operation order of a lone
run, so a member's trajectory — and therefore its payload fingerprint —
is byte-identical whether it was solved alone or sharing a batch with
strangers. For transients that additionally requires all members to
share one RK4 step, so a flushed group is partitioned by each member's
resolved stability step before solving; members of different partitions
still amortize network compilation but integrate separately.

Identical requests (same cache address) never solve twice: the
coalescer keeps an in-flight map, so duplicates attach as *waiters* on
the first request's job, and finished payloads land in the shared
:class:`~repro.runner.cache.ResultCache`. A job whose waiters all
disconnect is cancelled: pending jobs are dropped at flush, and a
running group solve aborts (via the solver's ``progress_cb``) once
**all** members of the batch are cancelled — one impatient client
cannot kill a solve that others still want.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.runner.cache import MISS, ResultCache, cache_key
from repro.service.api import (
    API_SCHEMA,
    ClusterSpec,
    ExperimentSpec,
    Spec,
    TransientSpec,
    cache_spec,
    fingerprint_payload,
)
from repro.service.workers import WorkerPool


class JobCancelled(ReproError):
    """Every waiter of a job went away before its solve finished."""


@dataclass(frozen=True)
class JobOutcome:
    """What a finished job resolves to.

    ``payload`` lives in the tagged-codec value space (it may contain
    numpy arrays); ``fingerprint`` is its content hash; ``cached`` marks
    a result answered from the shared cache without solving;
    ``batch_size`` is how many members shared the solve that produced
    it (0 for cache hits).
    """

    payload: Any
    fingerprint: str
    cached: bool
    batch_size: int


class Job:
    """One unit of in-flight work, shared by all identical requests.

    Waiter accounting drives cancellation: every attached client holds
    one reference; :meth:`release` drops one, and when the count hits
    zero the job's cancel event is set. Progress events fan out to
    per-subscriber asyncio queues via ``call_soon_threadsafe``, since
    solves run on worker threads while clients await on the event loop.
    """

    def __init__(self, spec: Spec, key: str) -> None:
        self.spec = spec
        self.key = key
        self.trace_id = obs.current_trace_id()
        self.future: Future = Future()
        self.cancel_event = threading.Event()
        self._waiters = 0
        self._lock = threading.Lock()
        self._subscribers: list[tuple[asyncio.AbstractEventLoop, asyncio.Queue]] = []

    # -- waiter accounting -------------------------------------------------

    def acquire(self) -> None:
        """Attach one waiter."""
        with self._lock:
            self._waiters += 1

    def try_join(self) -> bool:
        """Attach one waiter iff the job has not been cancelled.

        A running job whose waiters all left is doomed: its cancel
        event may already have been observed by the solver, which will
        fail it shortly. Joining such a job would hand a brand-new,
        actively-waiting client a spurious ``cancelled`` response, so
        the check and the waiter increment happen atomically under the
        job lock (:meth:`release` sets the event under the same lock).
        A finished job is always joinable — its outcome exists.
        """
        with self._lock:
            if self.cancel_event.is_set() and not self.future.done():
                return False
            self._waiters += 1
            return True

    def release(self) -> None:
        """Detach one waiter; the last one out cancels the job."""
        with self._lock:
            self._waiters -= 1
            if self._waiters <= 0 and not self.future.done():
                self.cancel_event.set()

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    # -- progress fan-out --------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        """An asyncio queue receiving this job's progress events.

        Must be called from a running event loop; the queue also gets a
        ``None`` sentinel when the job reaches a terminal state. A job
        that is already finished (a cache hit resolved synchronously in
        :meth:`Coalescer.submit`, or an in-flight job that finished
        before this subscriber arrived) delivers the sentinel
        immediately — the terminal fan-out snapshotted the subscriber
        list before this queue joined it, and without the sentinel a
        streaming client would block on the queue forever.
        """
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            self._subscribers.append((asyncio.get_running_loop(), queue))
            if self.future.done():
                queue.put_nowait(None)
        return queue

    def _fan_out(self, event: dict | None) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for loop, queue in subscribers:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, event)
            except RuntimeError:
                pass  # loop already closed; nothing to notify

    def publish_progress(self, done: int, total: int, time_s: float) -> None:
        """Emit one progress event to every subscriber (thread-safe)."""
        self._fan_out(
            {
                "event": "progress",
                "done": done,
                "total": total,
                "time_s": time_s,
            }
        )

    # -- terminal states ---------------------------------------------------

    def finish(self, outcome: JobOutcome) -> None:
        if not self.future.done():
            self.future.set_result(outcome)
        self._fan_out(None)

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)
        self._fan_out(None)


# ---------------------------------------------------------------------------
# Model construction helpers (cached: characterization is expensive)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=32)
def _platform(name: str, melting_point_c: float | None):
    from repro.materials.library import commercial_paraffin_with_melting_point
    from repro.server.configs import platform_by_name

    if melting_point_c is None:
        return platform_by_name(name)
    return platform_by_name(
        name,
        wax_material=commercial_paraffin_with_melting_point(melting_point_c),
    )


@lru_cache(maxsize=8)
def _characterized(name: str):
    """One (characterization, power model) pair per platform.

    The characterization is geometry/airflow data only — independent of
    the wax blend — so one run of the detailed chassis model serves
    every melting-point variant the service ever sees.
    """
    from repro.server.characterization import characterize_platform

    spec = _platform(name, None)
    return characterize_platform(spec), spec.power_model


def _transient_network(spec: TransientSpec):
    from repro.server.chassis import constant_utilization

    chassis = _platform(spec.platform, spec.melting_point_c).chassis
    if spec.grille_blockage > 0.0:
        chassis = chassis.with_grille_blockage(spec.grille_blockage)
    return chassis.build_network(
        constant_utilization(spec.utilization), with_wax=spec.with_wax
    )


# ---------------------------------------------------------------------------
# Group solvers (run on worker threads)
# ---------------------------------------------------------------------------


def _finish_member(
    cache: ResultCache | None,
    job: Job,
    payload: dict[str, Any],
    batch_size: int,
) -> None:
    if cache is not None:
        cache.put(cache_spec(job.spec), payload)
    job.finish(
        JobOutcome(
            payload=payload,
            fingerprint=fingerprint_payload(payload),
            cached=False,
            batch_size=batch_size,
        )
    )


def _live_members(jobs: list[Job]) -> list[Job]:
    """Drop jobs already cancelled before the solve starts."""
    live = []
    for job in jobs:
        if job.cancelled:
            job.fail(JobCancelled(f"job {job.key[:12]} cancelled before solve"))
        else:
            live.append(job)
    return live


def solve_transient_group(jobs: list[Job], cache: ResultCache | None) -> None:
    """Solve a flushed group of transient jobs on one worker thread.

    Members are partitioned by their resolved RK4 step (the batch runs
    at the most conservative member's step, so mixing steps would change
    trajectories); each partition becomes one
    :func:`~repro.thermal.solver.simulate_transient_batch` call whose
    member results are byte-identical to solo runs.
    """
    from repro.thermal.solver import (
        DEFAULT_STEP_SAFETY,
        _resolve_step,
        simulate_transient_batch,
    )

    jobs = _live_members(jobs)
    if not jobs:
        return

    partitions: dict[float, list[tuple[Job, Any]]] = {}
    for job in jobs:
        spec = job.spec
        try:
            network = _transient_network(spec)
            step = _resolve_step(
                network, DEFAULT_STEP_SAFETY, None, spec.output_interval_s
            )
        except Exception as exc:  # noqa: BLE001 - routed to the job
            job.fail(exc)
            continue
        partitions.setdefault(step, []).append((job, network))

    for members in partitions.values():
        part_jobs = [job for job, _ in members]
        networks = [network for _, network in members]
        spec0: TransientSpec = part_jobs[0].spec

        def progress(done: int, total: int, time_s: float) -> None:
            all_cancelled = True
            for job in part_jobs:
                if not job.cancelled:
                    all_cancelled = False
                    job.publish_progress(done, total, time_s)
            if all_cancelled:
                raise JobCancelled("every waiter of the batch disconnected")

        try:
            batch = simulate_transient_batch(
                networks,
                spec0.duration_s,
                output_interval_s=spec0.output_interval_s,
                progress_cb=progress,
            )
        except JobCancelled as exc:
            obs.count("service.solve.aborted")
            for job in part_jobs:
                job.fail(exc)
            continue
        except Exception as exc:  # noqa: BLE001 - routed to the jobs
            for job in part_jobs:
                job.fail(exc)
            continue

        obs.get_registry().count_many(
            {"service.solves": 1, "service.solve.members": len(part_jobs)}
        )
        for index, job in enumerate(part_jobs):
            result = batch[index]
            if result is None:
                from repro.errors import SolverError

                job.fail(
                    SolverError(batch.failures.get(index, "member diverged"))
                )
                continue
            payload = {
                "schema": API_SCHEMA,
                "spec": job.spec.payload(),
                "times_s": result.times_s,
                "temperatures_c": result.temperatures_c,
                "air_temperatures_c": result.air_temperatures_c,
                "flow_m3_s": result.flow_m3_s,
                "melt_fractions": result.melt_fractions,
                "pcm_enthalpies_j": result.pcm_enthalpies_j,
                "power_w": result.power_w,
            }
            _finish_member(cache, job, payload, len(part_jobs))


#: Progress cadence of the cluster tick loop (events per run, roughly).
_PROGRESS_EVENTS = 200


def solve_cluster_group(jobs: list[Job], cache: ResultCache | None) -> None:
    """Solve a flushed group of cluster jobs as one stacked state.

    All members share a platform, server count, and tick length (the
    group key); materials, inlets, utilizations, DVFS frequencies, wax
    enablement, and horizons vary along the stacked cluster axis. The
    batched state advances every member elementwise in a lone cluster's
    operation order, so each member's series is bit-identical to running
    it alone; members with shorter horizons take the prefix of the
    shared tick loop.
    """
    from repro.dcsim.thermal_coupling import BatchedClusterThermalState
    from repro.materials.library import commercial_paraffin_with_melting_point

    jobs = _live_members(jobs)
    if not jobs:
        return

    specs: list[ClusterSpec] = [job.spec for job in jobs]
    spec0 = specs[0]
    count = len(jobs)
    servers = spec0.server_count
    try:
        characterization, power_model = _characterized(spec0.platform)
        state = BatchedClusterThermalState(
            characterization,
            power_model,
            [
                commercial_paraffin_with_melting_point(s.melting_point_c)
                for s in specs
            ],
            cluster_count=count,
            server_count=servers,
            inlet_temperature_c=np.array(
                [s.inlet_temperature_c for s in specs]
            ),
            initial_utilization=np.array([s.utilization for s in specs]),
            wax_enabled=np.array([s.wax_enabled for s in specs]),
        )
    except Exception as exc:  # noqa: BLE001 - routed to the jobs
        for job in jobs:
            job.fail(exc)
        return

    utilization = np.broadcast_to(
        np.array([[s.utilization] for s in specs]), (count, servers)
    ).copy()
    frequency = np.array([s.frequency_ghz for s in specs])
    max_ticks = max(s.ticks for s in specs)
    stride = max(1, max_ticks // _PROGRESS_EVENTS)

    series = {
        name: np.zeros((count, max_ticks))
        for name in (
            "power_w",
            "heat_release_w",
            "wax_heat_w",
            "zone_mean_c",
            "zone_max_c",
            "melt_fraction_mean",
            "stored_latent_heat_j",
        )
    }
    try:
        for tick in range(max_ticks):
            power_w, heat_w, wax_w = state.step(
                spec0.tick_s, utilization, frequency
            )
            series["power_w"][:, tick] = np.sum(power_w, axis=1)
            series["heat_release_w"][:, tick] = np.sum(heat_w, axis=1)
            series["wax_heat_w"][:, tick] = np.sum(wax_w, axis=1)
            series["zone_mean_c"][:, tick] = np.mean(
                state.zone_temperature_c, axis=1
            )
            series["zone_max_c"][:, tick] = np.max(
                state.zone_temperature_c, axis=1
            )
            series["melt_fraction_mean"][:, tick] = np.mean(
                state.melt_fraction, axis=1
            )
            series["stored_latent_heat_j"][:, tick] = state.stored_latent_heat_j
            if tick % stride == 0 or tick == max_ticks - 1:
                all_cancelled = True
                for job in jobs:
                    if not job.cancelled:
                        all_cancelled = False
                        job.publish_progress(
                            tick + 1, max_ticks, (tick + 1) * spec0.tick_s
                        )
                if all_cancelled:
                    raise JobCancelled(
                        "every waiter of the batch disconnected"
                    )
    except JobCancelled as exc:
        obs.count("service.solve.aborted")
        for job in jobs:
            job.fail(exc)
        return
    except Exception as exc:  # noqa: BLE001 - routed to the jobs
        for job in jobs:
            job.fail(exc)
        return

    obs.get_registry().count_many(
        {"service.solves": 1, "service.solve.members": count}
    )
    for index, job in enumerate(jobs):
        spec: ClusterSpec = job.spec
        ticks = spec.ticks
        payload = {
            "schema": API_SCHEMA,
            "spec": spec.payload(),
            "times_s": np.arange(1, ticks + 1) * spec.tick_s,
        }
        for name, values in series.items():
            payload[name] = values[index, :ticks].copy()
        _finish_member(cache, job, payload, count)


def solve_experiment(job: Job, cache: ResultCache | None) -> None:
    """Run one registered experiment (never batched; cache-deduplicated).

    Dedup happens at the registry's own cache address, so a point
    computed by ``repro-experiments --cache`` answers service requests
    and vice versa; :meth:`~repro.runner.cache.ResultCache
    .get_or_compute` collapses concurrent identical runs in-process.
    """
    from repro.experiments.registry import run_experiment
    from repro.runner.serialize import encode_experiment_result

    spec: ExperimentSpec = job.spec
    if job.cancelled:
        job.fail(JobCancelled("job cancelled before experiment started"))
        return

    def compute() -> dict[str, Any]:
        result = run_experiment(spec.experiment_id, quick=spec.quick)
        return encode_experiment_result(result)

    try:
        address = cache_spec(spec)
        if cache is None:
            payload = compute()
        else:
            payload = cache.get_or_compute(address, compute)
    except Exception as exc:  # noqa: BLE001 - routed to the job
        job.fail(exc)
        return
    obs.get_registry().count_many(
        {"service.solves": 1, "service.solve.members": 1}
    )
    job.finish(
        JobOutcome(
            payload=payload,
            fingerprint=fingerprint_payload(payload),
            cached=False,
            batch_size=1,
        )
    )


_GROUP_SOLVERS: dict[str, Callable[[list[Job], ResultCache | None], None]] = {
    TransientSpec.kind: solve_transient_group,
    ClusterSpec.kind: solve_cluster_group,
}


# ---------------------------------------------------------------------------
# The coalescer
# ---------------------------------------------------------------------------


class Coalescer:
    """Collects submitted specs into groups and flushes them to workers.

    Runs on the event loop (all mutation of pending state happens there;
    no locking needed). ``window_s`` is the collection window opened by
    a group's first member; a group also flushes early when it reaches
    ``max_batch`` members. ``window_s=0`` disables coalescing — every
    job flushes immediately — which is the serial reference the
    byte-identity tests compare against.
    """

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache | None,
        window_s: float = 0.05,
        max_batch: int = 64,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.cache = cache
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending: dict[str, list[Job]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._inflight: dict[str, Job] = {}

    # -- submission --------------------------------------------------------

    def submit(self, spec: Spec) -> Job:
        """Submit one spec; returns the (possibly shared) job.

        The caller holds one waiter reference on the returned job and
        must :meth:`Job.release` it when done or disconnected. Cache
        hits resolve immediately; identical in-flight specs are joined,
        not re-queued.
        """
        address = cache_spec(spec)
        key = (
            cache_key(address)
            if self.cache is None
            else self.cache.key(address)
        )

        shared = self._inflight.get(key)
        if (
            shared is not None
            and not shared.future.done()
            and shared.try_join()
        ):
            obs.count("service.dedup.joined")
            return shared
        # A cancelled shared job (every previous waiter disconnected,
        # solver has not failed it yet) is not joinable: fall through
        # and start a fresh job. The fresh job takes over the inflight
        # key; the doomed job's done-callback cannot evict it because
        # _forget only removes the exact job it was registered for.

        if self.cache is not None:
            payload = self.cache.get(address)
            if payload is not MISS:
                obs.count("service.cache.hits")
                job = Job(spec, key)
                job.acquire()
                job.finish(
                    JobOutcome(
                        payload=payload,
                        fingerprint=fingerprint_payload(payload),
                        cached=True,
                        batch_size=0,
                    )
                )
                return job
            obs.count("service.cache.misses")

        job = Job(spec, key)
        job.acquire()
        self._inflight[key] = job
        job.future.add_done_callback(
            lambda _f, key=key, job=job: self._forget(key, job)
        )

        group = spec.group_key()
        if group is None:
            self._dispatch_experiment(job)
        else:
            self._enqueue(group, job)
        return job

    def _forget(self, key: str, job: Job) -> None:
        # Runs on whichever thread resolved the future; dict ops are
        # atomic under the GIL and the guard keeps a newer job with the
        # same key from being evicted by an older one's callback.
        if self._inflight.get(key) is job:
            self._inflight.pop(key, None)

    # -- grouping and flushing --------------------------------------------

    def _enqueue(self, group: str, job: Job) -> None:
        pending = self._pending.setdefault(group, [])
        pending.append(job)
        if len(pending) >= self.max_batch or self.window_s == 0:
            self._flush(group)
        elif group not in self._timers:
            loop = asyncio.get_running_loop()
            self._timers[group] = loop.call_later(
                self.window_s, self._flush, group
            )

    def _flush(self, group: str) -> None:
        timer = self._timers.pop(group, None)
        if timer is not None:
            timer.cancel()
        jobs = self._pending.pop(group, [])
        if not jobs:
            return
        obs.get_registry().count_many(
            {
                "service.batch.flushes": 1,
                "service.batch.jobs": len(jobs),
                "service.batch.coalesced": len(jobs) - 1,
            }
        )
        solver = _GROUP_SOLVERS[jobs[0].spec.kind]
        self.pool.submit(solver, jobs, self.cache)

    def _dispatch_experiment(self, job: Job) -> None:
        obs.count("service.batch.flushes")
        self.pool.submit(solve_experiment, job, self.cache)

    def flush_all(self) -> None:
        """Flush every pending group now (shutdown path)."""
        for group in list(self._pending):
            self._flush(group)

    @property
    def inflight(self) -> int:
        """Jobs currently in flight (pending or solving)."""
        return len(self._inflight)
