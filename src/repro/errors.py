"""Exception hierarchy for the thermal time shifting library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model was configured with physically or logically invalid inputs.

    Examples: negative heat capacity, a melting range with liquidus below
    solidus, a fan curve with non-positive free-delivery flow.
    """


class NetworkError(ReproError):
    """A thermal network is malformed (unknown node, duplicate name, ...)."""


class SolverError(ReproError):
    """A transient or steady-state solve failed to converge."""


class WorkloadError(ReproError):
    """A workload trace is malformed (empty, negative load, unsorted time)."""


class SimulationError(ReproError):
    """The datacenter simulator reached an inconsistent state."""


class FaultError(ReproError):
    """A fault schedule is malformed or a fault cannot be injected."""


class ControlError(ReproError):
    """A control loop, planner, or tournament was misconfigured, or a
    tournament bundle is malformed."""


class ExperimentError(ReproError):
    """An experiment was requested that does not exist or cannot run."""


class RunnerError(ReproError):
    """A parallel sweep was misconfigured or a task exhausted its
    attempts (failure or timeout)."""
