"""Model validation against a high-fidelity reference server (Figure 4).

The paper validates its Icepak model against measurements of a physical
Lenovo RD330 containing 70 g of paraffin in a sealed aluminum box, plus a
placebo arm with the same box empty. We have no physical server, so
:mod:`repro.validation.reference` builds an *independent, finer-grained*
simulator of the same machine — more nodes, finer air segmentation, noisy
sensors at the paper's TEMPer1 locations — and
:mod:`repro.validation.harness` runs the paper's exact protocol (1 h idle,
12 h loaded, 12 h idle; wax and placebo arms) against both models and
compares them.
"""

from repro.validation.reference import (
    ReferenceServer,
    SensorSpec,
    build_reference_server,
)
from repro.validation.harness import (
    ValidationArm,
    ValidationReport,
    run_validation,
)

__all__ = [
    "ReferenceServer",
    "SensorSpec",
    "build_reference_server",
    "ValidationArm",
    "ValidationReport",
    "run_validation",
]
