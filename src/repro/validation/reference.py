"""A fine-grained reference RD330 standing in for the physical test server.

The paper's ground truth is a real Lenovo RD330 instrumented with USB
temperature sensors and loaded with 70 g of paraffin in a sealed aluminum
box "in the rear of the server, downwind of CPU 1". Without the physical
machine, the validation needs an *independent* higher-fidelity model to
play its role:

* every DIMM is a separate node (as in the paper's Icepak model);
* each CPU is split into a die and a heat-sink node joined by a package
  conductance, and the two sockets occupy distinct air segments;
* the airflow path is segmented twice as finely as the coarse model;
* the three TEMPer1 sensors are modeled explicitly: each reads its local
  air temperature plus a fixed per-sensor calibration offset and Gaussian
  sampling noise (seeded, deterministic).

The coarse chassis model of :mod:`repro.server.configs` is then validated
against this reference by the harness, exactly as the paper validates
Icepak against the physical server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.materials.library import commercial_paraffin_with_melting_point
from repro.materials.pcm import PCMSample
from repro.server.chassis import UtilizationSchedule
from repro.server.configs import one_u_commodity
from repro.server.wax_box import WaxBox, WaxLoadout
from repro.thermal.airflow import AirPath, AirSegment
from repro.thermal.convection import ConvectiveCoupling
from repro.thermal.network import ThermalNetwork
from repro.thermal.solver import TransientResult
from repro.units import ALUMINUM_SPECIFIC_HEAT, grams

#: The validation wax: 70 g (~90 ml) of the 39 degC commercial paraffin
#: the paper purchased and measured.
VALIDATION_WAX_MASS_KG = grams(70.0)


def validation_wax_box() -> WaxBox:
    """The sealed aluminum container of the validation experiment:
    90 ml of wax plus ~10 ml of expansion headspace."""
    return WaxBox.rectangular(
        wax_volume_m3=VALIDATION_WAX_MASS_KG / 800.0,  # solid density 0.8 kg/L
        length_m=0.10,
        width_m=0.06,
        height_m=0.018,
        air_film_coefficient_w_per_m2_k=45.0,
    )


def validation_loadout() -> WaxLoadout:
    """The single-box validation loadout (negligible blockage)."""
    return WaxLoadout(
        boxes=(validation_wax_box(),),
        material=commercial_paraffin_with_melting_point(39.0),
        zone="wax",
        blockage_fraction=0.02,
    )


@dataclass(frozen=True)
class SensorSpec:
    """One TEMPer1 USB sensor: where it reads and how it errs.

    ``box_weight`` models probe placement against the aluminum box: the
    reading mixes the local bulk air with the box surface temperature.
    This is what makes the wax's melt plateau visible in Figure 4 — a
    probe touching a 39 degC melting box in 44 degC air reads several
    degrees low, although the 70 g of wax barely moves the bulk stream.
    """

    name: str
    segment: str
    offset_c: float
    noise_sigma_c: float = 0.15
    box_weight: float = 0.0


#: The paper's three sensors: "three TEMPer1 sensors were inserted to
#: record temperatures near the box and server outlet". Offsets model
#: per-unit calibration error of the inexpensive USB sensors.
DEFAULT_SENSORS = (
    SensorSpec(name="near_box_upstream", segment="cpu_b", offset_c=+0.18),
    SensorSpec(name="near_box", segment="wax", offset_c=-0.22, box_weight=0.5),
    SensorSpec(name="outlet", segment="rear", offset_c=+0.09),
)

#: Node names a box-adjacent sensor can couple to, by experimental arm.
BOX_NODE_NAMES = ("wax[0]", "empty_box[0]")


def sensor_trace(
    sensor: SensorSpec, result: "TransientResult"
) -> np.ndarray:
    """Noise-free reading of one sensor over a transient result."""
    trace = np.array(result.air_temperatures_c[sensor.segment], dtype=float)
    if sensor.box_weight > 0.0:
        for node in BOX_NODE_NAMES:
            if node in result.temperatures_c:
                trace = (
                    (1.0 - sensor.box_weight) * trace
                    + sensor.box_weight * result.temperatures_c[node]
                )
                break
    return trace


@dataclass
class ReferenceServer:
    """The fine-grained reference model plus its sensor suite."""

    sensors: tuple[SensorSpec, ...]
    noise_seed: int
    build: Callable[[UtilizationSchedule, bool, bool, float], ThermalNetwork]

    def build_network(
        self,
        utilization: UtilizationSchedule,
        with_wax: bool = False,
        placebo: bool = False,
        inlet_temperature_c: float = 25.0,
    ) -> ThermalNetwork:
        """Assemble the reference network for one experimental arm."""
        return self.build(utilization, with_wax, placebo, inlet_temperature_c)

    def read_sensors(self, result: TransientResult) -> dict[str, np.ndarray]:
        """Sample every sensor over a transient result (noisy, seeded)."""
        rng = np.random.default_rng(self.noise_seed)
        readings: dict[str, np.ndarray] = {}
        for sensor in self.sensors:
            clean = sensor_trace(sensor, result)
            noise = rng.normal(0.0, sensor.noise_sigma_c, len(clean))
            readings[sensor.name] = clean + sensor.offset_c + noise
        return readings


def build_reference_server(
    sensors: tuple[SensorSpec, ...] = DEFAULT_SENSORS,
    noise_seed: int = 20141117,
) -> ReferenceServer:
    """Construct the fine-grained RD330 reference model.

    The airflow system (fans, impedance, duct) is shared with the coarse
    platform — it is the same physical machine — but the solid-node
    discretization and segmentation are built independently here.
    """
    coarse = one_u_commodity(with_wax_loadout=False)
    chassis = coarse.chassis
    power_model = chassis.power_model

    def build(
        utilization: UtilizationSchedule,
        with_wax: bool,
        placebo: bool,
        inlet_temperature_c: float,
    ) -> ThermalNetwork:
        if with_wax and placebo:
            raise ConfigurationError("with_wax and placebo are mutually exclusive")
        network = ThermalNetwork(name="RD330 reference")
        network.add_boundary_node("inlet", inlet_temperature_c)
        segments = {
            name: AirSegment(name)
            for name in (
                "front_disk",
                "front_panel",
                "cpu_a",
                "cpu_b",
                "wax",
                "rear",
            )
        }
        reference_flow = chassis.reference_flow_m3_s()
        start = inlet_temperature_c

        def add(
            node: str,
            zone: str,
            capacity: float,
            conductance: float,
            power: Callable[[float], float] | float,
        ) -> None:
            network.add_capacitive_node(node, capacity, start, power)
            segments[zone].couple(
                ConvectiveCoupling(
                    node_name=node,
                    reference_conductance_w_per_k=conductance,
                    reference_flow_m3_s=reference_flow,
                )
            )

        def load_power(idle_w: float, peak_w: float) -> Callable[[float], float]:
            span = peak_w - idle_w
            return lambda t: idle_w + span * utilization(t)

        # Front of chassis: drive, optical bay, panel electronics.
        add("hdd", "front_disk", 160.0, 1.5, load_power(4.0, 6.0))
        add("dvd", "front_panel", 90.0, 0.9, load_power(0.8, 1.2))
        add("panel", "front_panel", 60.0, 0.6, load_power(1.2, 1.8))

        # Sockets: die + heat sink pairs in distinct stream segments.
        for index, zone in ((0, "cpu_a"), (1, "cpu_b")):
            die = f"cpu_die[{index}]"
            sink = f"cpu_sink[{index}]"
            network.add_capacitive_node(die, 60.0, start, load_power(6.0, 46.0))
            add(sink, zone, 380.0, 2.1, 0.0)
            network.add_conductance(die, sink, 5.0)

        # Ten DIMMs, five per socket bank, modeled independently with
        # power distributed uniformly (the paper's approximation).
        for index in range(10):
            zone = "cpu_a" if index < 5 else "cpu_b"
            add(f"dimm[{index}]", zone, 40.0, 0.5, load_power(1.2, 2.0))

        # Board electronics and VRMs split across the two socket zones;
        # together they carry the residual between component power and the
        # measured wall power (as in the coarse model's board node).
        residual_idle = power_model.dc_power_w(0.0) - (
            4.0 + 0.8 + 1.2 + 2 * 6.0 + 10 * 1.2
        )
        residual_peak = power_model.dc_power_w(1.0) - (
            6.0 + 1.2 + 1.8 + 2 * 46.0 + 10 * 2.0
        )
        for index, zone in ((0, "cpu_a"), (1, "cpu_b")):
            add(
                f"board[{index}]",
                zone,
                300.0,
                2.0,
                load_power(0.5 * residual_idle, 0.5 * residual_peak),
            )

        add(
            "psu",
            "rear",
            chassis.psu_heat_capacity_j_per_k,
            chassis.psu_reference_conductance_w_per_k,
            lambda t: power_model.psu_loss_w(utilization(t)),
        )

        loadout = validation_loadout()
        box = loadout.boxes[0]
        if with_wax:
            sample = PCMSample.from_volume(
                loadout.material, box.wax_volume_m3, start
            )
            network.add_pcm_node("wax[0]", sample)
            segments["wax"].couple(
                ConvectiveCoupling(
                    node_name="wax[0]",
                    reference_conductance_w_per_k=box.conductance_w_per_k(
                        loadout.material.thermal_conductivity_w_per_m_k
                    ),
                    reference_flow_m3_s=reference_flow,
                )
            )
        elif placebo:
            aluminum_mass = 0.09  # kg: the empty sealed box
            network.add_capacitive_node(
                "empty_box[0]",
                aluminum_mass * ALUMINUM_SPECIFIC_HEAT,
                start,
            )
            segments["wax"].couple(
                ConvectiveCoupling(
                    node_name="empty_box[0]",
                    reference_conductance_w_per_k=box.conductance_w_per_k(205.0),
                    reference_flow_m3_s=reference_flow,
                )
            )

        air_path = AirPath(
            fans=chassis.fans,
            base_impedance=chassis.base_impedance,
            segments=[
                segments[name]
                for name in (
                    "front_disk",
                    "front_panel",
                    "cpu_a",
                    "cpu_b",
                    "wax",
                    "rear",
                )
            ],
            duct_area_m2=chassis.duct_area_m2,
            added_blockage_fraction=(
                loadout.blockage_fraction if (with_wax or placebo) else 0.0
            ),
            fan_speed_schedule=chassis.fan_speed_schedule(utilization),
        )
        network.set_air_path(air_path)
        network.validate()
        return network

    return ReferenceServer(sensors=sensors, noise_seed=noise_seed, build=build)
