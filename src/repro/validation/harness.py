"""The Figure 4 validation pipeline.

Protocol (paper Section 3): "60 minutes of idle time, followed by 12 hours
under heavy load ... to heat the server up until temperatures stabilize,
and then 12 hours at idle again to measure the server cooling down", run
with the wax box installed and again with the same box empty (placebo),
on both the reference ("real") server and the coarse ("Icepak-role")
model.

Reported, mirroring the paper's Figure 4:

* (a) heating-up transients of the near-box sensor for all four arms;
* (b) cooling-down transients;
* (c) steady-state (hours 6-12) temperatures per sensor, real vs model,
  with the mean absolute difference (the paper's 0.22 degC);
* the durations for which the wax measurably depresses (melting) and then
  elevates (refreezing) temperatures relative to the placebo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import TraceComparison, compare_traces
from repro.obs import get_registry, timed
from repro.server.chassis import step_utilization
from repro.server.configs import one_u_commodity
from repro.thermal.solver import TransientResult, simulate_transient
from repro.units import hours
from repro.validation.reference import (
    DEFAULT_SENSORS,
    ReferenceServer,
    build_reference_server,
    sensor_trace,
    validation_loadout,
)

#: Protocol timing: 1 h idle, 12 h loaded, 12 h idle.
LOAD_START_S = hours(1.0)
LOAD_END_S = hours(13.0)
TOTAL_S = hours(25.0)

#: Steady-state window: "between hours 6 and 12" (of load; absolute 7-13).
STEADY_WINDOW_S = (hours(7.0), hours(13.0))


@dataclass(frozen=True)
class ValidationArm:
    """One of the four experimental arms."""

    label: str
    source: str  # "real" (reference model) or "model" (coarse chassis)
    wax: bool  # wax box vs placebo (empty box)
    result: TransientResult
    sensor_traces: dict[str, np.ndarray]


@dataclass(frozen=True)
class ValidationReport:
    """Everything Figure 4 reports."""

    arms: dict[str, ValidationArm]
    steady_state_real_c: dict[str, float]
    steady_state_model_c: dict[str, float]
    steady_mean_abs_difference_c: float
    heating_comparison: TraceComparison
    cooling_comparison: TraceComparison
    wax_melt_effect_hours: float
    wax_freeze_effect_hours: float

    def arm(self, source: str, wax: bool) -> ValidationArm:
        """Look up an arm by source and wax flag."""
        return self.arms[_arm_key(source, wax)]


def _arm_key(source: str, wax: bool) -> str:
    return f"{source}-{'wax' if wax else 'placebo'}"


def _steady_mean(times_s: np.ndarray, trace: np.ndarray) -> float:
    low, high = STEADY_WINDOW_S
    mask = (times_s >= low) & (times_s <= high)
    return float(np.mean(trace[mask]))


def _effect_hours(
    times_s: np.ndarray,
    wax_trace: np.ndarray,
    placebo_trace: np.ndarray,
    threshold_c: float = 0.25,
) -> tuple[float, float]:
    """Durations for which wax depresses / elevates temperatures."""
    delta = wax_trace - placebo_trace
    dt = np.diff(times_s, prepend=times_s[0])
    depress = float(np.sum(dt[delta < -threshold_c])) / 3600.0
    elevate = float(np.sum(dt[delta > threshold_c])) / 3600.0
    return depress, elevate


@timed("validation.run")
def run_validation(
    inlet_temperature_c: float = 25.0,
    output_interval_s: float = 120.0,
    reference: ReferenceServer | None = None,
) -> ValidationReport:
    """Run the four-arm Figure 4 protocol and compare the models."""
    reference = reference or build_reference_server()
    utilization = step_utilization(0.0, 1.0, LOAD_START_S, LOAD_END_S)

    coarse_spec = one_u_commodity().with_wax_material(
        validation_loadout().material
    )
    coarse_chassis = coarse_spec.chassis.with_wax_loadout(validation_loadout())

    obs = get_registry()
    arms: dict[str, ValidationArm] = {}
    for wax in (True, False):
        obs.count("validation.arms", 2)
        network = reference.build_network(
            utilization,
            with_wax=wax,
            placebo=not wax,
            inlet_temperature_c=inlet_temperature_c,
        )
        result = simulate_transient(network, TOTAL_S, output_interval_s)
        arms[_arm_key("real", wax)] = ValidationArm(
            label=f"Real {'Wax' if wax else 'Placebo'}",
            source="real",
            wax=wax,
            result=result,
            sensor_traces=reference.read_sensors(result),
        )

        coarse_network = coarse_chassis.build_network(
            utilization,
            inlet_temperature_c=inlet_temperature_c,
            with_wax=wax,
            placebo=not wax,
        )
        coarse_result = simulate_transient(coarse_network, TOTAL_S, output_interval_s)
        # The coarse model has one mid-chassis segmentation; probe the
        # closest segments to each physical sensor location, with the same
        # box-proximity mixing the physical sensors have.
        segment_map = {"cpu_b": "cpu", "wax": "wax", "rear": "rear"}
        model_traces = {}
        for sensor in DEFAULT_SENSORS:
            mapped = type(sensor)(
                name=sensor.name,
                segment=segment_map[sensor.segment],
                offset_c=0.0,
                box_weight=sensor.box_weight,
            )
            model_traces[sensor.name] = sensor_trace(mapped, coarse_result)
        arms[_arm_key("model", wax)] = ValidationArm(
            label=f"Icepak {'Wax' if wax else 'Placebo'}",
            source="model",
            wax=wax,
            result=coarse_result,
            sensor_traces=model_traces,
        )

    real_wax = arms[_arm_key("real", True)]
    model_wax = arms[_arm_key("model", True)]
    real_placebo = arms[_arm_key("real", False)]

    times = real_wax.result.times_s
    steady_real = {
        name: _steady_mean(times, trace)
        for name, trace in real_wax.sensor_traces.items()
    }
    steady_model = {
        name: _steady_mean(model_wax.result.times_s, trace)
        for name, trace in model_wax.sensor_traces.items()
    }
    steady_diff = float(
        np.mean(
            [abs(steady_model[name] - steady_real[name]) for name in steady_real]
        )
    )

    heat_mask = times <= hours(7.0)
    cool_mask = times >= hours(12.0)
    near_real = real_wax.sensor_traces["near_box"]
    near_model = model_wax.sensor_traces["near_box"]
    heating = compare_traces(near_real[heat_mask], near_model[heat_mask])
    cooling = compare_traces(near_real[cool_mask], near_model[cool_mask])

    melt_hours, freeze_hours = _effect_hours(
        times,
        real_wax.sensor_traces["near_box"],
        real_placebo.sensor_traces["near_box"],
    )

    return ValidationReport(
        arms=arms,
        steady_state_real_c=steady_real,
        steady_state_model_c=steady_model,
        steady_mean_abs_difference_c=steady_diff,
        heating_comparison=heating,
        cooling_comparison=cooling,
        wax_melt_effect_hours=melt_hours,
        wax_freeze_effect_hours=freeze_hours,
    )
