"""Candidate PCM materials surveyed by the paper (Table 1 and Section 2.1).

Table 1 of the paper compares five classes of solid-liquid PCM on melting
temperature, heat of fusion, density, stability, electrical conductivity and
corrosivity. The paper concludes:

* salt hydrates and metal alloys: high energy density but poor cycling
  stability; metal alloy melting points far above datacenter temperatures;
  salt hydrates corrosive;
* fatty acids: corrosive, stability unknown;
* n-paraffins (eicosane et al.): excellent stability, non-corrosive,
  non-conductive, 247 J/g — but $75,000/ton (Sigma-Aldrich quote), cost
  prohibitive at datacenter volume;
* commercial-grade paraffin: slightly lower heat of fusion (200 J/g) but
  $1,000-2,000/ton on the bulk market — "50x cheaper for 20% lower energy
  per gram", the material the paper selects.

This module encodes that table as data plus representative
:class:`~repro.materials.pcm.PCMMaterial` instances usable in simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.units import grams_per_ml, joules_per_gram


class Stability(enum.Enum):
    """Qualitative cycling stability over repeated melt/freeze cycles."""

    POOR = 0
    UNKNOWN = 1
    GOOD = 2
    VERY_GOOD = 3
    EXCELLENT = 4


class Conductivity(enum.Enum):
    """Qualitative electrical conductivity (leak-risk criterion)."""

    VERY_LOW = 0
    UNKNOWN = 1
    HIGH = 2


@dataclass(frozen=True)
class MaterialClass:
    """One row of the paper's Table 1: a class of solid-liquid PCM.

    Ranges are (low, high) tuples in the paper's units: melting temperature
    in degC, heat of fusion in J/g, density in g/ml.
    """

    name: str
    melting_temp_range_c: tuple[float, float]
    heat_of_fusion_range_j_per_g: tuple[float, float]
    density_range_g_per_ml: tuple[float, float]
    stability: Stability
    electrical_conductivity: Conductivity
    corrosive: bool

    def __post_init__(self) -> None:
        for label, (low, high) in (
            ("melting temperature", self.melting_temp_range_c),
            ("heat of fusion", self.heat_of_fusion_range_j_per_g),
            ("density", self.density_range_g_per_ml),
        ):
            if low > high:
                raise ConfigurationError(
                    f"{self.name}: {label} range is inverted ({low} > {high})"
                )

    def melting_temp_overlaps(self, low_c: float, high_c: float) -> bool:
        """Whether any member of the class melts within [low_c, high_c]."""
        return self.melting_temp_range_c[0] <= high_c and (
            self.melting_temp_range_c[1] >= low_c
        )

    def representative_material(
        self, melting_point_c: float | None = None
    ) -> PCMMaterial:
        """Build a simulatable material at the midpoint (or given melting
        point) of the class's property ranges."""
        temp_low, temp_high = self.melting_temp_range_c
        if melting_point_c is None:
            melting_point_c = 0.5 * (temp_low + temp_high)
        elif not temp_low <= melting_point_c <= temp_high:
            raise ConfigurationError(
                f"{self.name}: requested melting point {melting_point_c} degC "
                f"outside class range [{temp_low}, {temp_high}]"
            )
        fusion = 0.5 * sum(self.heat_of_fusion_range_j_per_g)
        density = 0.5 * sum(self.density_range_g_per_ml)
        return PCMMaterial(
            name=f"{self.name} (representative)",
            melting_point_c=melting_point_c,
            heat_of_fusion_j_per_kg=joules_per_gram(fusion),
            density_solid_kg_per_m3=grams_per_ml(density),
            density_liquid_kg_per_m3=grams_per_ml(density) * 0.9,
        )


# --------------------------------------------------------------------------
# Table 1: Properties of common solid-liquid PCMs.
#
# "Metal Alloys" heat of fusion and density are given qualitatively ("High")
# in the paper; representative quantitative values are used here (typical
# low-melting alloys run 300-500 degC with tens of J/g but very high density,
# yielding a high volumetric heat).
# --------------------------------------------------------------------------

SALT_HYDRATES = MaterialClass(
    name="Salt Hydrates",
    melting_temp_range_c=(25.0, 70.0),
    heat_of_fusion_range_j_per_g=(240.0, 250.0),
    density_range_g_per_ml=(1.5, 2.0),
    stability=Stability.POOR,
    electrical_conductivity=Conductivity.HIGH,
    corrosive=True,
)

METAL_ALLOYS = MaterialClass(
    name="Metal Alloys",
    melting_temp_range_c=(300.0, 660.0),
    heat_of_fusion_range_j_per_g=(60.0, 110.0),
    density_range_g_per_ml=(7.0, 9.0),
    stability=Stability.POOR,
    electrical_conductivity=Conductivity.HIGH,
    corrosive=False,
)

FATTY_ACIDS = MaterialClass(
    name="Fatty Acids",
    melting_temp_range_c=(16.0, 75.0),
    heat_of_fusion_range_j_per_g=(150.0, 220.0),
    density_range_g_per_ml=(0.8, 1.0),
    stability=Stability.UNKNOWN,
    electrical_conductivity=Conductivity.UNKNOWN,
    corrosive=True,
)

N_PARAFFINS = MaterialClass(
    name="n-Paraffins",
    melting_temp_range_c=(6.0, 65.0),
    heat_of_fusion_range_j_per_g=(230.0, 250.0),
    density_range_g_per_ml=(0.7, 0.8),
    stability=Stability.EXCELLENT,
    electrical_conductivity=Conductivity.VERY_LOW,
    corrosive=False,
)

COMMERCIAL_PARAFFINS = MaterialClass(
    name="Commercial Paraffins",
    melting_temp_range_c=(40.0, 60.0),
    heat_of_fusion_range_j_per_g=(200.0, 200.0),
    density_range_g_per_ml=(0.7, 0.8),
    stability=Stability.VERY_GOOD,
    electrical_conductivity=Conductivity.VERY_LOW,
    corrosive=False,
)

#: The five rows of Table 1, in the paper's order.
MATERIAL_CLASSES: tuple[MaterialClass, ...] = (
    SALT_HYDRATES,
    METAL_ALLOYS,
    FATTY_ACIDS,
    N_PARAFFINS,
    COMMERCIAL_PARAFFINS,
)


# --------------------------------------------------------------------------
# Concrete materials used in the paper's experiments
# --------------------------------------------------------------------------

#: Eicosane (C20H42): the n-paraffin studied for computational sprinting.
#: 247 J/g, melts at 36.6 degC, quoted at $75,000/ton — cost prohibitive at
#: datacenter scale (paper Section 2.1).
EICOSANE = PCMMaterial(
    name="Eicosane (n-paraffin)",
    melting_point_c=36.6,
    heat_of_fusion_j_per_kg=joules_per_gram(247.0),
    density_solid_kg_per_m3=grams_per_ml(0.789),
    density_liquid_kg_per_m3=grams_per_ml(0.769),
    melting_range_c=0.5,
    cost_usd_per_tonne=75_000.0,
)

#: Commercial-grade paraffin: the material the paper selects and validates.
#: 200 J/g conservative heat of fusion; the wax the authors purchased melted
#: at 39 degC; bulk price $1,000-2,000/ton (midpoint used).
COMMERCIAL_PARAFFIN = PCMMaterial(
    name="Commercial-grade paraffin",
    melting_point_c=39.0,
    heat_of_fusion_j_per_kg=joules_per_gram(200.0),
    density_solid_kg_per_m3=grams_per_ml(0.80),
    density_liquid_kg_per_m3=grams_per_ml(0.72),
    melting_range_c=1.5,
    cost_usd_per_tonne=1_500.0,
)


def commercial_paraffin_with_melting_point(melting_point_c: float) -> PCMMaterial:
    """Commercial paraffin blended to a specific melting point.

    The paper exploits the 40-60 degC melting range available on the bulk
    market (plus the 39 degC wax they measured) to pick the melting threshold
    that minimizes each cluster's peak cooling load; this constructor models
    that selection. Melting points in [35, 62] degC are accepted to cover the
    measured 39 degC product and small blend margins.
    """
    if not 35.0 <= melting_point_c <= 62.0:
        raise ConfigurationError(
            "commercial paraffin is available with melting points of roughly "
            f"40-60 degC (39 degC measured); got {melting_point_c}"
        )
    return PCMMaterial(
        name=f"Commercial-grade paraffin ({melting_point_c:.1f} degC)",
        melting_point_c=melting_point_c,
        heat_of_fusion_j_per_kg=COMMERCIAL_PARAFFIN.heat_of_fusion_j_per_kg,
        density_solid_kg_per_m3=COMMERCIAL_PARAFFIN.density_solid_kg_per_m3,
        density_liquid_kg_per_m3=COMMERCIAL_PARAFFIN.density_liquid_kg_per_m3,
        melting_range_c=COMMERCIAL_PARAFFIN.melting_range_c,
        cost_usd_per_tonne=COMMERCIAL_PARAFFIN.cost_usd_per_tonne,
    )
