"""Phase change material (PCM) models.

This package provides:

* :class:`~repro.materials.pcm.PCMMaterial` — thermophysical description of
  a phase change material with an enthalpy-method temperature/enthalpy map.
* :mod:`~repro.materials.library` — the candidate materials the paper
  surveys in Table 1, including eicosane and commercial-grade paraffin.
* :mod:`~repro.materials.selection` — the suitability screening and scoring
  the paper applies in Section 2.1.
* :mod:`~repro.materials.cost` — bulk wax pricing and per-server WaxCapEx.
"""

from repro.materials.pcm import PCMMaterial, PCMSample, PhaseState
from repro.materials.library import (
    COMMERCIAL_PARAFFIN,
    EICOSANE,
    MATERIAL_CLASSES,
    MaterialClass,
    Stability,
    commercial_paraffin_with_melting_point,
)
from repro.materials.selection import (
    DatacenterRequirements,
    SelectionReport,
    screen_material,
    select_material,
)
from repro.materials.cost import WaxCostModel
from repro.materials.degradation import (
    DegradationModel,
    LifetimeAssessment,
    assess_lifetime,
)

__all__ = [
    "DegradationModel",
    "LifetimeAssessment",
    "assess_lifetime",
    "PCMMaterial",
    "PCMSample",
    "PhaseState",
    "MaterialClass",
    "Stability",
    "MATERIAL_CLASSES",
    "EICOSANE",
    "COMMERCIAL_PARAFFIN",
    "commercial_paraffin_with_melting_point",
    "DatacenterRequirements",
    "SelectionReport",
    "screen_material",
    "select_material",
    "WaxCostModel",
]
