"""Bulk wax cost model (paper Sections 2.1 and 4.3).

Two cost facts drive the paper's material choice and TCO accounting:

* eicosane n-paraffin: $75,000/ton (Sigma-Aldrich mass-production quote) —
  "even in a relatively small datacenter the cost of equipping every server
  with eicosane would be over a million dollars in wax costs alone";
* commercial-grade paraffin: $1,000-2,000/ton bulk — 50x cheaper for 20%
  lower energy per gram.

The TCO model amortizes WaxCapEx (wax + aluminum containers) into the
server capital expenditure; Table 2 lists it at $0.06-0.10/server/month,
"less than 0.1% of the ServerCapEx".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.materials.pcm import PCMMaterial
from repro.units import KG_PER_METRIC_TON, to_liters


@dataclass(frozen=True)
class WaxCostModel:
    """Costs of equipping servers with contained PCM.

    Parameters
    ----------
    container_cost_usd_per_liter:
        Cost of sealed aluminum containment per liter of wax capacity.
    amortization_months:
        Months over which WaxCapEx is amortized (the paper amortizes server
        CapEx over a 4-year server lifespan).
    """

    container_cost_usd_per_liter: float = 2.0
    amortization_months: int = 48

    def __post_init__(self) -> None:
        if self.container_cost_usd_per_liter < 0:
            raise ConfigurationError("container cost must be non-negative")
        if self.amortization_months <= 0:
            raise ConfigurationError("amortization period must be positive")

    def wax_cost_usd(self, material: PCMMaterial, volume_m3: float) -> float:
        """Material cost of a solid-fill volume of wax."""
        if material.cost_usd_per_tonne is None:
            raise ConfigurationError(
                f"{material.name} has no quoted bulk cost; cannot price it"
            )
        mass_kg = material.mass_for_volume(volume_m3)
        return material.cost_usd_per_tonne * mass_kg / KG_PER_METRIC_TON

    def container_cost_usd(self, volume_m3: float) -> float:
        """Cost of the aluminum containment for a wax volume."""
        return self.container_cost_usd_per_liter * to_liters(volume_m3)

    def capex_per_server_usd(
        self, material: PCMMaterial, volume_m3_per_server: float
    ) -> float:
        """One-time wax + container cost per server."""
        return self.wax_cost_usd(material, volume_m3_per_server) + (
            self.container_cost_usd(volume_m3_per_server)
        )

    def monthly_capex_per_server_usd(
        self, material: PCMMaterial, volume_m3_per_server: float
    ) -> float:
        """Amortized monthly WaxCapEx per server (Table 2's $0.06-0.10)."""
        return (
            self.capex_per_server_usd(material, volume_m3_per_server)
            / self.amortization_months
        )

    def datacenter_wax_cost_usd(
        self,
        material: PCMMaterial,
        volume_m3_per_server: float,
        server_count: int,
    ) -> float:
        """Total wax+container bill for a whole deployment.

        Used to reproduce the paper's eicosane-vs-commercial comparison:
        equipping every server of a modest datacenter with eicosane exceeds
        $1M in wax alone, while commercial paraffin is tens of thousands.
        """
        if server_count < 0:
            raise ConfigurationError("server count must be non-negative")
        return server_count * self.capex_per_server_usd(
            material, volume_m3_per_server
        )
