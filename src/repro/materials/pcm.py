"""Thermophysical model of a phase change material (enthalpy method).

The paper integrates PCM into servers and relies on the latent heat of the
solid-liquid transition to absorb energy at a roughly constant temperature.
The standard numerical treatment (used by Icepak itself) is the *enthalpy
method*: the conserved state variable is specific enthalpy ``h`` and the
temperature is recovered through a piecewise-linear ``T(h)`` map:

* below the solidus, ``h`` is sensible heat of the solid phase;
* between solidus and liquidus, ``h`` traverses the latent heat of fusion
  while temperature moves only across the (narrow) melting range — for a
  molecularly pure paraffin such as eicosane this range is a fraction of a
  degree, while commercial-grade paraffin is a mixture and melts over a few
  degrees;
* above the liquidus, ``h`` is sensible heat of the liquid phase.

Using enthalpy as the state variable keeps the energy balance exact across
the phase transition and makes melt fraction a simple affine function of
``h``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class PhaseState(enum.Enum):
    """Discrete phase classification of a PCM sample."""

    SOLID = "solid"
    MELTING = "melting"
    LIQUID = "liquid"


@dataclass(frozen=True)
class PCMMaterial:
    """Thermophysical properties of a phase change material.

    Parameters
    ----------
    name:
        Human-readable material name.
    melting_point_c:
        Nominal melting temperature in degrees Celsius. The melting interval
        is centred on this value.
    heat_of_fusion_j_per_kg:
        Latent heat of the solid-liquid transition, J/kg.
    density_solid_kg_per_m3 / density_liquid_kg_per_m3:
        Phase densities. Volumetric energy density uses the *solid* density
        because containers are filled with solid wax (with headspace for
        expansion, per the paper's 90 ml wax + 10 ml airspace).
    specific_heat_solid_j_per_kg_k / specific_heat_liquid_j_per_kg_k:
        Sensible heats of each phase.
    melting_range_c:
        Width of the melting interval in degrees Celsius. Must be positive;
        pure substances use a small but non-zero width for numerical
        regularity.
    thermal_conductivity_w_per_m_k:
        Bulk conductivity of the material (paraffins are poor conductors,
        ~0.2 W/(m K); the paper notes multi-container surface area, rather
        than embedded metal mesh, is the economic way to speed melting).
    cost_usd_per_tonne:
        Bulk price per metric ton, if known (None otherwise).
    """

    name: str
    melting_point_c: float
    heat_of_fusion_j_per_kg: float
    density_solid_kg_per_m3: float
    density_liquid_kg_per_m3: float
    specific_heat_solid_j_per_kg_k: float = 2100.0
    specific_heat_liquid_j_per_kg_k: float = 2200.0
    melting_range_c: float = 2.0
    thermal_conductivity_w_per_m_k: float = 0.21
    cost_usd_per_tonne: float | None = None

    def __post_init__(self) -> None:
        if self.heat_of_fusion_j_per_kg <= 0:
            raise ConfigurationError(
                f"{self.name}: heat of fusion must be positive, got "
                f"{self.heat_of_fusion_j_per_kg}"
            )
        if self.density_solid_kg_per_m3 <= 0 or self.density_liquid_kg_per_m3 <= 0:
            raise ConfigurationError(f"{self.name}: densities must be positive")
        if self.specific_heat_solid_j_per_kg_k <= 0:
            raise ConfigurationError(f"{self.name}: solid specific heat must be positive")
        if self.specific_heat_liquid_j_per_kg_k <= 0:
            raise ConfigurationError(f"{self.name}: liquid specific heat must be positive")
        if self.melting_range_c <= 0:
            raise ConfigurationError(
                f"{self.name}: melting range must be positive (use a small "
                f"value for pure substances), got {self.melting_range_c}"
            )

    # -- derived temperatures ------------------------------------------------

    @property
    def solidus_c(self) -> float:
        """Temperature below which the material is fully solid."""
        return self.melting_point_c - 0.5 * self.melting_range_c

    @property
    def liquidus_c(self) -> float:
        """Temperature above which the material is fully liquid."""
        return self.melting_point_c + 0.5 * self.melting_range_c

    # -- derived energy quantities -------------------------------------------

    @property
    def volumetric_latent_heat_j_per_m3(self) -> float:
        """Latent heat per cubic meter of (solid) material."""
        return self.heat_of_fusion_j_per_kg * self.density_solid_kg_per_m3

    def mass_for_volume(self, volume_m3: float) -> float:
        """Mass in kg of a given solid-fill volume."""
        if volume_m3 < 0:
            raise ConfigurationError(f"volume must be non-negative, got {volume_m3}")
        return volume_m3 * self.density_solid_kg_per_m3

    def latent_capacity_j(self, volume_m3: float) -> float:
        """Total latent storage (J) of a given solid-fill volume."""
        return self.mass_for_volume(volume_m3) * self.heat_of_fusion_j_per_kg

    # -- enthalpy method -----------------------------------------------------
    #
    # Specific enthalpy datum: h = 0 at the solidus. Negative h is subcooled
    # solid; h in [0, L] is the mushy zone; h > L is superheated liquid.

    def enthalpy_at_temperature(self, temperature_c: float) -> float:
        """Specific enthalpy (J/kg) at a temperature, taking the solid branch
        below the solidus and the liquid branch above the liquidus.

        Inside the melting interval the map ``T(h)`` is not invertible to a
        single enthalpy; this function returns the enthalpy consistent with
        the local melt fraction implied by linear interpolation across the
        interval (the standard mushy-zone closure).
        """
        if temperature_c <= self.solidus_c:
            return (temperature_c - self.solidus_c) * self.specific_heat_solid_j_per_kg_k
        if temperature_c >= self.liquidus_c:
            return (
                self.heat_of_fusion_j_per_kg
                + (temperature_c - self.liquidus_c) * self.specific_heat_liquid_j_per_kg_k
            )
        fraction = (temperature_c - self.solidus_c) / self.melting_range_c
        return fraction * self.heat_of_fusion_j_per_kg

    def temperature_at_enthalpy(self, enthalpy_j_per_kg: float) -> float:
        """Temperature (degC) for a specific enthalpy (J/kg)."""
        if enthalpy_j_per_kg <= 0:
            return self.solidus_c + enthalpy_j_per_kg / self.specific_heat_solid_j_per_kg_k
        if enthalpy_j_per_kg >= self.heat_of_fusion_j_per_kg:
            excess = enthalpy_j_per_kg - self.heat_of_fusion_j_per_kg
            return self.liquidus_c + excess / self.specific_heat_liquid_j_per_kg_k
        fraction = enthalpy_j_per_kg / self.heat_of_fusion_j_per_kg
        return self.solidus_c + fraction * self.melting_range_c

    def melt_fraction_at_enthalpy(self, enthalpy_j_per_kg: float) -> float:
        """Liquid mass fraction in [0, 1] at a specific enthalpy."""
        if enthalpy_j_per_kg <= 0:
            return 0.0
        if enthalpy_j_per_kg >= self.heat_of_fusion_j_per_kg:
            return 1.0
        return enthalpy_j_per_kg / self.heat_of_fusion_j_per_kg

    def effective_specific_heat(self, enthalpy_j_per_kg: float) -> float:
        """dh/dT at an enthalpy state (J/(kg K)); large in the mushy zone.

        This is the apparent-heat-capacity view of the enthalpy method and is
        what makes PCM a powerful thermal buffer: within the melting interval
        the material behaves like a substance with an enormous specific heat.
        """
        if enthalpy_j_per_kg < 0:
            return self.specific_heat_solid_j_per_kg_k
        if enthalpy_j_per_kg > self.heat_of_fusion_j_per_kg:
            return self.specific_heat_liquid_j_per_kg_k
        return self.heat_of_fusion_j_per_kg / self.melting_range_c


@dataclass
class PCMSample:
    """A concrete quantity of a PCM material with mutable thermal state.

    The sample tracks total enthalpy ``H = m * h`` in joules. It is the unit
    of PCM bookkeeping used by both the detailed chassis thermal model and
    the lumped per-server model inside the datacenter simulator.
    """

    material: PCMMaterial
    mass_kg: float
    enthalpy_j: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ConfigurationError(f"sample mass must be positive, got {self.mass_kg}")
        if not math.isfinite(self.enthalpy_j):
            raise ConfigurationError("sample enthalpy must be finite")

    @classmethod
    def from_volume(
        cls,
        material: PCMMaterial,
        volume_m3: float,
        initial_temperature_c: float | None = None,
    ) -> "PCMSample":
        """Create a sample from a solid-fill volume, optionally equilibrated
        to an initial temperature."""
        mass = material.mass_for_volume(volume_m3)
        sample = cls(material=material, mass_kg=mass)
        if initial_temperature_c is not None:
            sample.set_temperature(initial_temperature_c)
        return sample

    # -- state queries ---------------------------------------------------------

    @property
    def specific_enthalpy_j_per_kg(self) -> float:
        """Per-kilogram enthalpy of the sample."""
        return self.enthalpy_j / self.mass_kg

    @property
    def temperature_c(self) -> float:
        """Sample temperature implied by the enthalpy state."""
        return self.material.temperature_at_enthalpy(self.specific_enthalpy_j_per_kg)

    @property
    def melt_fraction(self) -> float:
        """Liquid mass fraction in [0, 1]."""
        return self.material.melt_fraction_at_enthalpy(self.specific_enthalpy_j_per_kg)

    @property
    def phase(self) -> PhaseState:
        """Discrete phase classification."""
        fraction = self.melt_fraction
        if fraction <= 0.0:
            return PhaseState.SOLID
        if fraction >= 1.0:
            return PhaseState.LIQUID
        return PhaseState.MELTING

    @property
    def latent_capacity_j(self) -> float:
        """Total latent heat the sample can absorb from fully solid."""
        return self.mass_kg * self.material.heat_of_fusion_j_per_kg

    @property
    def remaining_latent_capacity_j(self) -> float:
        """Latent heat the sample can still absorb before fully melting."""
        return (1.0 - self.melt_fraction) * self.latent_capacity_j

    @property
    def stored_latent_heat_j(self) -> float:
        """Latent heat currently stored (what resolidifying would release)."""
        return self.melt_fraction * self.latent_capacity_j

    def heat_capacity_j_per_k(self) -> float:
        """Apparent heat capacity (J/K) at the current state."""
        return self.mass_kg * self.material.effective_specific_heat(
            self.specific_enthalpy_j_per_kg
        )

    # -- state mutation ----------------------------------------------------------

    def set_temperature(self, temperature_c: float) -> None:
        """Equilibrate the sample to a temperature.

        Inside the melting interval this sets the melt fraction implied by
        the mushy-zone interpolation.
        """
        self.enthalpy_j = self.mass_kg * self.material.enthalpy_at_temperature(
            temperature_c
        )

    def add_heat(self, heat_j: float) -> None:
        """Add (or with a negative argument, remove) heat from the sample."""
        if not math.isfinite(heat_j):
            raise ConfigurationError("heat added to a PCM sample must be finite")
        self.enthalpy_j += heat_j

    def copy(self) -> "PCMSample":
        """Independent copy of the sample (same material object)."""
        return PCMSample(
            material=self.material, mass_kg=self.mass_kg, enthalpy_j=self.enthalpy_j
        )
