"""PCM suitability screening and selection (paper Section 2.1).

The paper evaluates candidate PCMs against datacenter requirements:

* melting temperature between the idle and peak internal air temperatures
  (the paper states "usually between 30 to 60 degC");
* high energy density (heat of fusion x density) to maximize storage in the
  small free volume inside a server;
* stability over thousands of melt/freeze cycles (one cycle per day for a
  multi-year deployment);
* non-corrosive and electrically non-conductive, to limit damage if the
  containment leaks;
* acceptable bulk cost at thousands-of-servers volume.

:func:`screen_material` applies these as hard pass/fail criteria to a
:class:`~repro.materials.library.MaterialClass`;
:func:`select_material` reproduces the paper's conclusion by screening all
of Table 1 and ranking survivors on energy density per dollar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.materials.library import (
    COMMERCIAL_PARAFFINS,
    MATERIAL_CLASSES,
    Conductivity,
    MaterialClass,
    Stability,
)


@dataclass(frozen=True)
class DatacenterRequirements:
    """Hard requirements a PCM must meet for datacenter deployment.

    Defaults encode the paper's stated criteria: a 30-60 degC melting
    window, daily cycling over a four-year server lifespan (~1,500 cycles,
    which paraffin's >1,000-cycle stability satisfies), no corrosion risk,
    no electrical conduction risk, and a bulk budget of a few thousand
    dollars per ton.
    """

    melting_window_c: tuple[float, float] = (30.0, 60.0)
    min_stability: Stability = Stability.GOOD
    allow_corrosive: bool = False
    allow_conductive: bool = False
    max_cost_usd_per_tonne: float | None = 5_000.0

    def __post_init__(self) -> None:
        low, high = self.melting_window_c
        if low >= high:
            raise ConfigurationError(
                f"melting window is inverted: [{low}, {high}]"
            )


@dataclass
class ScreeningResult:
    """Outcome of screening one material class against requirements."""

    material_class: MaterialClass
    passed: bool
    failures: list[str] = field(default_factory=list)
    #: Volumetric energy density in J/ml at class-midpoint properties.
    energy_density_j_per_ml: float = 0.0

    @property
    def name(self) -> str:
        """Name of the screened material class."""
        return self.material_class.name


@dataclass
class SelectionReport:
    """Full screening of a candidate list plus the selected winner."""

    requirements: DatacenterRequirements
    results: list[ScreeningResult]
    selected: MaterialClass | None

    def result_for(self, name: str) -> ScreeningResult:
        """Look up the screening result for a material class by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def survivors(self) -> list[ScreeningResult]:
        """Results that passed every hard requirement."""
        return [result for result in self.results if result.passed]


def _midpoint_energy_density_j_per_ml(material_class: MaterialClass) -> float:
    """Volumetric latent heat (J/ml) at the midpoint of the class ranges."""
    fusion_j_per_g = 0.5 * sum(material_class.heat_of_fusion_range_j_per_g)
    density_g_per_ml = 0.5 * sum(material_class.density_range_g_per_ml)
    return fusion_j_per_g * density_g_per_ml


def screen_material(
    material_class: MaterialClass,
    requirements: DatacenterRequirements | None = None,
    cost_usd_per_tonne: float | None = None,
) -> ScreeningResult:
    """Apply the paper's hard criteria to one material class.

    Parameters
    ----------
    material_class:
        The Table 1 row to screen.
    requirements:
        Deployment requirements; defaults to the paper's.
    cost_usd_per_tonne:
        Bulk cost of the class, if known. ``None`` skips the cost screen
        (the paper treats unknown cost as a research question, not a veto,
        for classes that already fail other criteria).
    """
    requirements = requirements or DatacenterRequirements()
    failures: list[str] = []

    low, high = requirements.melting_window_c
    if not material_class.melting_temp_overlaps(low, high):
        failures.append(
            f"melting temperature {material_class.melting_temp_range_c} degC "
            f"outside datacenter window [{low}, {high}] degC"
        )
    if material_class.stability.value < requirements.min_stability.value:
        failures.append(
            f"cycling stability {material_class.stability.name} below "
            f"required {requirements.min_stability.name}"
        )
    if material_class.corrosive and not requirements.allow_corrosive:
        failures.append("corrosive on leakage")
    if (
        material_class.electrical_conductivity is Conductivity.HIGH
        and not requirements.allow_conductive
    ):
        failures.append("electrically conductive on leakage")
    if (
        cost_usd_per_tonne is not None
        and requirements.max_cost_usd_per_tonne is not None
        and cost_usd_per_tonne > requirements.max_cost_usd_per_tonne
    ):
        failures.append(
            f"bulk cost ${cost_usd_per_tonne:,.0f}/ton exceeds budget "
            f"${requirements.max_cost_usd_per_tonne:,.0f}/ton"
        )

    return ScreeningResult(
        material_class=material_class,
        passed=not failures,
        failures=failures,
        energy_density_j_per_ml=_midpoint_energy_density_j_per_ml(material_class),
    )


#: Bulk costs known to the paper, $/metric ton. Only paraffin classes have
#: quoted prices; eicosane's quote is used for the n-paraffin class.
KNOWN_CLASS_COSTS_USD_PER_TONNE: dict[str, float] = {
    "n-Paraffins": 75_000.0,
    "Commercial Paraffins": 1_500.0,
}


def select_material(
    requirements: DatacenterRequirements | None = None,
    candidates: tuple[MaterialClass, ...] = MATERIAL_CLASSES,
) -> SelectionReport:
    """Screen all candidates and select the best survivor.

    Survivors are ranked by volumetric energy density; with the paper's
    default requirements the sole survivor is commercial-grade paraffin,
    matching the paper's Section 2.1 conclusion (n-paraffins pass every
    physical screen but fail on cost).
    """
    requirements = requirements or DatacenterRequirements()
    results = [
        screen_material(
            material_class,
            requirements,
            cost_usd_per_tonne=KNOWN_CLASS_COSTS_USD_PER_TONNE.get(
                material_class.name
            ),
        )
        for material_class in candidates
    ]
    survivors = [result for result in results if result.passed]
    selected: MaterialClass | None = None
    if survivors:
        selected = max(
            survivors, key=lambda result: result.energy_density_j_per_ml
        ).material_class
    return SelectionReport(
        requirements=requirements, results=results, selected=selected
    )


def paper_selection() -> MaterialClass:
    """The paper's pick under its own requirements (commercial paraffin)."""
    report = select_material()
    if report.selected is not COMMERCIAL_PARAFFINS:
        raise ConfigurationError(
            "selection under paper defaults no longer yields commercial "
            "paraffin; library data or screening logic has drifted"
        )
    return COMMERCIAL_PARAFFINS
