"""PCM cycling-stability and lifetime models (paper Section 2.1).

Table 1's stability column is decisive in the paper's material choice:
salt hydrates and metal alloys show "poor stability over repeated phase
changes" (solid-solid candidates degrade "in as few as 100 cycles"), while
"paraffin is also highly stable, with negligible deviation from the
initial heat of fusion after more than 1,000 melting cycles".

This module turns those qualitative rows into a quantitative lifetime
model: an exponential capacity-fade law per melt/freeze cycle, fitted to
each stability class, plus the deployment consequence — how much of the
first-year peak-shaving capability remains after N years of daily
cycling, and when the wax must be replaced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.materials.library import Stability

#: Per-cycle retention fitted to the paper's qualitative anchors:
#: POOR loses ~30% of capacity within ~100 cycles; EXCELLENT paraffin
#: retains ~99%+ after 1,000 cycles ("negligible deviation").
_RETENTION_PER_CYCLE: dict[Stability, float] = {
    Stability.POOR: 0.9965,       # ~30% lost by cycle 100
    Stability.UNKNOWN: 0.9990,    # conservative placeholder
    Stability.GOOD: 0.99995,      # ~5% lost by cycle 1000
    Stability.VERY_GOOD: 0.99998, # ~2% lost by cycle 1000
    Stability.EXCELLENT: 0.999995,  # ~0.5% lost by cycle 1000
}


@dataclass(frozen=True)
class DegradationModel:
    """Exponential capacity fade of a PCM under melt/freeze cycling.

    ``capacity(n) = retention_per_cycle ** n`` of the initial heat of
    fusion; one cycle per day in the datacenter deployment.
    """

    retention_per_cycle: float

    def __post_init__(self) -> None:
        if not 0.0 < self.retention_per_cycle <= 1.0:
            raise ConfigurationError(
                f"per-cycle retention must be in (0, 1], got "
                f"{self.retention_per_cycle}"
            )

    @classmethod
    def for_stability(cls, stability: Stability) -> "DegradationModel":
        """Model fitted to a Table 1 stability class."""
        return cls(retention_per_cycle=_RETENTION_PER_CYCLE[stability])

    def remaining_capacity_fraction(self, cycles: int) -> float:
        """Fraction of the initial heat of fusion left after N cycles."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        return self.retention_per_cycle**cycles

    def cycles_to_fraction(self, fraction: float) -> int:
        """Cycles until capacity first falls to a fraction of initial."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"target fraction must be in (0, 1), got {fraction}"
            )
        if self.retention_per_cycle >= 1.0:
            return int(1e12)  # effectively never
        return math.ceil(
            math.log(fraction) / math.log(self.retention_per_cycle)
        )

    def years_to_fraction(
        self, fraction: float, cycles_per_day: float = 1.0
    ) -> float:
        """Years of service until capacity falls to a fraction (daily
        diurnal cycling by default)."""
        if cycles_per_day <= 0:
            raise ConfigurationError("cycles per day must be positive")
        return self.cycles_to_fraction(fraction) / (cycles_per_day * 365.0)


@dataclass(frozen=True)
class LifetimeAssessment:
    """Deployment-lifetime consequences of a PCM's cycling stability."""

    stability: Stability
    service_years: float
    cycles: int
    remaining_capacity_fraction: float
    survives_server_lifetime: bool


def assess_lifetime(
    stability: Stability,
    service_years: float = 4.0,
    cycles_per_day: float = 1.0,
    end_of_life_fraction: float = 0.80,
) -> LifetimeAssessment:
    """Does a material class survive a server deployment's lifetime?

    The paper's servers live four years (Section 5.1's retrofit scenario);
    a PCM whose latent capacity falls below ``end_of_life_fraction``
    within that window would need mid-life replacement — labour the
    paper's "minimum labor ... after installation" claim excludes.
    """
    if service_years <= 0:
        raise ConfigurationError("service years must be positive")
    if not 0.0 < end_of_life_fraction < 1.0:
        raise ConfigurationError("end-of-life fraction must be in (0, 1)")
    model = DegradationModel.for_stability(stability)
    cycles = int(service_years * 365.0 * cycles_per_day)
    remaining = model.remaining_capacity_fraction(cycles)
    return LifetimeAssessment(
        stability=stability,
        service_years=service_years,
        cycles=cycles,
        remaining_capacity_fraction=remaining,
        survives_server_lifetime=remaining >= end_of_life_fraction,
    )
