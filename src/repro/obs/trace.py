"""Per-request trace identities for service-style callers.

A trace id is a short opaque token that follows one request through the
layers it touches — HTTP handler, coalescing queue, worker thread,
solver — so log lines and error payloads emitted seconds apart can be
joined back into one story. Storage is a :mod:`contextvars` variable:

* every asyncio task sees the id bound by the task that spawned it,
  with no locking and no global mutable state;
* worker threads do **not** inherit automatically — the submitting
  layer passes the id explicitly and re-binds with :class:`bind_trace`
  inside the worker.

The registry itself stays trace-agnostic: counters are process-wide
totals. Callers that want per-request attribution put the trace id in
their event payloads (as :mod:`repro.service` does), not in counter
names, so cardinality stays bounded.
"""

from __future__ import annotations

import binascii
import contextvars
import os

_TRACE: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


def current_trace_id() -> str | None:
    """The trace id bound to the current context, or ``None``."""
    return _TRACE.get()


class bind_trace:
    """Context manager binding a trace id to the current context.

    Usage::

        with bind_trace(trace_id):
            handle_request()   # current_trace_id() == trace_id inside

    Nesting restores the previous id on exit, so a sub-operation can
    carry its own id without clobbering its parent's.
    """

    def __init__(self, trace_id: str | None) -> None:
        self.trace_id = trace_id
        self._token: contextvars.Token | None = None

    def __enter__(self) -> str | None:
        self._token = _TRACE.set(self.trace_id)
        return self.trace_id

    def __exit__(self, *exc: object) -> bool:
        if self._token is not None:
            _TRACE.reset(self._token)
            self._token = None
        return False
