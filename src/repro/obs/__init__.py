"""Lightweight observability: hierarchical timers, counters, run reports.

Instrumented modules (the transient solver, the datacenter simulator, the
experiment registry, the validation harness) report into a process-global
:class:`~repro.obs.registry.ObsRegistry`. Collection is **off by
default** and near-free while off; turn it on with ``REPRO_OBS=1`` or
:func:`~repro.obs.registry.enable`. Snapshots export as versioned JSON
or CSV through :class:`~repro.obs.report.RunReport`.

See ``docs/OBSERVABILITY.md`` for the full API and schema.
"""

from repro.obs.registry import (
    ENV_TOGGLE,
    ObsRegistry,
    count,
    disable,
    enable,
    get_registry,
    is_enabled,
    record,
    record_max,
    reset,
    snapshot,
    timed,
    timer,
)
from repro.obs.report import SCHEMA, RunReport, TimerStat
from repro.obs.trace import bind_trace, current_trace_id, new_trace_id

__all__ = [
    "ENV_TOGGLE",
    "SCHEMA",
    "ObsRegistry",
    "RunReport",
    "TimerStat",
    "bind_trace",
    "count",
    "current_trace_id",
    "new_trace_id",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
    "record",
    "record_max",
    "reset",
    "snapshot",
    "timed",
    "timer",
]
