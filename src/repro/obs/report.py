"""Structured run reports: the export format of the observability layer.

A :class:`RunReport` is an immutable snapshot of everything a
:class:`~repro.obs.registry.ObsRegistry` collected — hierarchical timer
statistics, monotonic counters, and last-written gauge values — plus
free-form metadata (git sha, python version, scenario name).

The serialized form is versioned (``schema`` field) so downstream
consumers — the benchmark regression gate, CI artifact diffing, external
dashboards — can evolve without guessing. Reports round-trip exactly
through JSON and export to flat CSV for spreadsheet triage.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.errors import ConfigurationError

#: Version tag written into every serialized report.
SCHEMA = "repro.obs/1"


@dataclass(frozen=True)
class TimerStat:
    """Aggregated statistics of one timer path.

    ``path`` is hierarchical: nested timers join their names with ``/``
    (``"experiment.fig11/solver.transient"``), so a report preserves who
    called whom without storing a full trace.
    """

    calls: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean duration per call."""
        return self.total_s / self.calls if self.calls else 0.0

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form used by the JSON schema."""
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> TimerStat:
        """Inverse of :meth:`to_dict`."""
        return cls(
            calls=int(data["calls"]),
            total_s=float(data["total_s"]),
            min_s=float(data["min_s"]),
            max_s=float(data["max_s"]),
        )


@dataclass(frozen=True)
class RunReport:
    """One collected snapshot of timers, counters, and values."""

    timers: dict[str, TimerStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    values: dict[str, float] = field(default_factory=dict)
    meta: dict[str, str] = field(default_factory=dict)

    @property
    def wall_time_s(self) -> float:
        """Total time of the root (un-nested) timers."""
        return sum(
            stat.total_s for path, stat in self.timers.items() if "/" not in path
        )

    def is_empty(self) -> bool:
        """True when nothing was collected."""
        return not (self.timers or self.counters or self.values)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """The versioned plain-dict form (JSON-ready)."""
        return {
            "schema": SCHEMA,
            "timers": {
                path: stat.to_dict() for path, stat in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "values": dict(sorted(self.values.items())),
            "meta": dict(sorted(self.meta.items())),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> RunReport:
        """Parse the plain-dict form, validating the schema tag."""
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ConfigurationError(
                f"unsupported report schema {schema!r}; expected {SCHEMA!r}"
            )
        return cls(
            timers={
                path: TimerStat.from_dict(stat)
                for path, stat in data.get("timers", {}).items()
            },
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            values={k: float(v) for k, v in data.get("values", {}).items()},
            meta={k: str(v) for k, v in data.get("meta", {}).items()},
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> RunReport:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def write_json(self, path: str | Path) -> Path:
        """Write the JSON form to a file; returns the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    def write_csv(self, handle_or_path: IO[str] | str | Path) -> None:
        """Export as flat CSV rows: ``kind,name,field,value``."""
        if isinstance(handle_or_path, (str, Path)):
            with open(handle_or_path, "w", newline="") as handle:
                self.write_csv(handle)
            return
        writer = csv.writer(handle_or_path)
        writer.writerow(["kind", "name", "field", "value"])
        for path, stat in sorted(self.timers.items()):
            for field_name, value in stat.to_dict().items():
                writer.writerow(["timer", path, field_name, value])
        for name, count in sorted(self.counters.items()):
            writer.writerow(["counter", name, "count", count])
        for name, value in sorted(self.values.items()):
            writer.writerow(["value", name, "value", value])

    # -- composition -------------------------------------------------------

    def perf_section(self) -> dict[str, object]:
        """The ``perf`` dict attached to an ``ExperimentResult``.

        A flattened, JSON-safe view: wall time plus the raw timer,
        counter, and value maps.
        """
        return {
            "wall_time_s": self.wall_time_s,
            "timers": {
                path: stat.to_dict() for path, stat in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "values": dict(sorted(self.values.items())),
        }

    def diff(self, earlier: RunReport) -> RunReport:
        """Activity since ``earlier`` (a snapshot of the same registry).

        Timer and counter statistics subtract; min/max of a timer window
        cannot be reconstructed from two cumulative snapshots, so the
        window's min/max fall back to the later snapshot's bounds. Values
        are last-write-wins and pass through unchanged.
        """
        timers: dict[str, TimerStat] = {}
        for path, stat in self.timers.items():
            before = earlier.timers.get(path)
            if before is None:
                timers[path] = stat
                continue
            calls = stat.calls - before.calls
            if calls <= 0:
                continue
            timers[path] = TimerStat(
                calls=calls,
                total_s=stat.total_s - before.total_s,
                min_s=stat.min_s,
                max_s=stat.max_s,
            )
        counters: dict[str, int] = {}
        for name, count in self.counters.items():
            delta = count - earlier.counters.get(name, 0)
            if delta:
                counters[name] = delta
        return RunReport(
            timers=timers,
            counters=counters,
            values=dict(self.values),
            meta=dict(self.meta),
        )
