"""The observability registry: timers, counters, and gauge values.

One :class:`ObsRegistry` collects everything a run wants to report:

* **timers** — hierarchical wall-clock spans. ``with obs.timer("solve")``
  nests: a timer opened while another is running on the same thread
  records under the joined path (``"outer/solve"``), so reports show the
  call structure without a profiler.
* **counters** — monotonic tallies (RK4 steps, events processed),
  thread-safe so worker threads of one run aggregate into one total.
* **values** — last-write-wins gauges (chosen step size, ticks/sec,
  queue high-water marks via :meth:`ObsRegistry.record_max`).

The module-level registry is **disabled by default** and costs almost
nothing while disabled: ``timer()`` hands back a shared no-op context
manager and ``count``/``record`` return immediately, so instrumented hot
paths stay within measurement noise of uninstrumented ones. Enable it
with ``REPRO_OBS=1`` in the environment or :func:`enable` from code.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.obs.report import RunReport, TimerStat

_F = TypeVar("_F", bound=Callable)

#: Environment variable that enables the global registry at import time.
ENV_TOGGLE = "REPRO_OBS"

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get(ENV_TOGGLE, "").strip().lower() in _TRUTHY


class _NullTimer:
    """Shared no-op context manager returned while collection is off."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _TimerSpan:
    """An open timer span; closes into its registry on exit."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: ObsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> _TimerSpan:
        self._registry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._start
        self._registry._pop(elapsed)
        return False


class _MutableTimer:
    """Accumulating form of a timer stat (internal; snapshots freeze it)."""

    __slots__ = ("calls", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed

    def freeze(self) -> TimerStat:
        return TimerStat(
            calls=self.calls,
            total_s=self.total_s,
            min_s=self.min_s if self.calls else 0.0,
            max_s=self.max_s,
        )


class ObsRegistry:
    """Collects timers, counters, and values for one process or run.

    Thread-safety: every mutation of shared state — counter increments,
    gauge writes, timer-stat accumulation on span exit, ``reset`` — and
    every ``snapshot`` happens under one internal lock, so concurrent
    worker threads never lose increments or observe torn aggregates.
    Timer *nesting* state is thread-local (each thread composes its own
    ``outer/inner`` paths), which also means a span must enter and exit
    on the same thread. The disabled fast path takes no lock at all.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._timers: dict[str, _MutableTimer] = {}
        self._counters: dict[str, int] = {}
        self._values: dict[str, float] = {}
        self._stacks = threading.local()

    # -- toggling ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether collection is currently on."""
        return self._enabled

    def enable(self) -> None:
        """Turn collection on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn collection off (already-collected data is kept)."""
        self._enabled = False

    def reset(self) -> None:
        """Drop everything collected so far."""
        with self._lock:
            self._timers.clear()
            self._counters.clear()
            self._values.clear()

    # -- timers ------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._stacks, "frames", None)
        if stack is None:
            stack = []
            self._stacks.frames = stack
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, elapsed: float) -> None:
        stack = self._stack()
        path = "/".join(stack)
        stack.pop()
        with self._lock:
            timer = self._timers.get(path)
            if timer is None:
                timer = self._timers[path] = _MutableTimer()
            timer.add(elapsed)

    def timer(self, name: str) -> _TimerSpan | _NullTimer:
        """Context manager timing a span under ``name``.

        Nested spans on the same thread record under ``outer/name``.
        Returns a shared no-op when collection is disabled.
        """
        if not self._enabled:
            return _NULL_TIMER
        return _TimerSpan(self, name)

    def timed(self, name: str | None = None) -> Callable[[_F], _F]:
        """Decorator form of :meth:`timer`.

        The span name defaults to the decorated function's qualified
        name. Enablement is checked per call, so decorating a function
        does not freeze the toggle at definition time.
        """

        def decorate(func: _F) -> _F:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: object, **kwargs: object) -> object:
                if not self._enabled:
                    return func(*args, **kwargs)
                with self.timer(span_name):
                    return func(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    # -- counters and values -----------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (thread-safe)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def count_many(self, counts: dict[str, int]) -> None:
        """Add a batch of counter increments under one lock acquisition.

        Concurrency-heavy callers (the service request path) accumulate
        per-request deltas locally and flush them here, so N increments
        cost one contended lock round instead of N.
        """
        if not self._enabled or not counts:
            return
        with self._lock:
            counters = self._counters
            for name, n in counts.items():
                counters[name] = counters.get(name, 0) + n

    def record(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self._enabled:
            return
        with self._lock:
            self._values[name] = float(value)

    def record_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high-water mark."""
        if not self._enabled:
            return
        with self._lock:
            current = self._values.get(name)
            if current is None or value > current:
                self._values[name] = float(value)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, meta: dict[str, str] | None = None) -> RunReport:
        """Freeze the current state into an immutable report."""
        with self._lock:
            return RunReport(
                timers={
                    path: timer.freeze() for path, timer in self._timers.items()
                },
                counters=dict(self._counters),
                values=dict(self._values),
                meta=dict(meta or {}),
            )

    @contextmanager
    def collect(self) -> Iterator[_Collection]:
        """Scope that captures the activity of its body as a delta report.

        Usage::

            with registry.collect() as collection:
                run_work()
            report = collection.report  # only this scope's activity

        Collection must be enabled for the scope to observe anything; a
        disabled registry yields an empty report.
        """
        before = self.snapshot()
        collection = _Collection()
        start = time.perf_counter()
        try:
            yield collection
        finally:
            elapsed = time.perf_counter() - start
            report = self.snapshot().diff(before)
            report.values.setdefault("collect.wall_time_s", elapsed)
            collection.report = report


class _Collection:
    """Holder for the report a :meth:`ObsRegistry.collect` scope produces."""

    report: RunReport

    def __init__(self) -> None:
        self.report = RunReport()


#: The process-global registry every instrumented module reports into.
_GLOBAL = ObsRegistry(enabled=_env_enabled())


def get_registry() -> ObsRegistry:
    """The process-global registry."""
    return _GLOBAL


def is_enabled() -> bool:
    """Whether the global registry is collecting."""
    return _GLOBAL.enabled


def enable() -> None:
    """Enable the global registry."""
    _GLOBAL.enable()


def disable() -> None:
    """Disable the global registry."""
    _GLOBAL.disable()


def reset() -> None:
    """Clear the global registry."""
    _GLOBAL.reset()


def timer(name: str) -> _TimerSpan | _NullTimer:
    """Time a span on the global registry."""
    return _GLOBAL.timer(name)


def timed(name: str | None = None) -> Callable[[_F], _F]:
    """Decorator timing calls on the global registry."""
    return _GLOBAL.timed(name)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the global registry."""
    _GLOBAL.count(name, n)


def record(name: str, value: float) -> None:
    """Set a gauge on the global registry."""
    _GLOBAL.record(name, value)


def record_max(name: str, value: float) -> None:
    """Raise a high-water gauge on the global registry."""
    _GLOBAL.record_max(name, value)


def snapshot(meta: dict[str, str] | None = None) -> RunReport:
    """Snapshot the global registry."""
    return _GLOBAL.snapshot(meta)
