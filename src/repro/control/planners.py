"""Planners: pluggable decision policies behind one interface.

Each tick the :class:`~repro.control.loop.ControlLoop` assembles an
:class:`Observation` from *observed* telemetry — the work-rate feed has
already passed through the fault injector's sensor path
(:meth:`repro.faults.injector.FaultInjector.observe`), so a planner sees
noisy or frozen readings during sensor faults, never ground truth — and
asks the active planner for a :class:`~repro.control.actions.
ControlAction`. Plant-side readings (room temperature, remaining plant
capacity) come off the room model exactly as the legacy throttling
policies read them; an active cooling fault derates the capacity the
planner sees.

Shipped planners:

* :class:`GreedyThrottlePolicy` — the paper's Section 5.2 reactive
  mechanism: a room-temperature hysteresis latch, with the former
  :class:`~repro.dcsim.throttling.FaultResponsePolicy` overrides folded
  in as first-class behaviour (min-DVFS on sensor dropout, preemptive
  throttle on severe cooling loss). Decision-identical to the old
  ``FaultResponsePolicy(RoomTemperaturePolicy(room))`` stack.
* :class:`MPCPolicy` — receding-horizon search over candidate DVFS
  sequences, scored by batched forward rollouts on a
  :class:`~repro.dcsim.thermal_coupling.BatchedClusterThermalState`
  clone of the observed state (one cluster per candidate).
* :class:`ScheduledPolicy` — a time-of-day open-loop baseline: a fixed
  daily curtailment window, blind to the thermal state.
* :class:`NoOpPlanner` — always nominal; the transparency oracle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.control.actions import ControlAction
from repro.dcsim.thermal_coupling import (
    BatchedClusterThermalState,
    ClusterThermalState,
)
from repro.dcsim.throttling import _shed_cap, projected_release_w
from repro.errors import ControlError
from repro.tco.energy import (
    AmbientAwarePlant,
    AmbientProfile,
    ElectricityTariff,
)
from repro.units import SECONDS_PER_HOUR


@dataclass
class Observation:
    """What a planner is allowed to see at one tick.

    ``work_rate`` is the per-server offered work in nominal capacity
    units *after* the fault injector's sensor path; ``fault_effects`` is
    the injector's currently active composite effects (or ``None``) —
    the same duck-typed view the legacy ``FaultResponsePolicy`` used.
    ``state`` grants read access to the thermal state for release
    previews; planners must not mutate it.
    """

    time_s: float
    dt_s: float
    work_rate: np.ndarray
    state: ClusterThermalState
    room_temperature_c: float
    room_setpoint_c: float
    room_max_temperature_c: float
    cooling_capacity_w: float
    thermal_mass_j_per_k: float
    fault_effects: object | None = None

    @property
    def hour_of_day(self) -> float:
        """Local wall-clock hour of this tick."""
        return (self.time_s / SECONDS_PER_HOUR) % 24.0

    @property
    def nominal_frequency_ghz(self) -> float:
        return self.state.power_model.nominal_frequency_ghz

    @property
    def min_frequency_ghz(self) -> float:
        return self.state.power_model.min_frequency_ghz

    @property
    def mean_work_rate(self) -> float:
        """Cluster-mean observed work rate, clipped to [0, 1]."""
        return float(np.mean(np.clip(self.work_rate, 0.0, 1.0)))


class Planner(ABC):
    """One tick of decision making: observation in, action plan out."""

    #: Stable identifier used for obs counters and tournament scoring.
    name: str = "planner"

    def reset(self) -> None:
        """Clear internal state between simulation runs."""

    @abstractmethod
    def plan(self, obs: Observation) -> ControlAction:
        """Propose an action plan for this tick (pre-clamping)."""


class NoOpPlanner(Planner):
    """Always nominal, no caps, no plant requests.

    The transparency oracle: a :class:`~repro.control.loop.ControlLoop`
    wrapping this planner must be byte-identical to the uninstrumented
    simulator.
    """

    name = "noop"

    def plan(self, obs: Observation) -> ControlAction:
        return ControlAction(frequency_ghz=obs.nominal_frequency_ghz)


class GreedyThrottlePolicy(Planner):
    """Reactive hysteresis throttle with fault overrides folded in.

    Port of :class:`~repro.dcsim.throttling.RoomTemperaturePolicy` with
    the :class:`~repro.dcsim.throttling.FaultResponsePolicy` wrapper's
    overrides as first-class branches, in the same precedence order:
    sensor dropout -> severe cooling loss -> temperature latch. On
    override ticks the latch is deliberately not updated, matching the
    legacy wrapper (which never consulted the base policy then).
    """

    name = "greedy"

    def __init__(
        self,
        deadband_c: float = 1.0,
        emergency_capacity_factor: float = 0.5,
    ) -> None:
        if deadband_c < 0:
            raise ControlError("deadband must be non-negative")
        if not 0.0 <= emergency_capacity_factor <= 1.0:
            raise ControlError(
                "emergency capacity factor must be in [0, 1], got "
                f"{emergency_capacity_factor}"
            )
        self.deadband_c = deadband_c
        self.emergency_capacity_factor = emergency_capacity_factor
        self._throttled = False

    def reset(self) -> None:
        self._throttled = False

    def plan(self, obs: Observation) -> ControlAction:
        state = obs.state
        work_rate = obs.work_rate
        nominal = obs.nominal_frequency_ghz
        minimum = obs.min_frequency_ghz
        capacity = obs.cooling_capacity_w

        effects = obs.fault_effects
        if effects is not None:
            if effects.sensor_dropout:
                return ControlAction(frequency_ghz=minimum, limited=True)
            if (
                effects.cooling_capacity_factor
                < self.emergency_capacity_factor
            ):
                if projected_release_w(state, work_rate, minimum) > capacity:
                    cap = _shed_cap(state, work_rate, minimum, capacity)
                    return ControlAction(
                        frequency_ghz=minimum,
                        utilization_cap=cap,
                        limited=True,
                    )
                return ControlAction(frequency_ghz=minimum, limited=True)

        if not self._throttled and (
            obs.room_temperature_c >= obs.room_max_temperature_c
        ):
            self._throttled = True
        elif self._throttled and (
            obs.room_temperature_c
            <= obs.room_max_temperature_c - self.deadband_c
            and projected_release_w(state, work_rate, nominal) <= capacity
        ):
            self._throttled = False

        if not self._throttled:
            return ControlAction(frequency_ghz=nominal)
        if projected_release_w(state, work_rate, minimum) <= capacity:
            return ControlAction(frequency_ghz=minimum, limited=True)
        cap = _shed_cap(state, work_rate, minimum, capacity)
        return ControlAction(
            frequency_ghz=minimum, utilization_cap=cap, limited=True
        )


class ScheduledPolicy(Planner):
    """Open-loop time-of-day curtailment, blind to the thermal state.

    Models the clock-based maintenance windows real operations teams
    schedule: inside the daily window the cluster runs at the throttle
    frequency regardless of load or temperature; outside it, nominal.
    Wrap-around windows (e.g. 22 -> 6) are supported. The tournament's
    point of comparison: a wall-clock schedule cannot see the thermal
    peak, so it curtails the wrong hours.
    """

    name = "scheduled"

    def __init__(
        self,
        throttle_start_hour: float = 22.0,
        throttle_end_hour: float = 6.0,
        throttle_frequency_ghz: float | None = None,
    ) -> None:
        for label, hour in (
            ("start", throttle_start_hour),
            ("end", throttle_end_hour),
        ):
            if not 0.0 <= hour <= 24.0:
                raise ControlError(
                    f"throttle window {label} hour must be in [0, 24]"
                )
        self.throttle_start_hour = throttle_start_hour
        self.throttle_end_hour = throttle_end_hour
        self.throttle_frequency_ghz = throttle_frequency_ghz

    def _in_window(self, hour: float) -> bool:
        start, end = self.throttle_start_hour, self.throttle_end_hour
        if start <= end:
            return start <= hour < end
        return hour >= start or hour < end

    def plan(self, obs: Observation) -> ControlAction:
        if self._in_window(obs.hour_of_day):
            frequency = (
                self.throttle_frequency_ghz
                if self.throttle_frequency_ghz is not None
                else obs.min_frequency_ghz
            )
            return ControlAction(frequency_ghz=frequency, limited=True)
        return ControlAction(frequency_ghz=obs.nominal_frequency_ghz)


class MPCPolicy(Planner):
    """Receding-horizon control via batched forward rollouts.

    Each tick the policy clones the observed thermal state into a
    :class:`~repro.dcsim.thermal_coupling.BatchedClusterThermalState`
    with one cluster per candidate DVFS sequence, rolls every candidate
    ``horizon_ticks`` forward under a persistence-plus-trend work
    forecast (built from the *observed* work rate), prices each
    trajectory — cooling electricity at the time-of-use tariff and
    ambient-dependent COP, a penalty per server-hour of shed work, and a
    steep penalty per degree-hour of room over-limit — and applies the
    first action of the cheapest sequence. Replanning every tick is the
    feedback path; there is no hysteresis latch to wait out, which is
    exactly why recovery after a fault clears is faster than the greedy
    policy's deadband.

    Candidate sequences: hold nominal / mid / min for the horizon, two
    throttle-then-release ramps, and an emergency min-frequency shed
    candidate whose busy cap is sized against the (possibly derated)
    plant capacity. Deterministic: no RNG anywhere.
    """

    name = "mpc"

    def __init__(
        self,
        horizon_ticks: int = 8,
        tariff: ElectricityTariff | None = None,
        ambient: AmbientProfile | None = None,
        plant: AmbientAwarePlant | None = None,
        shed_penalty_usd_per_server_hour: float = 1.0,
        overheat_penalty_usd_per_c_hour: float = 50.0,
        sprint_headroom_c: float = 4.0,
    ) -> None:
        if horizon_ticks < 1:
            raise ControlError("MPC horizon must be at least one tick")
        if shed_penalty_usd_per_server_hour < 0:
            raise ControlError("shed penalty must be non-negative")
        if overheat_penalty_usd_per_c_hour < 0:
            raise ControlError("overheat penalty must be non-negative")
        self.horizon_ticks = horizon_ticks
        self.tariff = tariff or ElectricityTariff()
        self.ambient = ambient or AmbientProfile()
        self.plant = plant or AmbientAwarePlant()
        self.shed_penalty_usd_per_server_hour = shed_penalty_usd_per_server_hour
        self.overheat_penalty_usd_per_c_hour = overheat_penalty_usd_per_c_hour
        self.sprint_headroom_c = sprint_headroom_c
        self._last_work: float | None = None

    def reset(self) -> None:
        self._last_work = None

    def _candidate_sequences(
        self, obs: Observation
    ) -> tuple[np.ndarray, np.ndarray]:
        """(frequencies, caps): shapes (candidates, horizon), (candidates,).

        Ordered cheapest-intervention-first so cost ties resolve toward
        running at full clocks.
        """
        horizon = self.horizon_ticks
        nominal = obs.nominal_frequency_ghz
        minimum = obs.min_frequency_ghz
        mid = 0.5 * (nominal + minimum)
        half = (horizon + 1) // 2

        rows = [
            np.full(horizon, nominal),
            np.full(horizon, mid),
            np.full(horizon, minimum),
        ]
        if horizon > 1:
            ramp_mid = np.full(horizon, nominal)
            ramp_mid[:half] = mid
            ramp_min = np.full(horizon, nominal)
            ramp_min[:half] = minimum
            rows += [ramp_mid, ramp_min]
        caps = [1.0] * len(rows)

        # Emergency shed candidate: min frequency with a busy cap that
        # fits the remaining (possibly fault-derated) plant capacity.
        if (
            projected_release_w(obs.state, obs.work_rate, minimum)
            > obs.cooling_capacity_w
        ):
            rows.append(np.full(horizon, minimum))
            caps.append(
                _shed_cap(
                    obs.state, obs.work_rate, minimum, obs.cooling_capacity_w
                )
            )
        return np.stack(rows), np.array(caps)

    def _forecast(self, obs: Observation) -> np.ndarray:
        """Persistence + one-step trend forecast of the mean work rate."""
        work = obs.mean_work_rate
        slope = 0.0 if self._last_work is None else work - self._last_work
        steps = np.arange(1, self.horizon_ticks + 1)
        return np.clip(work + slope * steps, 0.0, 1.0)

    def _rollout_cost(
        self,
        obs: Observation,
        frequencies: np.ndarray,
        caps: np.ndarray,
        forecast: np.ndarray,
    ) -> np.ndarray:
        """Price every candidate trajectory; returns cost in USD."""
        state = obs.state
        n_cand, horizon = frequencies.shape
        servers = state.server_count
        dt = obs.dt_s
        dt_hours = dt / SECONDS_PER_HOUR

        rollout = BatchedClusterThermalState(
            characterization=state.characterization,
            power_model=state.power_model,
            material=state.material,
            cluster_count=n_cand,
            server_count=servers,
            inlet_temperature_c=obs.room_temperature_c,
            wax_enabled=bool(state.wax_enabled),
        )
        rollout.zone_temperature_c[...] = state.zone_temperature_c[None, :]
        rollout.specific_enthalpy_j_per_kg[...] = (
            state.specific_enthalpy_j_per_kg[None, :]
        )

        room_t = np.full(n_cand, obs.room_temperature_c)
        capacity = obs.cooling_capacity_w
        setpoint = obs.room_setpoint_c
        mass = obs.thermal_mass_j_per_k
        room_max = obs.room_max_temperature_c
        cost = np.zeros(n_cand)

        # Per-candidate throughput factors for every step's frequency.
        unique = {float(f) for f in frequencies.ravel()}
        tf_of = {
            f: state.power_model.throughput_factor(f) for f in unique
        }
        for k in range(horizon):
            freqs_k = frequencies[:, k]
            tf_k = np.array([tf_of[float(f)] for f in freqs_k])
            busy = np.minimum(forecast[k] / tf_k, 1.0)
            busy = np.minimum(busy, caps)
            _, release, _ = rollout.step(
                dt, np.repeat(busy[:, None], servers, axis=1), freqs_k
            )
            release_total = np.sum(release, axis=1)

            removal = np.where(
                room_t > setpoint + 1e-9,
                capacity,
                np.minimum(release_total, capacity),
            )
            room_t = np.maximum(
                room_t + dt * (release_total - removal) / mass, setpoint
            )
            rollout.inlet_temperature_c[:] = room_t

            t_k = obs.time_s + (k + 1) * dt
            cop = float(self.plant.cop(self.ambient.temperature_c(t_k)))
            price = float(self.tariff.price_usd_per_kwh(t_k))
            cost += (release_total / cop) * dt / 3.6e6 * price
            served = busy * tf_k
            shed = np.maximum(forecast[k] - served, 0.0)
            cost += (
                shed
                * servers
                * dt_hours
                * self.shed_penalty_usd_per_server_hour
            )
            cost += (
                np.maximum(room_t - room_max, 0.0)
                * dt_hours
                * self.overheat_penalty_usd_per_c_hour
            )
        return cost

    def plan(self, obs: Observation) -> ControlAction:
        effects = obs.fault_effects
        if effects is not None and effects.sensor_dropout:
            # No trustworthy telemetry to roll forward: safe setpoint.
            self._last_work = None
            return ControlAction(
                frequency_ghz=obs.min_frequency_ghz, limited=True
            )

        frequencies, caps = self._candidate_sequences(obs)
        forecast = self._forecast(obs)
        self._last_work = obs.mean_work_rate
        cost = self._rollout_cost(obs, frequencies, caps, forecast)
        best = int(np.argmin(cost))

        frequency = float(frequencies[best, 0])
        cap = float(caps[best])
        nominal = obs.nominal_frequency_ghz
        limited = frequency < nominal - 1e-12 or cap < 1.0
        # With thermal slack in hand, ask for sprint authorization: on
        # platforms with over-nominal bins the executor may grant a
        # higher ceiling (stock models clamp it back to nominal).
        sprint = (
            not limited
            and obs.room_max_temperature_c - obs.room_temperature_c
            > self.sprint_headroom_c
        )
        return ControlAction(
            frequency_ghz=frequency,
            utilization_cap=cap,
            sprint=sprint,
            limited=limited,
        )
