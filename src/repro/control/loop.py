"""The closed control loop: monitor -> planner -> executor -> verifier.

:class:`ControlLoop` is *policy-shaped*: it implements the same
``decide(state, work_rate) -> ThrottleDecision`` / ``reset()`` protocol
as the legacy throttling policies, so it plugs into both simulation
engines through the existing per-tick policy seam without touching the
thermal core. The engines additionally call the optional per-tick
``begin_tick(time_s, dt_s)`` hook (see ``simulator._run_fluid`` and
``event_engine.run_event_mode``) to hand the loop the simulation clock;
a policy without the hook is untouched, keeping the default path
byte-identical.

Per tick:

1. **monitor** — assemble an :class:`~repro.control.planners.
   Observation` from observed telemetry (work rate through the fault
   injector's sensor path; room readings off the — possibly fault-
   derated — room model);
2. **verify (previous tick)** — compare the room temperature realized
   now against what the verifier predicted last tick; a sustained
   divergence (model mismatch: an unannounced fault, sensor lies)
   escalates to the safe fallback planner until readings re-converge;
3. **plan** — ask the active planner (or the fallback) for an action;
4. **execute** — clamp the action through the
   :class:`~repro.control.actions.Executor` into a
   :class:`~repro.dcsim.throttling.ThrottleDecision`;
5. **predict** — record the verifier's expectation for the next tick.

With a no-op planner, no faults, and no fallback the loop is a
byte-transparent wrapper: it reads state, never writes it, and returns
exactly the uninstrumented nominal decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.actions import ActuatorLimits, Executor
from repro.control.planners import Observation, Planner
from repro.dcsim.room import RoomModel
from repro.dcsim.thermal_coupling import ClusterThermalState
from repro.dcsim.throttling import ThrottleDecision
from repro.errors import ControlError
from repro.obs import get_registry


@dataclass(frozen=True)
class DecisionRecord:
    """One tick's decision, as recorded for traces and equivalence tests."""

    time_s: float
    planner: str
    frequency_ghz: float
    utilization_cap: float
    limited: bool
    sprint: bool
    fallback_active: bool


class Verifier:
    """Predicted-vs-realized state check with fallback escalation.

    Each tick the loop hands the verifier its one-step room-temperature
    prediction for the *next* tick; at the next tick the realized room
    temperature is compared against it. ``patience`` consecutive misses
    beyond ``tolerance_c`` escalate (``fallback_active`` latches on);
    ``recovery_ticks`` consecutive in-tolerance ticks de-escalate. The
    verifier never touches the plant — it only switches which planner
    the loop consults.
    """

    def __init__(
        self,
        tolerance_c: float = 0.75,
        patience: int = 3,
        recovery_ticks: int = 5,
    ) -> None:
        if tolerance_c <= 0:
            raise ControlError("verifier tolerance must be positive")
        if patience < 1 or recovery_ticks < 1:
            raise ControlError(
                "verifier patience and recovery must be at least one tick"
            )
        self.tolerance_c = tolerance_c
        self.patience = patience
        self.recovery_ticks = recovery_ticks
        self._predicted_c: float | None = None
        self._miss_streak = 0
        self._clean_streak = 0
        self.fallback_active = False
        self.divergences = 0
        self.escalations = 0

    def reset(self) -> None:
        self._predicted_c = None
        self._miss_streak = 0
        self._clean_streak = 0
        self.fallback_active = False
        self.divergences = 0
        self.escalations = 0

    def check(self, realized_room_c: float) -> bool:
        """Compare last tick's prediction; returns True on a divergence."""
        predicted = self._predicted_c
        self._predicted_c = None
        if predicted is None:
            return False
        if abs(realized_room_c - predicted) > self.tolerance_c:
            self.divergences += 1
            self._miss_streak += 1
            self._clean_streak = 0
            if not self.fallback_active and self._miss_streak >= self.patience:
                self.fallback_active = True
                self.escalations += 1
            return True
        self._miss_streak = 0
        self._clean_streak += 1
        if self.fallback_active and self._clean_streak >= self.recovery_ticks:
            self.fallback_active = False
            self._clean_streak = 0
        return False

    def predict(self, obs: Observation, decision: ThrottleDecision) -> None:
        """One-step room forecast at the decided operating point.

        Uses the same release preview the throttling policies use (wax
        absorption counted at the current state) plus the room's CRAC
        physics, against the capacity the loop *observes* — so a fault
        that arrives after the prediction, or a lying sensor, shows up
        as a divergence next tick.
        """
        state = obs.state
        tf = state.power_model.throughput_factor(decision.frequency_ghz)
        busy = np.clip(
            np.asarray(obs.work_rate) / tf, 0.0, decision.utilization_cap
        )
        power = state.power_w(busy, decision.frequency_ghz)
        wax = state.wax_exchange_w(busy, decision.frequency_ghz)
        release = float(np.sum(power - wax))
        if obs.room_temperature_c > obs.room_setpoint_c + 1e-9:
            removal = obs.cooling_capacity_w
        else:
            removal = min(release, obs.cooling_capacity_w)
        predicted = obs.room_temperature_c + obs.dt_s * (
            release - removal
        ) / obs.thermal_mass_j_per_k
        self._predicted_c = max(predicted, obs.room_setpoint_c)


class ControlLoop:
    """Policy-shaped closed loop over the simulator-as-plant.

    Deterministic and seed-free: every decision is a pure function of
    the observed telemetry stream and the planners' internal state, so
    two engines fed bit-identical observations produce bit-identical
    decision logs.

    ``fallback=None`` disables escalation entirely (the verifier still
    counts divergences); production wiring passes a
    :class:`~repro.control.planners.GreedyThrottlePolicy` as the safe
    fallback.
    """

    def __init__(
        self,
        planner: Planner,
        room: RoomModel,
        injector=None,
        executor: Executor | None = None,
        verifier: Verifier | None = None,
        fallback: Planner | None = None,
        tick_interval_s: float = 60.0,
        record_decisions: bool = True,
    ) -> None:
        if room is None:
            raise ControlError(
                "the control loop needs a RoomModel: it is the plant "
                "telemetry source and the throttle authority"
            )
        if tick_interval_s <= 0:
            raise ControlError("tick interval must be positive")
        self.planner = planner
        self.room = room
        self.injector = injector
        self.executor = executor
        self.verifier = verifier or Verifier()
        self.fallback = fallback
        self.tick_interval_s = tick_interval_s
        self.record_decisions = record_decisions
        self.decision_log: list[DecisionRecord] = []
        self._time_s: float | None = None
        self._dt_s: float | None = None
        self._tick_index = 0

    def reset(self) -> None:
        """Fresh loop state between simulation runs."""
        self.planner.reset()
        if self.fallback is not None:
            self.fallback.reset()
        self.verifier.reset()
        if self.executor is not None:
            self.executor.reset()
        self.decision_log.clear()
        self._time_s = None
        self._dt_s = None
        self._tick_index = 0

    # -- engine hook ---------------------------------------------------------

    def begin_tick(self, time_s: float, dt_s: float) -> None:
        """Per-tick clock callback, invoked by both simulation engines."""
        self._time_s = time_s
        self._dt_s = dt_s

    def constant_decision(self, state: ClusterThermalState) -> None:
        """No constant-decision certificate: the loop is stateful.

        Every tick mutates the monitor history, the verifier's
        predicted-vs-realized streaks, the executor's sprint budget, and
        the decision log — so no decision can be promised constant ahead
        of time. Returning ``None`` keeps the batched fluid engine on
        the verbatim scalar path for control-loop runs (the ``begin_tick``
        clock hook alone already forces that); this explicit seam is
        where a future open-loop schedule could certify its plateaus.
        """
        return None

    # -- policy protocol -----------------------------------------------------

    def _ensure_executor(self, state: ClusterThermalState) -> Executor:
        if self.executor is None:
            self.executor = Executor(
                ActuatorLimits.for_power_model(state.power_model),
                room=self.room,
            )
        return self.executor

    def _observe(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> Observation:
        self._tick_index += 1
        if self._time_s is not None and self._dt_s is not None:
            time_s, dt_s = self._time_s, self._dt_s
        else:
            # Engine without the begin_tick hook: reconstruct the clock
            # from the configured tick interval.
            dt_s = self.tick_interval_s
            time_s = self._tick_index * dt_s
        room = self.room
        return Observation(
            time_s=time_s,
            dt_s=dt_s,
            work_rate=work_rate,
            state=state,
            room_temperature_c=room.temperature_c,
            room_setpoint_c=room.setpoint_c,
            room_max_temperature_c=room.max_temperature_c,
            cooling_capacity_w=room.cooling_capacity_w,
            thermal_mass_j_per_k=room.thermal_mass_j_per_k,
            fault_effects=(
                self.injector.current if self.injector is not None else None
            ),
        )

    def decide(
        self, state: ClusterThermalState, work_rate: np.ndarray
    ) -> ThrottleDecision:
        """Monitor, verify, plan, execute; returns the clamped decision."""
        obs_registry = get_registry()
        observation = self._observe(state, work_rate)

        diverged = self.verifier.check(observation.room_temperature_c)
        use_fallback = self.verifier.fallback_active and self.fallback is not None
        active = self.fallback if use_fallback else self.planner

        with obs_registry.timer(f"control.plan.{active.name}"):
            action = active.plan(observation)

        executor = self._ensure_executor(state)
        clamps_before = executor.clamp_count
        sprints_before = executor.sprints_granted
        decision = executor.apply(action, observation.dt_s)
        self.verifier.predict(observation, decision)

        if self.record_decisions:
            self.decision_log.append(
                DecisionRecord(
                    time_s=observation.time_s,
                    planner=active.name,
                    frequency_ghz=decision.frequency_ghz,
                    utilization_cap=decision.utilization_cap,
                    limited=decision.limited,
                    sprint=executor.sprints_granted > sprints_before,
                    fallback_active=use_fallback,
                )
            )
        if obs_registry.enabled:
            obs_registry.count("control.ticks")
            obs_registry.count(f"control.planner.{active.name}.plans")
            if diverged:
                obs_registry.count("control.verifier.divergences")
            if use_fallback:
                obs_registry.count("control.fallback.ticks")
            if executor.clamp_count > clamps_before:
                obs_registry.count("control.executor.clamps")
            if executor.sprints_granted > sprints_before:
                obs_registry.count("control.sprint.authorized")
        return decision
