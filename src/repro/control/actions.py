"""Control actions and the actuator layer that applies them.

A :class:`~repro.control.planners.Planner` expresses *intent* — an
operating point it would like the plant to adopt. The plant's actuators
have hard limits the planner may not know (DVFS bins, CRAC setpoint
range and slew rate, sprint thermal budget), so every plan passes
through an :class:`Executor` that clamps it into the feasible envelope
before it reaches the simulator. The clamped result is an ordinary
:class:`~repro.dcsim.throttling.ThrottleDecision`, which is what both
simulation engines consume.

Sprint authorization: the shipped :class:`~repro.server.power.
ServerPowerModel` DVFS ladders top out at the nominal bin
(``frequency_factor`` rejects over-nominal frequencies), so on stock
platforms a granted sprint means *permission to hold the top bin during
a thermal emergency* rather than an over-nominal clock. The executor
additionally meters sprints against a finite thermal budget — seconds
of sprinting the package can absorb, typically sized from the
chip-scale :func:`repro.sprinting.model.run_sprint` — and declines
authorization once the budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dcsim.room import RoomModel
from repro.dcsim.throttling import ThrottleDecision
from repro.errors import ControlError
from repro.server.power import ServerPowerModel


@dataclass(frozen=True)
class ControlAction:
    """One tick's action plan, as proposed by a planner (pre-clamping).

    ``frequency_ghz`` is the requested cluster DVFS state;
    ``utilization_cap`` the busy-fraction ceiling (excess work is shed /
    relocated by the simulator); ``cooling_setpoint_c`` an optional CRAC
    setpoint request (``None`` leaves the plant alone); ``sprint``
    requests authorization to run up to the sprint frequency ceiling.
    """

    frequency_ghz: float
    utilization_cap: float = 1.0
    cooling_setpoint_c: float | None = None
    sprint: bool = False
    limited: bool = False


@dataclass(frozen=True)
class ActuatorLimits:
    """The feasible actuator envelope the executor clamps plans into."""

    min_frequency_ghz: float
    max_frequency_ghz: float
    #: Frequency ceiling while a sprint is authorized (>= max). Stock
    #: power models reject over-nominal bins, so this defaults to max.
    sprint_frequency_ghz: float
    setpoint_min_c: float = 18.0
    setpoint_max_c: float = 30.0
    #: Largest CRAC setpoint change per tick (slew limit).
    setpoint_slew_c: float = 1.0
    #: Total seconds of sprint the package can thermally absorb per run
    #: (``inf`` = unmetered).
    sprint_budget_s: float = float("inf")

    def __post_init__(self) -> None:
        if not 0.0 < self.min_frequency_ghz <= self.max_frequency_ghz:
            raise ControlError(
                "frequency limits must satisfy 0 < min <= max, got "
                f"[{self.min_frequency_ghz}, {self.max_frequency_ghz}]"
            )
        if self.sprint_frequency_ghz < self.max_frequency_ghz:
            raise ControlError(
                "sprint frequency ceiling cannot sit below the normal "
                f"ceiling ({self.sprint_frequency_ghz} < "
                f"{self.max_frequency_ghz})"
            )
        if not self.setpoint_min_c <= self.setpoint_max_c:
            raise ControlError("setpoint range must satisfy min <= max")
        if self.setpoint_slew_c <= 0:
            raise ControlError("setpoint slew limit must be positive")
        if self.sprint_budget_s < 0:
            raise ControlError("sprint budget must be non-negative")

    @classmethod
    def for_power_model(
        cls,
        power_model: ServerPowerModel,
        sprint_budget_s: float = float("inf"),
        **kwargs: float,
    ) -> "ActuatorLimits":
        """Limits matching a platform's DVFS ladder.

        The sprint ceiling is pinned to the nominal bin because the
        shipped power models have no over-nominal states (see module
        docstring).
        """
        return cls(
            min_frequency_ghz=power_model.min_frequency_ghz,
            max_frequency_ghz=power_model.nominal_frequency_ghz,
            sprint_frequency_ghz=power_model.nominal_frequency_ghz,
            sprint_budget_s=sprint_budget_s,
            **kwargs,
        )


class Executor:
    """Applies a :class:`ControlAction` to the plant, clamped to limits.

    Frequency and utilization cap are clamped into the actuator
    envelope; a cooling-setpoint request is range- and slew-limited and
    written onto the room model; sprint authorization is granted only
    while thermal budget remains. The executor restores the room's
    original setpoint on :meth:`reset` so back-to-back runs start from
    the same plant configuration.
    """

    def __init__(
        self, limits: ActuatorLimits, room: RoomModel | None = None
    ) -> None:
        self.limits = limits
        self.room = room
        self._initial_setpoint_c = (
            room.setpoint_c if room is not None else None
        )
        self._sprint_spent_s = 0.0
        #: Clamp events over the current run (frequency/cap/setpoint
        #: requests that had to be altered to fit the envelope).
        self.clamp_count = 0
        #: Sprint ticks granted over the current run.
        self.sprints_granted = 0
        #: Sprint requests declined for lack of thermal budget.
        self.sprints_declined = 0

    def reset(self) -> None:
        """Restore plant configuration and counters between runs."""
        self._sprint_spent_s = 0.0
        self.clamp_count = 0
        self.sprints_granted = 0
        self.sprints_declined = 0
        if self.room is not None and self._initial_setpoint_c is not None:
            self.room.setpoint_c = self._initial_setpoint_c

    @property
    def sprint_budget_remaining_s(self) -> float:
        """Seconds of sprint authorization left this run."""
        return max(self.limits.sprint_budget_s - self._sprint_spent_s, 0.0)

    def _apply_setpoint(self, requested_c: float) -> bool:
        """Move the CRAC setpoint toward a request; True if clamped."""
        room = self.room
        if room is None:
            return True  # request had no actuator to land on
        limits = self.limits
        # The room model requires setpoint < max_temperature_c; keep a
        # degree of margin so the invariant can never be violated.
        ceiling = min(limits.setpoint_max_c, room.max_temperature_c - 1.0)
        target = min(max(requested_c, limits.setpoint_min_c), ceiling)
        delta = target - room.setpoint_c
        step = min(max(delta, -limits.setpoint_slew_c), limits.setpoint_slew_c)
        room.setpoint_c = room.setpoint_c + step
        return target != requested_c or step != delta

    def apply(self, action: ControlAction, dt_s: float) -> ThrottleDecision:
        """Clamp an action into the envelope and return the decision."""
        limits = self.limits
        clamped = False

        sprinting = False
        if action.sprint:
            if self._sprint_spent_s + dt_s <= limits.sprint_budget_s:
                sprinting = True
                self._sprint_spent_s += dt_s
                self.sprints_granted += 1
            else:
                self.sprints_declined += 1
                clamped = True
        ceiling = (
            limits.sprint_frequency_ghz if sprinting
            else limits.max_frequency_ghz
        )

        frequency = min(max(action.frequency_ghz, limits.min_frequency_ghz), ceiling)
        cap = min(max(action.utilization_cap, 0.0), 1.0)
        clamped = (
            clamped
            or frequency != action.frequency_ghz
            or cap != action.utilization_cap
        )
        if action.cooling_setpoint_c is not None:
            clamped = self._apply_setpoint(action.cooling_setpoint_c) or clamped
        if clamped:
            self.clamp_count += 1

        limited = action.limited or frequency < limits.max_frequency_ghz - 1e-12
        return ThrottleDecision(
            frequency_ghz=frequency, utilization_cap=cap, limited=limited
        )
