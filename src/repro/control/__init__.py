"""Closed-loop datacenter control: monitor -> plan -> execute -> verify.

The control loop treats the datacenter simulator as the plant: each tick
it reads observed (fault-injected) telemetry, asks a pluggable
:class:`~repro.control.planners.Planner` for an action plan, clamps it
through the :class:`~repro.control.actions.Executor`, and checks the
:class:`~repro.control.loop.Verifier`'s predicted-vs-realized state,
escalating to a safe fallback policy on sustained divergence.
:mod:`repro.control.tournament` races every shipped planner over a
shared scenario suite. See ``docs/CONTROL.md``.
"""

from repro.control.actions import ActuatorLimits, ControlAction, Executor
from repro.control.loop import ControlLoop, DecisionRecord, Verifier
from repro.control.planners import (
    GreedyThrottlePolicy,
    MPCPolicy,
    NoOpPlanner,
    Observation,
    Planner,
    ScheduledPolicy,
)

__all__ = [
    "ActuatorLimits",
    "ControlAction",
    "ControlLoop",
    "DecisionRecord",
    "Executor",
    "GreedyThrottlePolicy",
    "MPCPolicy",
    "NoOpPlanner",
    "Observation",
    "Planner",
    "ScheduledPolicy",
    "Verifier",
]
