"""Policy tournament: every planner, same scenarios, one scoreboard.

The tournament races each registered planner over a shared scenario
suite — the chaos harness's diurnal plant (optionally swapped for the
synthetic workloads in :mod:`repro.workload.synthetic`), seeded chaos
fault schedules, and hand-pinned fault scenarios — and scores three
axes per (planner, scenario) cell:

* **energy_kwh** — cooling electricity via
  :func:`repro.tco.energy.cooling_energy_cost` (time-of-use tariff,
  ambient-dependent COP);
* **slo_violations** — ticks where the cluster broke its service
  objective: ran throttled below nominal or shed offered work;
* **recovery_time_s** — time from the last fault clearing until the
  cluster is simultaneously back at nominal frequency and the room is
  comfortably under its limit.

Every cell also records the run's bitwise
:func:`repro.faults.chaos.result_fingerprint`, so a scoreboard doubles
as a regression oracle: :func:`write_bundle` persists a scenario's
scoreboard as a ``repro.control.bundle/1`` JSON bundle and
:func:`replay_bundle` re-runs it and verifies the fingerprints match
(the same replayable-artifact scheme as the faults subsystem's
``repro.faults.bundle/1``).

Run it from the command line::

    python -m repro.control.tournament --quick --chaos-seeds 2 \
        --output scoreboard.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.control.actions import ActuatorLimits, Executor
from repro.control.loop import ControlLoop
from repro.control.planners import (
    GreedyThrottlePolicy,
    MPCPolicy,
    NoOpPlanner,
    Planner,
    ScheduledPolicy,
)
from repro.dcsim.simulator import DatacenterSimulator, SimulationResult
from repro.errors import ControlError
from repro.faults.chaos import (
    ChaosConfig,
    build_simulator,
    random_schedule,
    result_fingerprint,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import COOLING_LOSS, Fault, FaultSchedule
from repro.obs import get_registry
from repro.server.configs import PLATFORM_BUILDERS
from repro.sprinting.model import SprintChip, run_sprint
from repro.tco.energy import (
    AmbientAwarePlant,
    AmbientProfile,
    ElectricityTariff,
    cooling_energy_cost,
)
from repro.units import hours
from repro.workload.synthetic import diurnal_trace, double_peak_trace
from repro.workload.trace import LoadTrace

#: Schema tag of serialized tournament bundles; bump on layout changes.
BUNDLE_SCHEMA = "repro.control.bundle/1"

#: Margin under the room limit that counts as "recovered".
RECOVERY_MARGIN_C = 0.5


# -- planner registry --------------------------------------------------------

PLANNERS: dict[str, Callable[[], Planner]] = {
    "greedy": GreedyThrottlePolicy,
    "mpc": MPCPolicy,
    "scheduled": ScheduledPolicy,
    "noop": NoOpPlanner,
}


@lru_cache(maxsize=1)
def _sprint_budget_s() -> float:
    """Per-run sprint budget, sized from the chip-scale sprint model.

    A package with 20 g of PCM sprinting at 8 W holds out this long
    before hitting its junction limit — the executor meters cluster
    sprint authorizations against the same thermal allowance.
    """
    return run_sprint(
        SprintChip(), sprint_power_w=8.0, pcm_grams=20.0, horizon_s=3600.0
    ).duration_s


def control_policy_factory(
    planner_name: str, tick_interval_s: float, platform: str = "1u"
) -> Callable:
    """A ``build_simulator``-compatible factory wrapping one planner.

    Returns ``factory(room, injector) -> ControlLoop`` with the
    executor's actuator limits pinned to the platform's DVFS ladder and
    the chip-derived sprint budget.
    """
    if planner_name not in PLANNERS:
        raise ControlError(
            f"unknown planner {planner_name!r}; choose from "
            f"{sorted(PLANNERS)}"
        )
    power_model = PLATFORM_BUILDERS[platform]().power_model

    def factory(room, injector) -> ControlLoop:
        return ControlLoop(
            PLANNERS[planner_name](),
            room,
            injector=injector,
            executor=Executor(
                ActuatorLimits.for_power_model(
                    power_model, sprint_budget_s=_sprint_budget_s()
                ),
                room=room,
            ),
            tick_interval_s=tick_interval_s,
        )

    return factory


# -- scenarios ---------------------------------------------------------------

WORKLOADS = ("chaos", "diurnal", "double_peak")


@dataclass(frozen=True)
class ControlScenario:
    """One tournament scenario: a plant, a workload, and an adversary.

    Exactly one fault source applies: ``fault_seed`` draws a chaos
    schedule, ``pinned`` injects a hand-written fault tuple, neither
    means a clean run.
    """

    name: str
    chaos: ChaosConfig
    workload: str = "chaos"
    fault_seed: int | None = None
    pinned: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ControlError("scenario name must be non-empty")
        if self.workload not in WORKLOADS:
            raise ControlError(
                f"unknown workload {self.workload!r}; choose from "
                f"{WORKLOADS}"
            )
        if self.fault_seed is not None and self.pinned:
            raise ControlError(
                "a scenario takes either a chaos fault_seed or pinned "
                "faults, not both"
            )

    def schedule(self) -> FaultSchedule:
        """The scenario's fault schedule (empty for clean runs)."""
        if self.fault_seed is not None:
            return random_schedule(self.fault_seed, self.chaos)
        if self.pinned:
            return FaultSchedule(self.pinned, name=f"{self.name}-pinned")
        return FaultSchedule.empty(self.name)

    def trace(self) -> LoadTrace | None:
        """The scenario's workload (``None`` = the chaos default)."""
        if self.workload == "diurnal":
            return diurnal_trace(
                duration_s=self.chaos.duration_s,
                interval_s=self.chaos.tick_interval_s,
            )
        if self.workload == "double_peak":
            return double_peak_trace(
                duration_s=self.chaos.duration_s,
                interval_s=self.chaos.tick_interval_s,
            )
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "chaos": asdict(self.chaos),
            "workload": self.workload,
            "fault_seed": self.fault_seed,
            "pinned": [fault.to_dict() for fault in self.pinned],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ControlScenario":
        try:
            return cls(
                name=str(data["name"]),
                chaos=ChaosConfig(**data["chaos"]),
                workload=str(data["workload"]),
                fault_seed=(
                    None
                    if data["fault_seed"] is None
                    else int(data["fault_seed"])
                ),
                pinned=tuple(
                    Fault.from_dict(f) for f in data["pinned"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ControlError(
                f"malformed scenario payload: {exc}"
            ) from exc


def quick_chaos_config() -> ChaosConfig:
    """The fast-lane plant: small cluster, coarse ticks, 20 h horizon."""
    return ChaosConfig(
        server_count=8,
        duration_s=hours(20.0),
        tick_interval_s=120.0,
        fault_start_s=hours(2.0),
        fault_end_s=hours(14.0),
        max_fault_s=hours(4.0),
        quiet_from_s=hours(16.0),
        relax_s=hours(2.0),
    )


def smoke_chaos_config() -> ChaosConfig:
    """The CI-smoke plant: ~300 ticks, used by the replay fixtures too."""
    return ChaosConfig(
        server_count=8,
        duration_s=hours(10.0),
        tick_interval_s=120.0,
        fault_start_s=hours(1.0),
        fault_end_s=hours(5.0),
        max_fault_s=hours(2.0),
        quiet_from_s=hours(6.0),
        relax_s=hours(2.0),
    )


def pinned_cooling_loss(config: ChaosConfig) -> tuple[Fault, ...]:
    """The acceptance fault: 45% plant capacity lost into the peak.

    The window ends exactly at the demand peak (hour 13 of the chaos
    trace), so at clearance the plant is oversubscribed against peak
    load. A hysteresis latch that insists the *nominal* release fit the
    plant before un-throttling stays pinned for hours after the fault is
    gone; a replanning controller releases as soon as the restored
    plant has pulled the room down — which is the recovery-time gap the
    tournament measures.
    """
    end_s = min(hours(13.0), config.quiet_from_s)
    return (Fault(COOLING_LOSS, end_s - hours(4.0), end_s, 0.45),)


def default_scenarios(
    quick: bool = False, chaos_seeds: int = 1
) -> list[ControlScenario]:
    """The shared suite every planner is scored against."""
    config = quick_chaos_config() if quick else ChaosConfig()
    scenarios = [
        ControlScenario(name="diurnal_clean", chaos=config),
        ControlScenario(
            name="double_peak_clean", chaos=config, workload="double_peak"
        ),
        ControlScenario(
            name="pinned_cooling_loss",
            chaos=config,
            pinned=pinned_cooling_loss(config),
        ),
    ]
    for seed in range(chaos_seeds):
        scenarios.append(
            ControlScenario(
                name=f"chaos_{seed}", chaos=config, fault_seed=seed
            )
        )
    return scenarios


def build_scenario_simulator(
    scenario: ControlScenario, planner_name: str
) -> DatacenterSimulator:
    """The scenario's plant wired to one planner's control loop."""
    schedule = scenario.schedule()
    injector = FaultInjector(schedule) if len(schedule) else None
    return build_simulator(
        scenario.chaos,
        injector,
        policy_factory=control_policy_factory(
            planner_name,
            scenario.chaos.tick_interval_s,
            platform=scenario.chaos.platform,
        ),
        trace=scenario.trace(),
    )


# -- scoring -----------------------------------------------------------------


def recovery_time_s(
    result: SimulationResult,
    schedule: FaultSchedule,
    room_max_c: float,
) -> float:
    """Seconds from the last fault clearing to full recovery.

    Recovered means simultaneously back at nominal frequency and with
    the room at least :data:`RECOVERY_MARGIN_C` under its limit. A run
    that never recovers scores the full remaining horizon — worst
    possible, so it still ranks.
    """
    if not schedule.faults:
        return 0.0
    clearance = max(fault.end_s for fault in schedule.faults)
    times = result.times_s
    nominal = result.nominal_frequency_ghz
    after = times >= clearance - 1e-9
    recovered = (
        after
        & (result.frequency_ghz >= nominal - 1e-9)
        & (result.room_temperature_c <= room_max_c - RECOVERY_MARGIN_C)
    )
    hits = np.flatnonzero(recovered)
    if len(hits) == 0:
        return float(times[-1] - clearance)
    return float(times[hits[0]] - clearance)


@dataclass(frozen=True)
class PlannerScore:
    """One (planner, scenario) cell of the scoreboard."""

    planner: str
    scenario: str
    energy_kwh: float
    throttle_ticks: int
    shed_ticks: int
    recovery_time_s: float
    fingerprint: str

    @property
    def slo_violations(self) -> int:
        """Ticks that broke the service objective (throttled or shed)."""
        return self.throttle_ticks + self.shed_ticks


@dataclass
class Scoreboard:
    """All (planner, scenario) scores from one tournament."""

    scores: list[PlannerScore] = field(default_factory=list)

    def cell(self, planner: str, scenario: str) -> PlannerScore:
        for score in self.scores:
            if score.planner == planner and score.scenario == scenario:
                return score
        raise ControlError(
            f"no score for planner {planner!r} on scenario {scenario!r}"
        )

    def planners(self) -> list[str]:
        return sorted({score.planner for score in self.scores})

    def scenarios(self) -> list[str]:
        return sorted({score.scenario for score in self.scores})

    def to_dict(self) -> dict[str, object]:
        rows = sorted(
            self.scores, key=lambda s: (s.scenario, s.planner)
        )
        return {
            "schema": BUNDLE_SCHEMA,
            "scores": [
                {**asdict(score), "slo_violations": score.slo_violations}
                for score in rows
            ],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — equal iff identical."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Scoreboard":
        try:
            scores = [
                PlannerScore(
                    planner=str(row["planner"]),
                    scenario=str(row["scenario"]),
                    energy_kwh=float(row["energy_kwh"]),
                    throttle_ticks=int(row["throttle_ticks"]),
                    shed_ticks=int(row["shed_ticks"]),
                    recovery_time_s=float(row["recovery_time_s"]),
                    fingerprint=str(row["fingerprint"]),
                )
                for row in data["scores"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ControlError(
                f"malformed scoreboard payload: {exc}"
            ) from exc
        return cls(scores=scores)


def score_run(
    planner_name: str,
    scenario: ControlScenario,
    result: SimulationResult,
    room_max_c: float,
    tariff: ElectricityTariff | None = None,
    ambient: AmbientProfile | None = None,
    plant: AmbientAwarePlant | None = None,
) -> PlannerScore:
    """Score one finished run on the tournament's three axes."""
    cost = cooling_energy_cost(
        result,
        tariff=tariff or ElectricityTariff(),
        ambient=ambient or AmbientProfile(),
        plant=plant or AmbientAwarePlant(),
    )
    return PlannerScore(
        planner=planner_name,
        scenario=scenario.name,
        energy_kwh=cost.cooling_energy_kwh,
        throttle_ticks=int(np.sum(result.throttled_mask())),
        shed_ticks=int(np.sum(result.shed_work > 1e-9)),
        recovery_time_s=recovery_time_s(
            result, scenario.schedule(), room_max_c
        ),
        fingerprint=result_fingerprint(result),
    )


def run_tournament(
    scenarios: Sequence[ControlScenario] | None = None,
    planners: Sequence[str] | None = None,
    quick: bool = False,
    chaos_seeds: int = 1,
) -> Scoreboard:
    """Race every planner over every scenario; returns the scoreboard."""
    if scenarios is None:
        scenarios = default_scenarios(quick=quick, chaos_seeds=chaos_seeds)
    if planners is None:
        planners = [name for name in PLANNERS if name != "noop"]
    for name in planners:
        if name not in PLANNERS:
            raise ControlError(
                f"unknown planner {name!r}; choose from {sorted(PLANNERS)}"
            )
    if not scenarios or not planners:
        raise ControlError("a tournament needs >= 1 scenario and planner")

    registry = get_registry()
    board = Scoreboard()
    for scenario in scenarios:
        for name in planners:
            sim = build_scenario_simulator(scenario, name)
            with registry.timer(f"control.tournament.{name}"):
                result = sim.run()
            board.scores.append(
                score_run(
                    name, scenario, result, sim.room.max_temperature_c
                )
            )
            registry.count("control.tournament.cells")
    return board


# -- replayable bundles ------------------------------------------------------


@dataclass
class TournamentRun:
    """One scenario's scoreboard slice plus everything to replay it."""

    scenario: ControlScenario
    planners: tuple[str, ...]
    scoreboard: Scoreboard

    @property
    def fingerprint(self) -> str:
        return self.scoreboard.fingerprint()


def run_scenario(
    scenario: ControlScenario, planners: Sequence[str]
) -> TournamentRun:
    """Run one scenario under the given planners (bundle granularity)."""
    board = run_tournament(scenarios=[scenario], planners=list(planners))
    return TournamentRun(
        scenario=scenario, planners=tuple(planners), scoreboard=board
    )


def write_bundle(run: TournamentRun, directory: Path | str) -> Path:
    """Persist a scenario's replayable bundle; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BUNDLE_SCHEMA,
        "scenario": run.scenario.to_dict(),
        "planners": list(run.planners),
        "scoreboard": run.scoreboard.to_dict(),
        "fingerprint": run.fingerprint,
    }
    path = directory / f"{run.scenario.name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def read_bundle(path: Path | str) -> dict[str, object]:
    """Load and validate a bundle's JSON payload."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ControlError(f"unreadable bundle {path}: {exc}") from exc
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ControlError(f"bundle {path} has no schema tag")
    if payload["schema"] != BUNDLE_SCHEMA:
        raise ControlError(
            f"bundle {path} has schema {payload['schema']!r}, expected "
            f"{BUNDLE_SCHEMA!r}"
        )
    for key in ("scenario", "planners", "fingerprint"):
        if key not in payload:
            raise ControlError(f"bundle {path} is missing {key!r}")
    return payload


def replay_bundle(path: Path | str) -> TournamentRun:
    """Re-run the exact scenario a bundle recorded.

    The returned run's fingerprint must equal the bundle's stored
    ``fingerprint`` on a healthy tree — the replay test asserts exactly
    that.
    """
    payload = read_bundle(path)
    scenario = ControlScenario.from_dict(payload["scenario"])
    planners = tuple(str(name) for name in payload["planners"])
    return run_scenario(scenario, planners)


# -- command line ------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run the tournament and print / persist the scoreboard."""
    parser = argparse.ArgumentParser(
        prog="repro-control-tournament", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="small cluster, 20 h horizon"
    )
    parser.add_argument(
        "--chaos-seeds",
        type=int,
        default=1,
        help="number of seeded chaos-adversary scenarios (default 1)",
    )
    parser.add_argument(
        "--planners",
        default=None,
        help="comma-separated planner subset (default: all but noop)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the scoreboard JSON here",
    )
    args = parser.parse_args(argv)
    if args.chaos_seeds < 0:
        parser.error("--chaos-seeds must be >= 0")
    planners = (
        [name for name in args.planners.split(",") if name]
        if args.planners is not None
        else None
    )

    try:
        board = run_tournament(
            planners=planners,
            quick=args.quick,
            chaos_seeds=args.chaos_seeds,
        )
    except ControlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    header = (
        f"{'scenario':<22} {'planner':<10} {'kWh':>9} {'slo':>6} "
        f"{'recovery_s':>11}"
    )
    print(header)
    for score in sorted(
        board.scores, key=lambda s: (s.scenario, s.planner)
    ):
        print(
            f"{score.scenario:<22} {score.planner:<10} "
            f"{score.energy_kwh:>9.3f} {score.slo_violations:>6d} "
            f"{score.recovery_time_s:>11.0f}"
        )
    print(f"fingerprint: {board.fingerprint()}")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(board.to_dict(), indent=1, sort_keys=True)
        )
        print(f"scoreboard written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
